"""Data-item primitives shared across the library.

The unit of data in ApproxIoT is a *stream item*: a numeric value tagged
with the sub-stream (stratum) it belongs to and the simulated time at
which its source emitted it. Nodes exchange *weighted batches*: a set of
items from one sub-stream together with the output weight computed by
Algorithm 1 (the ``(W_out, I)`` pairs the paper stores in ``Theta``).

A batch's payload takes one of two representations — the *data plane*:

* a ``list[StreamItem]`` (the object plane, this module's original
  contract), or
* a :class:`~repro.core.columns.ColumnarBatch` (the columnar plane:
  the same records as structure-of-arrays columns, which the hot paths
  aggregate with vector ops instead of per-item attribute access).

:class:`WeightedBatch` dispatches on the payload so every consumer —
transports, Theta, the estimators — works with either plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # circular at runtime: repro.core.columns imports us
    from repro.core.columns import ColumnarBatch

__all__ = ["StreamItem", "WeightedBatch", "group_by_substream"]


@dataclass(frozen=True, slots=True)
class StreamItem:
    """One record of an input stream.

    Attributes:
        substream: Identifier of the stratum (data source or group of
            sources following the same distribution) the item belongs to.
        value: The numeric payload the query aggregates over.
        emitted_at: Simulation time (seconds) at which the source
            produced the item. Used for end-to-end latency accounting.
        size_bytes: Serialized size used by the network simulator for
            bandwidth accounting.
    """

    substream: str
    value: float
    emitted_at: float = 0.0
    size_bytes: int = 100

    def with_value(self, value: float) -> "StreamItem":
        """Return a copy of this item carrying a different value."""
        return StreamItem(self.substream, value, self.emitted_at, self.size_bytes)


@dataclass(slots=True)
class WeightedBatch:
    """A ``(W_out, I)`` pair for one sub-stream.

    This is the unit forwarded between nodes of the logical tree and the
    element type of the root's temporary store ``Theta`` in Algorithm 2.

    Attributes:
        substream: The stratum the items belong to.
        weight: The output weight ``W_out`` attached by the last node
            that sampled the batch. A weight of ``w`` means each carried
            item statistically represents ``w`` original items.
        items: The sampled records — a ``list[StreamItem]`` on the
            object plane or a :class:`~repro.core.columns.ColumnarBatch`
            on the columnar plane. Iterating yields
            :class:`StreamItem` objects on either plane.
    """

    substream: str
    weight: float
    items: "list[StreamItem] | ColumnarBatch" = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"batch weight must be positive, got {self.weight}")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[StreamItem]:
        return iter(self.items)

    @property
    def estimated_count(self) -> float:
        """Estimate of the number of original items this batch represents.

        This is the left-hand side of the paper's invariant (Eq. 8):
        ``|I| * W_out`` equals the true item count at the bottom node.
        """
        return len(self.items) * self.weight

    @property
    def estimated_sum(self) -> float:
        """Weighted sum contribution of this batch (inner term of Eq. 3)."""
        if isinstance(self.items, list):
            return self.weight * sum(item.value for item in self.items)
        return self.weight * self.items.value_sum()

    @property
    def total_bytes(self) -> int:
        """Serialized payload size of the batch for bandwidth accounting."""
        if isinstance(self.items, list):
            return sum(item.size_bytes for item in self.items)
        return self.items.total_bytes


def group_by_substream(items: Iterable[StreamItem]) -> dict[str, list[StreamItem]]:
    """Stratify a flat item sequence by sub-stream identifier.

    This implements the ``Update`` step (line 5 of Algorithm 1): the node
    stratifies the input stream into sub-streams according to their
    sources.
    """
    grouped: dict[str, list[StreamItem]] = {}
    for item in items:
        grouped.setdefault(item.substream, []).append(item)
    return grouped


def total_value(batches: Sequence[WeightedBatch]) -> float:
    """Sum the weighted values over a collection of batches."""
    return sum(batch.estimated_sum for batch in batches)
