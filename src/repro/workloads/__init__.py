"""Workload generators for the evaluation.

Synthetic Gaussian/Poisson sub-streams with the paper's exact
parameterisations, the fluctuating-rate Settings 1-3, the extreme-skew
mixture, and synthesizers for the two real-world case studies (NYC taxi
rides in the DEBS 2015 schema, Brasov pollution sensors).
"""

from repro.workloads.pollution import (
    POLLUTANTS,
    PollutionReading,
    PollutionTraceSynthesizer,
)
from repro.workloads.rates import RateSchedule, paper_rate_settings
from repro.workloads.skew import SkewedMixture, paper_skewed_mixture
from repro.workloads.source import Source, sources_from_schedule
from repro.workloads.synthetic import (
    GaussianSubstream,
    PoissonSubstream,
    paper_gaussian_substreams,
    paper_poisson_substreams,
)
from repro.workloads.taxi import BOROUGHS, TaxiRide, TaxiTraceSynthesizer

__all__ = [
    "BOROUGHS",
    "GaussianSubstream",
    "POLLUTANTS",
    "PoissonSubstream",
    "PollutionReading",
    "PollutionTraceSynthesizer",
    "RateSchedule",
    "SkewedMixture",
    "Source",
    "TaxiRide",
    "TaxiTraceSynthesizer",
    "paper_gaussian_substreams",
    "paper_poisson_substreams",
    "paper_rate_settings",
    "paper_skewed_mixture",
    "sources_from_schedule",
]
