"""Scenario runner — dynamic-workload runs with quality-over-time metrics.

:class:`ScenarioRunner` drives the statistical engine through a
:class:`~repro.scenarios.scenario.Scenario` timeline and measures, per
window, how the approximate answer held up while the world misbehaved:
accuracy loss against the §III-D error bound (the paper's Eq. 9 "result
± error" contract), sample-budget utilisation, offered-load multiplier,
offline nodes and link drops. The per-window rows render as a
paper-style table through :mod:`repro.metrics.report`, which is what
``python -m repro scenarios run <name>`` prints.

Any engine configuration runs any scenario: sampling backend, inter-node
transport (in-process or broker), data plane and worker shards all
compose — a fixed ``(seed, scenario, workers)`` triple is
bit-reproducible. The ``simnet`` transport is rejected loudly: churn
re-parents tree traffic mid-run, and the simulated-WAN transport builds
its host/link placement once at startup, so running it here would
silently desync placement from the live topology (the deployment
simulator owns that world; see
:meth:`repro.scenarios.engine.ScenarioEngine.netem_overrides` for the
netem bridge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import FractionBudget
from repro.engine.runner import WindowOutcome
from repro.errors import ConfigurationError, PipelineError
from repro.metrics.report import Table, format_percent, format_ratio
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.scenario import Scenario
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator

__all__ = ["ScenarioWindow", "ScenarioOutcome", "ScenarioRunner"]


@dataclass(frozen=True, slots=True)
class ScenarioWindow:
    """Quality metrics for one window of a scenario run.

    Attributes:
        window: 1-based window index (empty windows keep their slot).
        rate_multiplier: Offered load vs the base schedule this window.
        offline_nodes: Tree nodes the scenario kept offline.
        degraded_links: Uplinks under loss/delay degradation.
        items_emitted: Ground-truth items emitted this window.
        items_sampled: Items physically reaching the root (ApproxIoT).
        items_dropped: Items destroyed on degraded links.
        exact_sum: Ground-truth SUM over the window's emissions.
        approx_sum: ApproxIoT's estimate.
        error_bound: Absolute half-width of the confidence interval.
        approxiot_loss: ApproxIoT accuracy loss (%).
        srs_loss: The SRS baseline's accuracy loss (%).
        budget_utilisation: ``items_sampled`` over the steady-state
            root budget — >= 1 when bursts saturate the reservoir,
            < 1 when churn or loss starve it.
        budget: The root's sample budget in effect for the window —
            the budget controller's live decision, constant under
            ``static``, a visible trace under adaptive controllers.
        shard_restarts: Worker shards the supervisor respawned while
            this window's round ran (0 in healthy and single-worker
            runs) — execution-substrate faults surfaced alongside the
            workload faults the scenario itself injects.
        shards_lost: Worker shards missing from this window's merge
            under ``on_shard_loss="degrade"`` (their expected items
            are already counted into ``items_dropped``).
    """

    window: int
    rate_multiplier: float
    offline_nodes: int
    degraded_links: int
    items_emitted: int
    items_sampled: int
    items_dropped: int
    exact_sum: float
    approx_sum: float
    error_bound: float
    approxiot_loss: float
    srs_loss: float
    budget_utilisation: float
    budget: int = 0
    shard_restarts: int = 0
    shards_lost: int = 0

    @property
    def bound_pct(self) -> float:
        """The error bound as a percentage of the exact sum."""
        if self.exact_sum == 0:
            raise PipelineError("bound undefined for a zero exact sum")
        return 100.0 * self.error_bound / abs(self.exact_sum)

    @property
    def within_bound(self) -> bool:
        """Whether the exact answer fell inside ``result ± error``."""
        return self.approxiot_loss <= self.bound_pct


@dataclass
class ScenarioOutcome:
    """All windows of one scenario run plus aggregate quality."""

    scenario: Scenario
    windows: list[ScenarioWindow] = field(default_factory=list)
    empty_windows: int = 0

    def _require_windows(self) -> None:
        if not self.windows:
            raise PipelineError("scenario run produced no windows")

    @property
    def mean_approxiot_loss(self) -> float:
        """Mean ApproxIoT accuracy loss (%) across windows."""
        self._require_windows()
        return sum(w.approxiot_loss for w in self.windows) / len(self.windows)

    @property
    def mean_srs_loss(self) -> float:
        """Mean SRS accuracy loss (%) across windows."""
        self._require_windows()
        return sum(w.srs_loss for w in self.windows) / len(self.windows)

    @property
    def mean_bound_pct(self) -> float:
        """Mean reported error bound (%) across windows."""
        self._require_windows()
        return sum(w.bound_pct for w in self.windows) / len(self.windows)

    @property
    def within_bound_fraction(self) -> float:
        """Fraction of windows whose exact answer the interval covered."""
        self._require_windows()
        covered = sum(1 for w in self.windows if w.within_bound)
        return covered / len(self.windows)

    @property
    def items_dropped(self) -> int:
        """Items destroyed on degraded links over the whole run."""
        return sum(w.items_dropped for w in self.windows)

    def report(self) -> str:
        """The per-window quality-over-time table, paper-style."""
        self._require_windows()
        table = Table(
            f"Scenario '{self.scenario.name}' — quality over time",
            [
                "window", "load", "offline", "dropped", "emitted",
                "sampled", "budget", "budget use", "loss", "bound",
                "in bound", "srs loss", "restarts", "lost",
            ],
        )
        for w in self.windows:
            table.add_row(
                w.window,
                format_ratio(w.rate_multiplier),
                w.offline_nodes,
                w.items_dropped,
                w.items_emitted,
                w.items_sampled,
                w.budget,
                format_ratio(w.budget_utilisation),
                format_percent(w.approxiot_loss, 3),
                format_percent(w.bound_pct, 3),
                "yes" if w.within_bound else "NO",
                format_percent(w.srs_loss, 3),
                w.shard_restarts,
                w.shards_lost,
            )
        return table.render()

    def summary(self) -> str:
        """One-line aggregate: mean loss vs bound, coverage, drops."""
        self._require_windows()
        return (
            f"{self.scenario.name}: mean loss "
            f"{format_percent(self.mean_approxiot_loss, 3)} vs mean bound "
            f"{format_percent(self.mean_bound_pct, 3)}; "
            f"{self.within_bound_fraction:.0%} of windows in bound; "
            f"srs mean loss {format_percent(self.mean_srs_loss, 3)}; "
            f"{self.items_dropped} items dropped on degraded links"
        )


class ScenarioRunner:
    """Drives one scenario over the statistical engine, any config.

    Construction validates everything loudly: the scenario's events
    against the run's tree and schedule, and the config's knobs
    against scenario execution (``simnet`` is rejected — see the
    module docstring). With ``config.workers > 1`` the run shards
    across OS processes exactly like a static run; every shard
    recomputes the identical scenario timeline, and :meth:`close` (or
    the context-manager form) reaps the shard processes even when
    churn leaves windows empty.
    """

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
        scenario: Scenario,
    ) -> None:
        if config.transport == "simnet":
            raise ConfigurationError(
                "scenarios drive the statistical engine, whose topology "
                "can change mid-run (churn); the 'simnet' transport "
                "derives its host/link placement once at startup and "
                "would silently desync from the re-parented tree. Use "
                "transport='inprocess' or 'broker' here, or model the "
                "degradation on the deployment simulator via "
                "ScenarioEngine.netem_overrides()"
            )
        self._config = config
        self._scenario = scenario
        # The parent-side timeline view: validates the scenario against
        # the *base* schedule/tree before any engine (or shard process)
        # is built, and annotates per-window rows during the run.
        self._timeline = ScenarioEngine(scenario, config.tree, schedule)
        self._schedule = schedule
        window_volume = int(round(schedule.total_rate * config.window_seconds))
        self._reference_budget = FractionBudget(
            config.sampling_fraction
        ).sample_size(window_volume)
        #: Window slots driven so far — repeated :meth:`run` calls
        #: continue the timeline where the previous call stopped.
        self._slots_run = 0
        #: Supervisor restarts seen so far (sharded runs): the delta
        #: per window becomes the trace's "restarts" column.
        self._restarts_seen = 0
        # All engine wiring (worker-shard dispatch, transport choice,
        # scenario binding) lives in StatisticalRunner; this facade
        # only adds the timeline annotation and quality metrics.
        self._runner = StatisticalRunner(
            config, schedule, generators, scenario=scenario
        )

    @property
    def scenario(self) -> Scenario:
        """The scenario this runner executes."""
        return self._scenario

    @property
    def timeline(self) -> ScenarioEngine:
        """The bound per-window timeline (parent-side view)."""
        return self._timeline

    def run(self, windows: int | None = None) -> ScenarioOutcome:
        """Run the scenario and collect per-window quality metrics.

        ``windows`` defaults to the scenario's declared length. Windows
        in which churn/rate events left nothing emitted keep their slot
        (the timeline stays aligned) but contribute no metrics row.
        """
        windows = windows if windows is not None else self._scenario.windows
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = ScenarioOutcome(scenario=self._scenario)
        try:
            for _ in range(windows):
                state = self._timeline.state_for(self._slots_run)
                window = self._runner.run_window()
                self._slots_run += 1
                if window is None:
                    outcome.empty_windows += 1
                    continue
                outcome.windows.append(self._annotate(window, state))
        except BaseException:
            # Reap worker shards when a mid-run failure aborts the
            # loop: shard processes must never outlive the scenario
            # run that spawned them.
            self.close()
            raise
        if not outcome.windows:
            raise PipelineError(
                "scenario emitted no items in any window; check the "
                "schedule rates against the scenario's events"
            )
        return outcome

    def _window_restarts(self) -> int:
        """Supervisor respawns since the previous window (sharded runs)."""
        stats = getattr(self._runner.engine, "ipc_stats", None)
        if stats is None:  # single-worker runs have no supervisor
            return 0
        delta = stats.restarts - self._restarts_seen
        self._restarts_seen = stats.restarts
        return delta

    def _annotate(self, window: WindowOutcome, state) -> ScenarioWindow:
        """One engine window + its timeline state as a metrics row."""
        return ScenarioWindow(
            window=window.window_index,
            rate_multiplier=state.rate_multiplier(self._schedule),
            offline_nodes=len(state.offline),
            degraded_links=len(state.degraded),
            items_emitted=window.items_emitted,
            items_sampled=window.items_sampled,
            items_dropped=window.items_dropped,
            exact_sum=window.exact_sum,
            approx_sum=window.approx_sum.value,
            error_bound=window.approx_sum.error,
            approxiot_loss=window.approxiot_loss,
            srs_loss=window.srs_loss,
            budget_utilisation=(
                window.items_sampled / self._reference_budget
                if self._reference_budget > 0 else 0.0
            ),
            budget=window.sample_budget,
            shard_restarts=self._window_restarts(),
            shards_lost=window.shards_lost,
        )

    def close(self) -> None:
        """Release execution resources (worker shard processes)."""
        self._runner.close()

    def __enter__(self) -> "ScenarioRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
