"""Roundtrip parity for the compact binary weighted-batch codec.

The codec must be a faithful, plane-preserving bijection: values,
timestamps, sizes and weights survive bit-for-bit (float64 end to
end), an object-plane batch decodes back to ``StreamItem`` objects and
a columnar batch back to columns, and byte accounting
(``total_bytes``) is unchanged — the properties the sharded engine and
the serde-backed broker transport rely on.
"""

import pytest

from repro.broker.records import (
    COLUMNAR_SERDE,
    decode_weighted_batch,
    decode_weighted_batches,
    encode_weighted_batch,
    encode_weighted_batches,
)
from repro.core.columns import ColumnarBatch
from repro.core.items import StreamItem, WeightedBatch
from repro.engine.pipeline import build_pipeline
from repro.engine.runner import EngineRunner
from repro.engine.transport import BrokerTransport
from repro.errors import ConfigurationError
from repro.system.config import PipelineConfig
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams


def roundtrip(batch):
    return decode_weighted_batch(encode_weighted_batch(batch))


class TestColumnarRoundtrip:
    def test_uniform_batch_roundtrips_bitwise(self):
        payload = ColumnarBatch.single(
            "A", [1.5, -2.25, 1e300, 0.1 + 0.2], 7.125, 64
        )
        decoded = roundtrip(WeightedBatch("A", 2.5, payload))
        assert isinstance(decoded.items, ColumnarBatch)
        assert decoded.substream == "A"
        assert decoded.weight == 2.5
        assert list(decoded.items.values) == list(payload.values)
        assert list(decoded.items.timestamps) == list(payload.timestamps)
        assert decoded.items.uniform_substream == "A"
        assert decoded.items.sizes == 64

    def test_mixed_strata_and_per_record_sizes(self):
        payload = ColumnarBatch(
            ["A", "B", "A"], [1.0, 2.0, 3.0], [0.1, 0.2, 0.3], [10, 20, 30]
        )
        decoded = roundtrip(WeightedBatch("A", 1.0, payload))
        assert decoded.items.substream_ids() == ["A", "B", "A"]
        assert decoded.items.size_list() == [10, 20, 30]
        assert decoded.total_bytes == 60

    def test_object_plane_roundtrips_to_items(self):
        items = [
            StreamItem("B", 4.5, 1.0, 10),
            StreamItem("B", 5.5, 2.0, 20),
        ]
        decoded = roundtrip(WeightedBatch("B", 3.0, items))
        assert isinstance(decoded.items, list)
        assert decoded.items == items

    def test_empty_payloads_roundtrip(self):
        assert roundtrip(WeightedBatch("A", 1.0, [])).items == []
        columnar = roundtrip(
            WeightedBatch("A", 1.0, ColumnarBatch.empty())
        )
        assert len(columnar.items) == 0

    def test_accounting_is_codec_invariant(self):
        payload = ColumnarBatch.single("C", [10.0, 20.0, 30.0], 1.0, 100)
        original = WeightedBatch("C", 4.0, payload)
        decoded = roundtrip(original)
        assert decoded.total_bytes == original.total_bytes
        assert decoded.estimated_sum == original.estimated_sum
        assert decoded.estimated_count == original.estimated_count

    def test_batch_sequence_framing(self):
        batches = [
            WeightedBatch("A", 1.0, ColumnarBatch.single("A", [1.0], 0.0)),
            WeightedBatch("B", 2.0, [StreamItem("B", 7.0)]),
            WeightedBatch("C", 3.0, []),
        ]
        decoded = decode_weighted_batches(encode_weighted_batches(batches))
        assert [b.substream for b in decoded] == ["A", "B", "C"]
        assert [b.weight for b in decoded] == [1.0, 2.0, 3.0]
        assert decode_weighted_batches(encode_weighted_batches([])) == []

    def test_bad_magic_is_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_weighted_batch(b"not-a-batch")


class TestSerde:
    def test_weighted_batches_use_the_binary_format(self):
        batch = WeightedBatch(
            "A", 2.0, ColumnarBatch.single("A", [1.0, 2.0], 0.0)
        )
        blob = COLUMNAR_SERDE.serialize(batch)
        assert blob[:4] == b"RWB1"
        assert COLUMNAR_SERDE.deserialize(blob).estimated_sum == pytest.approx(
            batch.estimated_sum
        )

    def test_non_batch_values_fall_back_to_pickle(self):
        value = {"offsets": [1, 2, 3]}
        blob = COLUMNAR_SERDE.serialize(value)
        assert blob[:4] == b"RPK1"
        assert COLUMNAR_SERDE.deserialize(blob) == value


class TestBrokerTransportSerde:
    GENS = {g.name: g for g in paper_gaussian_substreams()}
    SCHEDULE = RateSchedule(
        "serde", {"A": 200.0, "B": 200.0, "C": 200.0, "D": 200.0}
    )

    @pytest.mark.parametrize("plane", ["objects", "columnar"])
    def test_serde_backed_broker_run_is_bit_identical(self, plane):
        """Producing real bytes instead of object references changes
        nothing about a seeded run — the codec is exact."""
        outcomes = {}
        for serde in (None, COLUMNAR_SERDE):
            config = PipelineConfig(
                sampling_fraction=0.2,
                seed=13,
                backend="python",
                transport="broker",
                data_plane=plane,
            )
            pipeline = build_pipeline(config, self.SCHEDULE, self.GENS)
            runner = EngineRunner(pipeline, BrokerTransport(serde=serde))
            outcomes[serde is None] = runner.run(3)
        direct, encoded = outcomes[True], outcomes[False]
        for a, b in zip(direct.windows, encoded.windows):
            assert a.approx_sum.value == b.approx_sum.value
            assert a.approx_sum.error == b.approx_sum.error
            assert a.srs_sum == b.srs_sum
            assert a.items_sampled == b.items_sampled
