"""Shared scaffolding for the per-figure experiments.

Each experiment exposes a ``run_*`` function returning structured
results plus a ``main(scale)`` that prints the paper-style table. The
``scale`` knob shrinks arrival rates and window counts so the same code
serves fast CI tests (scale ~ 0.01) and the full benchmark harness
(scale 1.0 approaches the paper's absolute rates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.system.config import PipelineConfig
from repro.topology.placement import PlacementSpec
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import (
    paper_gaussian_substreams,
    paper_poisson_substreams,
)

__all__ = [
    "ExperimentScale",
    "PAPER_FRACTIONS",
    "base_config",
    "gaussian_generators",
    "poisson_generators",
    "uniform_schedule",
    "saturating_placement",
]

#: The sampling fractions on the paper's x-axes (Figs. 5-8, 10c, 11).
PAPER_FRACTIONS: list[float] = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Sizing for one experiment run.

    Attributes:
        rate_scale: Multiplier over the baseline per-sub-stream rates.
        windows: Number of query windows to run and average over.
        seed: Base seed for the run.
        backend: Sampling kernel every runner uses (``"python"`` /
            ``"numpy"`` / ``"auto"``).
        transport: Inter-node transport every runner uses (``"auto"``
            resolves per engine; see
            :attr:`repro.system.config.PipelineConfig.transport`).
        data_plane: Record representation every runner uses
            (``"objects"`` / ``"columnar"``; see
            :attr:`repro.system.config.PipelineConfig.data_plane`).
        workers: Process-parallel worker shards for statistical runs
            (see :attr:`repro.system.config.PipelineConfig.workers`;
            deployment figures model distribution via simnet and
            ignore it).
        budget_controller: Per-window budget feedback loop every
            statistical runner uses (``"static"`` /
            ``"adaptive_fraction"`` / ``"variance_aware"``; see
            :attr:`repro.system.config.PipelineConfig.budget_controller`).
        shard_transport: Shard IPC plane for sharded statistical runs
            (``"auto"`` / ``"pipe"`` / ``"shm"``; see
            :attr:`repro.system.config.PipelineConfig.shard_transport`).
        shard_timeout: Watchdog deadline in seconds per window slot
            for sharded statistical runs (``None`` disables; see
            :attr:`repro.system.config.PipelineConfig.shard_timeout`).
        on_shard_loss: Policy once a shard exhausts its restart budget
            (``"abort"`` / ``"degrade"``; see
            :attr:`repro.system.config.PipelineConfig.on_shard_loss`).
        inject_faults: ``kind@shard:window`` fault specs for the
            supervision harness (parsed into a
            :class:`~repro.engine.faults.FaultPlan`; empty injects
            nothing). Requires ``workers > 1``.
    """

    rate_scale: float = 1.0
    windows: int = 5
    seed: int = 42
    backend: str = "auto"
    transport: str = "auto"
    data_plane: str = "objects"
    workers: int = 1
    budget_controller: str = "static"
    shard_transport: str = "auto"
    shard_timeout: float | None = None
    on_shard_loss: str = "abort"
    inject_faults: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_scale <= 0:
            raise ConfigurationError(
                f"rate_scale must be positive, got {self.rate_scale}"
            )
        if self.windows <= 0:
            raise ConfigurationError(
                f"windows must be >= 1, got {self.windows}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small sizing for unit tests (sub-second runs)."""
        return cls(rate_scale=0.02, windows=3)

    @classmethod
    def bench(cls) -> "ExperimentScale":
        """Benchmark sizing (seconds per experiment point)."""
        return cls(rate_scale=0.25, windows=5)


def gaussian_generators() -> dict[str, object]:
    """The four Gaussian sub-stream generators keyed by name."""
    return {g.name: g for g in paper_gaussian_substreams()}


def poisson_generators() -> dict[str, object]:
    """The four Poisson sub-stream generators keyed by name."""
    return {g.name: g for g in paper_poisson_substreams()}


def uniform_schedule(scale: float, per_stream_rate: float = 25_000.0) -> RateSchedule:
    """Equal-rate schedule over sub-streams A-D (the §V-B workload)."""
    rate = per_stream_rate * scale
    return RateSchedule(
        "uniform", {"A": rate, "B": rate, "C": rate, "D": rate}
    )


def saturating_placement(
    schedule: RateSchedule, headroom: float = 10.0
) -> PlacementSpec:
    """Provision hosts so the *native* root saturates (§V-A methodology).

    The source rate is tuned so the datacenter node is saturated in
    native execution: the root's service rate is the aggregate offered
    load divided by ``headroom``, while edge nodes keep enough capacity
    to ingest the full load. Sampling then shifts the bottleneck off
    the root exactly as in the paper's Fig. 6.
    """
    if headroom <= 1.0:
        raise ConfigurationError(
            f"headroom must exceed 1 for saturation, got {headroom}"
        )
    aggregate = schedule.total_rate
    root_rate = aggregate / headroom
    # Four L1 nodes must jointly absorb the aggregate; give margin.
    edge_rate = aggregate / 2.0
    return PlacementSpec.paper_defaults(root_rate=root_rate, edge_rate=edge_rate)


def base_config(fraction: float, scale: ExperimentScale,
                window_seconds: float = 1.0, mode: str = "approxiot",
                placement: PlacementSpec | None = None) -> PipelineConfig:
    """A pipeline config with experiment-standard defaults.

    Threads the scale's seed, sampling backend, transport, data plane,
    worker-shard count, budget controller, shard transport and shard
    supervision knobs (watchdog timeout, loss policy, injected faults)
    into the config, so ``python -m repro figures --backend/
    --transport/--data-plane/--workers/--budget-controller/
    --shard-transport/--shard-timeout/--on-shard-loss/--inject-fault``
    reach every figure runner through one seam.
    """
    kwargs: dict[str, object] = {}
    if placement is not None:
        kwargs["placement"] = placement
    if scale.inject_faults:
        from repro.engine.faults import FaultPlan

        kwargs["fault_plan"] = FaultPlan.parse(scale.inject_faults)
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=window_seconds,
        mode=mode,
        seed=scale.seed,
        backend=scale.backend,
        transport=scale.transport,
        data_plane=scale.data_plane,
        workers=scale.workers,
        budget_controller=scale.budget_controller,
        shard_transport=scale.shard_transport,
        shard_timeout=scale.shard_timeout,
        on_shard_loss=scale.on_shard_loss,
        **kwargs,
    )
