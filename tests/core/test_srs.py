"""Unit tests for the coin-flip SRS baseline."""

import random

import pytest

from repro.core.srs import CoinFlipSampler, horvitz_thompson_sum, srs_sample
from repro.errors import SamplingError


class TestCoinFlipSampler:
    def test_fraction_one_keeps_everything(self):
        sampler = CoinFlipSampler(1.0, random.Random(1))
        assert sampler.filter(list(range(100))) == list(range(100))

    def test_keep_rate_close_to_fraction(self):
        sampler = CoinFlipSampler(0.3, random.Random(2))
        kept = sampler.filter(list(range(20000)))
        assert len(kept) == pytest.approx(6000, rel=0.05)
        assert sampler.seen == 20000
        assert sampler.kept == len(kept)

    def test_weight_is_inverse_fraction(self):
        assert CoinFlipSampler(0.25).weight == pytest.approx(4.0)

    def test_offer_returns_item_or_none(self):
        sampler = CoinFlipSampler(0.5, random.Random(3))
        results = {sampler.offer("x") for _ in range(200)}
        assert results == {"x", None}

    def test_invalid_fractions_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(SamplingError):
                CoinFlipSampler(bad)

    def test_reset_counters(self):
        sampler = CoinFlipSampler(0.5, random.Random(4))
        sampler.filter(list(range(10)))
        sampler.reset_counters()
        assert sampler.seen == 0
        assert sampler.kept == 0

    def test_order_preserved(self):
        sampler = CoinFlipSampler(0.5, random.Random(5))
        kept = sampler.filter(list(range(1000)))
        assert kept == sorted(kept)


class TestEstimator:
    def test_horvitz_thompson_exact_at_full_fraction(self):
        assert horvitz_thompson_sum([1.0, 2.0, 3.0], 1.0) == pytest.approx(6.0)

    def test_horvitz_thompson_scales_by_inverse(self):
        assert horvitz_thompson_sum([5.0], 0.1) == pytest.approx(50.0)

    def test_horvitz_thompson_validation(self):
        with pytest.raises(SamplingError):
            horvitz_thompson_sum([1.0], 0.0)

    def test_unbiasedness_monte_carlo(self):
        """HT estimate over coin-flip samples averages to the true sum."""
        population = [float(i) for i in range(1, 201)]
        true_sum = sum(population)
        rng = random.Random(6)
        estimates = [
            horvitz_thompson_sum(srs_sample(population, 0.2, rng), 0.2)
            for _ in range(800)
        ]
        mean_estimate = sum(estimates) / len(estimates)
        assert mean_estimate == pytest.approx(true_sum, rel=0.02)

    def test_srs_misses_rare_substream_often(self):
        """The failure mode stratification fixes: rare strata vanish."""
        rng = random.Random(7)
        # 1000 common items and 2 rare, high-value ones.
        population = ["common"] * 1000 + ["rare"] * 2
        misses = 0
        for _ in range(300):
            kept = srs_sample(population, 0.05, rng)
            if "rare" not in kept:
                misses += 1
        # P(miss both) = 0.95^2 ~ 0.90: the rare stratum usually vanishes.
        assert misses > 200


class TestMergeCounters:
    def test_counters_add_across_shards(self):
        left = CoinFlipSampler(0.5, random.Random(1))
        right = CoinFlipSampler(0.5, random.Random(2))
        left.filter(range(100))
        right.filter(range(50))
        seen, kept = left.seen + right.seen, left.kept + right.kept
        left.merge_counters(right)
        assert (left.seen, left.kept) == (seen, kept)
        assert left.weight == 2.0

    def test_fraction_mismatch_is_rejected(self):
        with pytest.raises(SamplingError):
            CoinFlipSampler(0.5).merge_counters(CoinFlipSampler(0.25))
