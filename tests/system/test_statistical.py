"""Integration tests for the statistical pipeline runner."""

import pytest

from repro.errors import ConfigurationError, PipelineError
from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.statistical import StatisticalRunner, accuracy_loss
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "test", {"A": 400.0, "B": 400.0, "C": 400.0, "D": 400.0}
)


def make_runner(fraction=0.1, seed=1, **kwargs):
    config = PipelineConfig(
        sampling_fraction=fraction, window_seconds=1.0, seed=seed, **kwargs
    )
    return StatisticalRunner(config, SCHEDULE, GENS)


class TestAccuracyLoss:
    def test_basic(self):
        assert accuracy_loss(90.0, 100.0) == pytest.approx(10.0)

    def test_zero_exact_rejected(self):
        with pytest.raises(PipelineError):
            accuracy_loss(1.0, 0.0)


class TestWindowOutcome:
    def test_exact_and_counts(self):
        outcome = make_runner().run_window()
        assert outcome.items_emitted == 1600
        assert outcome.exact_sum > 0
        assert 0 < outcome.items_sampled < outcome.items_emitted

    def test_realized_fraction_near_configured(self):
        run = make_runner(fraction=0.1).run(5)
        assert run.realized_fraction == pytest.approx(0.1, rel=0.15)

    def test_full_fraction_is_lossless(self):
        outcome = make_runner(fraction=1.0).run_window()
        assert outcome.approxiot_loss == pytest.approx(0.0, abs=1e-9)
        assert outcome.items_sampled == outcome.items_emitted

    def test_window_indices_increment(self):
        runner = make_runner()
        assert runner.run_window().window_index == 1
        assert runner.run_window().window_index == 2


class TestAccuracyProperties:
    def test_approxiot_beats_srs(self):
        """The paper's core claim, at the 10% fraction."""
        run = make_runner(fraction=0.1, seed=3).run(8)
        assert run.mean_approxiot_loss < run.mean_srs_loss

    def test_loss_decreases_with_fraction(self):
        low = make_runner(fraction=0.1, seed=4).run(6).mean_approxiot_loss
        high = make_runner(fraction=0.8, seed=4).run(6).mean_approxiot_loss
        assert high < low

    def test_error_bound_covers_exact_usually(self):
        runner = make_runner(fraction=0.2, seed=5)
        covered = 0
        windows = 20
        for _ in range(windows):
            outcome = runner.run_window()
            if outcome.approx_sum.contains(outcome.exact_sum):
                covered += 1
        assert covered / windows >= 0.8  # 95% nominal, CLT slack

    def test_estimated_count_matches_emitted(self):
        """Eq. 8 end-to-end through the whole 4-layer tree.

        Run the tree manually so we can inspect Theta: the recovered
        item count must equal the emitted count exactly, not merely in
        expectation.
        """
        import random

        from repro.core.estimator import ThetaStore
        from repro.core.items import StreamItem
        from repro.core.whs import whsamp, whsamp_batches

        rng = random.Random(6)
        items = [StreamItem("a", rng.random()) for _ in range(1200)]
        items += [StreamItem("b", rng.random()) for _ in range(400)]
        l1 = whsamp(items, 160, rng=rng)
        l2 = whsamp_batches(l1.batches, 160, rng=rng)
        root = whsamp_batches(l2.batches, 160, rng=rng)
        theta = ThetaStore()
        theta.extend(root.batches)
        recovered = sum(
            est.estimated_count for est in theta.per_substream().values()
        )
        assert recovered == pytest.approx(1600.0, rel=1e-9)


class TestValidation:
    def test_missing_generator(self):
        config = PipelineConfig(sampling_fraction=0.5)
        schedule = RateSchedule("s", {"Z": 100.0})
        with pytest.raises(PipelineError):
            StatisticalRunner(config, schedule, GENS)

    def test_bad_window_count(self):
        with pytest.raises(PipelineError):
            make_runner().run(0)

    def test_bad_fraction_rejected_by_config(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(sampling_fraction=0.0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(sampling_fraction=1.2)

    def test_config_mode_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(mode="warp-drive")

    def test_config_copies(self):
        config = PipelineConfig(sampling_fraction=0.3)
        srs = config.with_mode(ExecutionMode.SRS)
        assert srs.mode == ExecutionMode.SRS
        assert srs.sampling_fraction == 0.3
        half = config.with_fraction(0.5)
        assert half.sampling_fraction == 0.5
        assert half.mode == config.mode


class TestSkewedBehaviour:
    def test_srs_misses_rare_valuable_stratum(self):
        """The Fig. 10(c) mechanism: SRS error explodes, ApproxIoT's doesn't."""
        from repro.workloads.synthetic import PoissonSubstream

        gens = {
            "common": PoissonSubstream("common", 10.0),
            "rare": PoissonSubstream("rare", 1_000_000.0),
        }
        schedule = RateSchedule("skew", {"common": 1600.0, "rare": 4.0})
        config = PipelineConfig(sampling_fraction=0.1, seed=7)
        runner = StatisticalRunner(config, schedule, gens)
        run = runner.run(10)
        assert run.mean_srs_loss > 10 * run.mean_approxiot_loss
