"""Shared-memory shard transport: parity, fallback, lifecycle.

The zero-copy transport's contract (:mod:`repro.engine.shm`):

* a run on the shm transport is bit-for-bit the pipe-transport run and
  the inline run at fixed (seed, workers, scenario, controller), on
  both data planes, static and adaptive;
* ``"shm"``/``"auto"`` degrade to the pipe codec on spawn hosts and on
  hosts without usable shared memory — bit-identically;
* a frame that outgrows the ring falls back to the pipe codec for that
  slot (counted, never wrong);
* no shared-memory segment survives :meth:`ShardedEngineRunner.close`,
  including after a mid-run shard failure;
* the descriptors-only claim is measurable: the shm transport moves an
  order of magnitude fewer bytes through the Pipe per window.
"""

import multiprocessing
from multiprocessing import shared_memory

import pytest

import repro.engine.sharding as sharding
from repro.engine import shm
from repro.engine.sharding import ShardedEngineRunner
from repro.errors import PipelineError
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "shm-test", {"A": 240.0, "B": 240.0, "C": 240.0, "D": 240.0}
)

#: The full zero-copy path needs fork (segments engage only under it)
#: and a host that can actually map POSIX shared memory.
shm_capable = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    or not shm.shm_available(),
    reason="host lacks fork or usable shared memory",
)


def config_for(workers=2, plane="objects", transport="auto", seed=13,
               fraction=0.2, controller="static"):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend="python",
        data_plane=plane,
        workers=workers,
        shard_transport=transport,
        budget_controller=controller,
    )


def outcome_tuple(window):
    return (
        window.window_index,
        window.items_emitted,
        window.items_sampled,
        window.exact_sum,
        window.srs_sum,
        window.approx_sum.value,
        window.approx_sum.error,
    )


def run_outcomes(config, windows=3, **runner_kwargs):
    with ShardedEngineRunner(
        config, SCHEDULE, GENS, **runner_kwargs
    ) as runner:
        run = runner.run(windows)
        stats = runner.ipc_stats
        transport = runner.shard_transport
    return [outcome_tuple(w) for w in run.windows], stats, transport


class TestTransportResolution:
    def test_pipe_is_always_honored(self):
        assert shm.resolve_shard_transport("pipe", "fork") == "pipe"
        assert shm.resolve_shard_transport("pipe", "spawn") == "pipe"

    def test_spawn_degrades_to_pipe(self):
        assert shm.resolve_shard_transport("shm", "spawn") == "pipe"
        assert shm.resolve_shard_transport("auto", "spawn") == "pipe"

    @shm_capable
    def test_fork_with_shared_memory_resolves_to_shm(self):
        assert shm.resolve_shard_transport("shm", "fork") == "shm"
        assert shm.resolve_shard_transport("auto", "fork") == "shm"

    def test_unavailable_shared_memory_degrades_to_pipe(self, monkeypatch):
        monkeypatch.setattr(shm, "shm_available", lambda: False)
        assert shm.resolve_shard_transport("shm", "fork") == "pipe"
        assert shm.resolve_shard_transport("auto", "fork") == "pipe"

    def test_config_rejects_unknown_shard_transport(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="shard_transport"):
            PipelineConfig(shard_transport="carrier-pigeon")

    def test_inline_execution_stays_on_the_pipe_path(self):
        with ShardedEngineRunner(
            config_for(transport="shm"), SCHEDULE, GENS, inline=True
        ) as runner:
            assert runner.shard_transport == "pipe"
            assert runner.shm_segment_names == []


@shm_capable
class TestBitParity:
    @pytest.mark.parametrize("plane", ["objects", "columnar"])
    def test_shm_matches_pipe_and_inline_bitwise(self, plane):
        shm_out, shm_stats, transport = run_outcomes(
            config_for(plane=plane, transport="shm")
        )
        pipe_out, _, _ = run_outcomes(config_for(plane=plane, transport="pipe"))
        inline_out, _, _ = run_outcomes(
            config_for(plane=plane, transport="shm"), inline=True
        )
        assert transport == "shm"
        assert shm_out == pipe_out == inline_out
        assert shm_stats.ring_overflows == 0

    @pytest.mark.parametrize("plane", ["objects", "columnar"])
    def test_adaptive_broadcast_rides_the_ring_bit_identically(self, plane):
        shm_out, shm_stats, _ = run_outcomes(
            config_for(plane=plane, transport="shm",
                       controller="variance_aware"),
            windows=4,
        )
        pipe_out, pipe_stats, _ = run_outcomes(
            config_for(plane=plane, transport="pipe",
                       controller="variance_aware"),
            windows=4,
        )
        assert shm_out == pipe_out
        # Window 1's merged observation is broadcast with window 2's
        # request — at least one frame must have ridden the ctrl ring.
        assert shm_stats.ring_broadcasts > 0
        assert pipe_stats.ring_broadcasts == 0

    def test_spawn_start_method_degrades_bit_identically(self, monkeypatch):
        fork_out, _, _ = run_outcomes(config_for(transport="auto"))
        monkeypatch.setattr(
            sharding,
            "_mp_context",
            lambda: (multiprocessing.get_context("spawn"), "spawn"),
        )
        spawn_out, _, transport = run_outcomes(config_for(transport="auto"))
        assert transport == "pipe"
        assert spawn_out == fork_out

    def test_unavailable_host_degrades_bit_identically(self, monkeypatch):
        shm_out, _, _ = run_outcomes(config_for(transport="shm"))
        monkeypatch.setattr(shm, "shm_available", lambda: False)
        degraded_out, _, transport = run_outcomes(config_for(transport="shm"))
        assert transport == "pipe"
        assert degraded_out == shm_out

    def test_ring_overflow_falls_back_per_slot_bit_identically(self):
        # A 64-byte ring cannot hold any Theta frame: every slot must
        # take the pipe-codec fallback, with identical results.
        tiny_out, tiny_stats, transport = run_outcomes(
            config_for(transport="shm"), ring_bytes=64
        )
        pipe_out, _, _ = run_outcomes(config_for(transport="pipe"))
        assert transport == "shm"
        assert tiny_out == pipe_out
        assert tiny_stats.ring_overflows > 0


@shm_capable
class TestAccounting:
    def test_descriptors_cut_pipe_bytes_by_an_order_of_magnitude(self):
        _, shm_stats, _ = run_outcomes(config_for(transport="shm"))
        _, pipe_stats, _ = run_outcomes(config_for(transport="pipe"))
        # Same run, same payload volume...
        assert shm_stats.theta_bytes_encoded == pipe_stats.theta_bytes_encoded
        assert pipe_stats.bytes_through_pipe == pipe_stats.theta_bytes_encoded
        # ...but only descriptors crossed the Pipe on shm.
        assert (
            pipe_stats.bytes_through_pipe
            >= 10.0 * shm_stats.bytes_through_pipe
        )
        assert shm_stats.windows == pipe_stats.windows == 3
        assert shm_stats.pipe_bytes_per_window > 0
        assert shm_stats.serde_seconds > 0

    def test_facade_surfaces_the_ipc_stats(self):
        with StatisticalRunner(
            config_for(transport="shm"), SCHEDULE, GENS
        ) as runner:
            runner.run(2)
            stats = runner.engine.ipc_stats
        assert stats.transport == "shm"
        assert stats.windows == 2
        assert stats.theta_bytes_encoded > stats.bytes_through_pipe


@shm_capable
class TestLifecycle:
    def assert_unlinked(self, names):
        assert names  # the run must actually have created segments
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_unlinks_every_segment(self):
        runner = ShardedEngineRunner(
            config_for(workers=4, transport="shm"), SCHEDULE, GENS
        )
        try:
            runner.run(1)
            names = runner.shm_segment_names
            assert len(names) == 4
        finally:
            runner.close()
        self.assert_unlinked(names)

    def test_mid_run_shard_failure_unlinks_every_segment(self):
        runner = ShardedEngineRunner(
            config_for(transport="shm").with_max_shard_restarts(0),
            SCHEDULE, GENS,
        )
        try:
            runner.run(1)
            names = runner.shm_segment_names
            for shard in runner._ensure_shards():
                shard._process.terminate()
                shard._process.join(timeout=5.0)
            with pytest.raises(PipelineError):
                runner.run(1)
        finally:
            runner.close()
        self.assert_unlinked(names)

    def test_recovery_unlinks_the_dead_shards_segments_too(self):
        """Respawn replaces segments; neither the dead shard's old
        segment nor the replacement's survives close()."""
        runner = ShardedEngineRunner(
            config_for(transport="shm"), SCHEDULE, GENS
        )
        try:
            runner.run(1)
            before = runner.shm_segment_names
            for shard in runner._ensure_shards():
                shard._process.terminate()
                shard._process.join(timeout=5.0)
            runner.run(1)
            after = runner.shm_segment_names
            assert runner.ipc_stats.restarts == 2
            assert set(before).isdisjoint(after)
            self.assert_unlinked(before)
        finally:
            runner.close()
        self.assert_unlinked(after)


@shm_capable
class TestSegmentProtocol:
    def test_payload_frame_round_trip(self):
        segment = shm.ShardSegment.create(ring_bytes=256, ctrl_bytes=64)
        try:
            segment.begin_round(7)
            frame = segment.write_frame([b"abc", b"defg"], 7)
            assert frame == (7, 0, 7)
            view = segment.read_frame(frame)
            assert bytes(view) == b"abcdefg"
            view.release()
        finally:
            segment.release()

    def test_overflowing_frame_returns_none(self):
        segment = shm.ShardSegment.create(ring_bytes=8, ctrl_bytes=64)
        try:
            segment.begin_round(1)
            assert segment.write_frame([b"x" * 9], 9) is None
            assert segment.write_frame([b"x" * 8], 8) == (1, 0, 8)
            assert segment.write_frame([b"y"], 1) is None  # ring is full
        finally:
            segment.release()

    def test_stale_descriptor_fails_loudly(self):
        segment = shm.ShardSegment.create(ring_bytes=256, ctrl_bytes=64)
        try:
            segment.begin_round(1)
            frame = segment.write_frame([b"abc"], 3)
            segment.begin_round(2)
            with pytest.raises(PipelineError, match="desynchronized"):
                segment.read_frame(frame)
        finally:
            segment.release()

    def test_ctrl_stash_round_trip_and_overflow(self):
        segment = shm.ShardSegment.create(ring_bytes=64, ctrl_bytes=64)
        try:
            segment.begin_round(3)
            frame = segment.stash({"budget": 1200})
            assert shm.is_ctrl_frame(frame)
            assert segment.unstash(frame) == {"budget": 1200}
            assert segment.stash("x" * 4096) is None  # region too small
        finally:
            segment.release()

    def test_release_is_idempotent_and_unlinks(self):
        segment = shm.ShardSegment.create()
        name = segment.name
        segment.release()
        segment.release()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
