"""Transports — how weighted batches move between tree nodes.

The engine's run loop is transport-agnostic: a node's output batches
are handed to a :class:`Transport`, and a node's interval input is
whatever :meth:`Transport.collect` returns. Three implementations
cover the paper's spectrum of realism:

* :class:`InProcessTransport` — plain per-node inboxes; batches move
  by direct callback. The statistical (accuracy) engine's default.
* :class:`BrokerTransport` — every node ingests from its own pub/sub
  topic (one consumer group per node, as the paper's Kafka layer
  does); delivery is immediate but observable and replayable through
  the broker's offsets.
* :class:`SimnetBrokerTransport` — broker topics fed over simulated
  WAN links: a send crosses the src→dst link (propagation +
  serialization + FIFO queueing) before the record lands in the
  destination topic. The deployment engine's default.

All three deliver batches in send order per destination, so a seeded
run produces identical samples on every transport (the cross-transport
parity tests assert this exactly).

Transports are data-plane agnostic: a :class:`WeightedBatch` payload
may be a ``list[StreamItem]`` (object plane) or a
:class:`~repro.core.columns.ColumnarBatch` (columnar plane). In
process, columnar batches move by reference — four array pointers
instead of N objects. Over the broker and simnet the record value *is*
the column set (column-wise, not per-item), and byte accounting
(``batch.total_bytes``, feeding link serialization and Fig. 7's
bandwidth series) dispatches to the size column, so both planes charge
the network identically.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.broker.records import Record, Serde
from repro.core.items import WeightedBatch
from repro.errors import ConfigurationError

__all__ = [
    "Transport",
    "InProcessTransport",
    "BrokerTransport",
    "SimnetBrokerTransport",
    "topic_for",
    "make_statistical_transport",
]


def topic_for(node_name: str) -> str:
    """The ingest topic carrying a sampling node's input batches."""
    return f"ingest-{node_name}"


class Transport(Protocol):
    """Moves weighted batches from a node to a sampling node's inbox."""

    def register(self, node_name: str) -> None:
        """Declare a sampling node as a batch destination."""

    def send(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """Ship one weighted batch from ``src`` toward ``dst``."""

    def collect(self, dst: str) -> list[WeightedBatch]:
        """Drain and return the batches awaiting ``dst``, in order."""

    def has_pending(self) -> bool:
        """True while any registered destination has undrained batches."""

    def close(self) -> None:
        """Release per-node resources (consumers, inboxes)."""


class InProcessTransport:
    """Direct-callback delivery: one list-backed inbox per node."""

    def __init__(self) -> None:
        self._inboxes: dict[str, list[WeightedBatch]] = {}

    def register(self, node_name: str) -> None:
        """Create the node's inbox (idempotent)."""
        self._inboxes.setdefault(node_name, [])

    def send(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """Append the batch to the destination's inbox, by reference."""
        try:
            self._inboxes[dst].append(batch)
        except KeyError:
            raise ConfigurationError(
                f"send to unregistered node {dst!r}"
            ) from None

    def collect(self, dst: str) -> list[WeightedBatch]:
        """Drain the node's inbox, returning batches in send order."""
        if dst not in self._inboxes:
            raise ConfigurationError(
                f"collect from unregistered node {dst!r}"
            )
        batches, self._inboxes[dst] = self._inboxes[dst], []
        return batches

    def has_pending(self) -> bool:
        """True while any inbox holds undrained batches."""
        return any(self._inboxes.values())

    def close(self) -> None:
        """Drop every inbox."""
        self._inboxes.clear()


class BrokerTransport:
    """Pub/sub delivery: one ingest topic + consumer group per node.

    Mirrors the paper's Kafka layer: node ``X`` polls topic
    ``ingest-X`` through consumer group ``group-X``. Records carry the
    batch's sub-stream as key and the transport clock's time as
    timestamp.

    ``serde`` selects how a batch lands in the topic: ``None`` (the
    in-process default) stores the live object by reference, while a
    :class:`~repro.broker.records.Serde` — typically
    :data:`~repro.broker.records.COLUMNAR_SERDE` — turns every record
    value into real bytes on produce and back on poll, the shape a
    multi-process broker deployment runs. The columnar serde moves
    whole column buffers instead of pickling per record, and a decoded
    batch preserves values, timestamps, sizes and therefore
    ``total_bytes`` exactly, so byte accounting is serde-invariant.
    """

    def __init__(
        self,
        broker: Broker | None = None,
        *,
        max_poll_records: int = 1_000_000,
        now: Callable[[], float] | None = None,
        serde: "Serde | None" = None,
    ) -> None:
        self.broker = broker if broker is not None else Broker("engine")
        self._max_poll_records = max_poll_records
        self._now = now if now is not None else (lambda: 0.0)
        self._serde = serde
        self._consumers: dict[str, Consumer] = {}

    def register(self, node_name: str) -> None:
        """Create the node's ingest topic and consumer (idempotent)."""
        if node_name in self._consumers:
            return
        topic = topic_for(node_name)
        self.broker.ensure_topic(topic)
        self._consumers[node_name] = Consumer(
            self.broker,
            group_id=f"group-{node_name}",
            topics=[topic],
            member_id=node_name,
            max_poll_records=self._max_poll_records,
        )

    def deliver(self, dst: str, batch: WeightedBatch) -> None:
        """Land one batch in the destination topic (the final hop)."""
        value = batch if self._serde is None else self._serde.serialize(batch)
        self.broker.produce(
            topic_for(dst),
            Record(key=batch.substream, value=value, timestamp=self._now()),
        )

    def send(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """Produce the batch straight to the destination topic."""
        self.deliver(dst, batch)

    def collect(self, dst: str) -> list[WeightedBatch]:
        """Poll the node's consumer group, decoding if a serde is set."""
        try:
            consumer = self._consumers[dst]
        except KeyError:
            raise ConfigurationError(
                f"collect from unregistered node {dst!r}"
            ) from None
        if self._serde is None:
            return [record.value for record in consumer.poll()]
        return [self._serde.deserialize(record.value) for record in consumer.poll()]

    def has_pending(self) -> bool:
        """True while any consumer lags behind its topic's end offset."""
        for node_name, consumer in self._consumers.items():
            topic = topic_for(node_name)
            for partition, end in self.broker.end_offsets(topic).items():
                if consumer.position(topic, partition) < end:
                    return True
        return False

    def close(self) -> None:
        """Close every consumer and forget the registrations."""
        for consumer in self._consumers.values():
            consumer.close()
        self._consumers.clear()


class SimnetBrokerTransport(BrokerTransport):
    """Broker topics fed over simulated WAN links.

    A send crosses the ``src -> dst`` link of the placement network —
    paying propagation delay, serialization at the link's bandwidth
    and FIFO queueing behind earlier transfers — and the record is
    produced to the destination topic on delivery. Record timestamps
    therefore reflect simulated arrival time, and link byte counters
    feed the bandwidth experiments (Fig. 7).
    """

    def __init__(
        self,
        network,
        broker: Broker | None = None,
        *,
        max_poll_records: int = 1_000_000,
    ) -> None:
        super().__init__(
            broker,
            max_poll_records=max_poll_records,
            now=lambda: network.clock.now,
        )
        self._network = network

    def send(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """Cross the src→dst WAN link, then produce on delivery."""
        self._network.send(
            src,
            dst,
            batch.total_bytes,
            batch,
            lambda delivered: self.deliver(dst, delivered),
        )


def make_statistical_transport(name: str) -> Transport:
    """The transport behind a statistical (algorithmic) run.

    ``"auto"`` resolves to in-process delivery; ``"simnet"`` is
    rejected because the algorithmic engine has no simulation clock to
    drive link events (use the deployment simulator for that).
    """
    if name in ("auto", "inprocess"):
        return InProcessTransport()
    if name == "broker":
        return BrokerTransport()
    raise ConfigurationError(
        f"the statistical runner supports transports "
        f"('inprocess', 'broker'), got {name!r}; the 'simnet' transport "
        f"requires the deployment simulator"
    )
