"""Discrete-event WAN/host simulator.

Replaces the paper's 25-node testbed and ``tc`` traffic shaping with a
deterministic simulation: a shared virtual clock, hosts with finite
service rates (the root saturates exactly as the paper's datacenter
node does), and links with propagation delay, serialization delay and
FIFO queueing at the paper's WAN settings (20/40/80 ms RTT, 1 Gbps).
"""

from repro.simnet.clock import Clock, Event
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.netem import PAPER_WAN, NetemConfig
from repro.simnet.network import Network
from repro.simnet.stats import LatencyRecorder, bandwidth_saving, network_snapshot

__all__ = [
    "Clock",
    "Event",
    "Host",
    "LatencyRecorder",
    "Link",
    "NetemConfig",
    "Network",
    "PAPER_WAN",
    "bandwidth_saving",
    "network_snapshot",
]
