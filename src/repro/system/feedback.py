"""Adaptive feedback driver (§IV-B's refinement loop).

When a window's reported error bound exceeds the analyst's budget, the
root refines the sampling parameters at all layers for subsequent runs.
:class:`FeedbackDriver` wires the
:class:`~repro.core.cost.AdaptiveErrorBudget` controller to the
statistical runner: after each window the realized relative error bound
is fed back and the next window runs at the adjusted fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import AdaptiveErrorBudget
from repro.errors import PipelineError
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner, WindowOutcome
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator

__all__ = ["FeedbackDriver", "FeedbackOutcome"]


@dataclass
class FeedbackOutcome:
    """Trace of an adaptive run."""

    windows: list[WindowOutcome] = field(default_factory=list)
    fractions: list[float] = field(default_factory=list)
    relative_errors: list[float] = field(default_factory=list)

    @property
    def final_fraction(self) -> float:
        """The fraction the controller settled on."""
        if not self.fractions:
            raise PipelineError("adaptive run recorded no windows")
        return self.fractions[-1]


class FeedbackDriver:
    """Runs windows, feeding each error bound back into the controller."""

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
        controller: AdaptiveErrorBudget,
    ) -> None:
        self._base_config = config
        self._schedule = schedule
        self._generators = generators
        self._controller = controller

    def run(self, windows: int) -> FeedbackOutcome:
        """Run ``windows`` windows with per-window fraction refinement.

        Each window is executed by a fresh statistical runner at the
        controller's current fraction (sampling parameters refined "in
        subsequent runs", per the paper); the realized relative error
        bound of the SUM estimate drives the next adjustment.
        """
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = FeedbackOutcome()
        for index in range(windows):
            fraction = self._controller.fraction
            # Vary the seed per window so the adaptive trace is not a
            # single replayed sample path.
            config = self._base_config.with_fraction(fraction).with_seed(
                self._base_config.seed + index
            )
            with StatisticalRunner(
                config, self._schedule, self._generators
            ) as runner:
                window = runner.run_window()
            relative_error = (
                window.approx_sum.relative_error()
                if window.approx_sum.value != 0
                else 0.0
            )
            self._controller.observe(relative_error)
            outcome.windows.append(window)
            outcome.fractions.append(fraction)
            outcome.relative_errors.append(relative_error)
        return outcome
