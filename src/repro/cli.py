"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [ids...] [--scale quick|bench] [--backend ...]
  [--transport ...] [--data-plane ...] [--workers N]
  [--budget-controller ...] [--shard-transport ...]
  [--shard-timeout S] [--on-shard-loss ...] [--inject-fault SPEC]`` —
  regenerate the paper's evaluation figures as text tables (all of
  them by default) on the selected sampling backend, inter-node
  transport, data plane, worker-shard count, per-window budget
  controller, shard IPC plane and shard-supervision knobs (watchdog
  deadline, loss policy, injected faults).
* ``scenarios run <name> [--windows N] [--fraction F] [--scale ...]
  [--backend ...] [--transport ...] [--data-plane ...] [--workers N]
  [--budget-controller ...] [--shard-transport ...]
  [--shard-timeout S] [--on-shard-loss ...] [--inject-fault SPEC]`` —
  run a built-in dynamic-workload scenario (bursts, skew drift, node
  churn, degraded links) and print its per-window quality-over-time
  table, optionally with the §IV-B feedback loop closed in-run.
* ``scenarios list`` — list the built-in scenario catalog.
* ``list`` — list the available figures with descriptions.
* ``info`` — print the library version and subsystem inventory.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro import __version__
from repro.core.fastpath import BACKENDS
from repro.errors import ReproError
from repro.experiments.base import (
    ExperimentScale,
    base_config,
    gaussian_generators,
    uniform_schedule,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.scenarios.catalog import BUILTIN_SCENARIOS, get_scenario
from repro.system.config import (
    BUDGET_CONTROLLERS,
    DATA_PLANES,
    SHARD_LOSS_POLICIES,
    SHARD_TRANSPORTS,
    TRANSPORTS,
)
from repro.system.scenarios import ScenarioRunner

__all__ = ["build_parser", "main"]

_SCALES = {
    "quick": ExperimentScale.quick,
    "bench": ExperimentScale.bench,
}

_SUBSYSTEMS = [
    ("repro.core", "weighted hierarchical sampling, estimators, bounds"),
    ("repro.broker", "Kafka-model pub/sub substrate"),
    ("repro.streams", "Kafka-Streams-model processing engine"),
    ("repro.simnet", "discrete-event WAN/host simulator"),
    ("repro.topology", "logical tree + placement"),
    ("repro.engine", "unified execution engine (pipeline, transports)"),
    ("repro.scenarios", "declarative dynamic-workload scenarios"),
    ("repro.system", "runner facades (statistical / deployment / scenario)"),
    ("repro.workloads", "synthetic + real-world trace generators"),
    ("repro.queries", "linear, grouped, top-k and quantile queries"),
    ("repro.experiments", "per-figure evaluation harness"),
]


def _add_engine_knobs(parser: argparse.ArgumentParser, *, transport_help: str,
                      workers_help: str) -> None:
    """The engine knobs shared by ``figures`` and ``scenarios run``."""
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="experiment sizing (default: quick)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="auto",
        help="sampling kernel (default: auto — numpy when installed)",
    )
    parser.add_argument(
        "--transport",
        choices=sorted(TRANSPORTS),
        default="auto",
        help=transport_help,
    )
    parser.add_argument(
        "--data-plane",
        choices=sorted(DATA_PLANES),
        default="objects",
        help="record representation between layers (default: objects; "
             "columnar moves structure-of-arrays batches end-to-end "
             "with identical seeded samples)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=workers_help,
    )
    parser.add_argument(
        "--budget-controller",
        choices=sorted(BUDGET_CONTROLLERS),
        default="static",
        help="per-window budget feedback for statistical runs (default: "
             "static = no feedback; adaptive_fraction steers the global "
             "fraction on the reported bound; variance_aware re-splits a "
             "fixed budget toward high-variance sub-streams)",
    )
    parser.add_argument(
        "--shard-transport",
        choices=sorted(SHARD_TRANSPORTS),
        default="auto",
        help="shard IPC plane for --workers > 1 (default: auto — "
             "per-shard shared-memory rings where fork + shared memory "
             "are available, the pipe codec otherwise; results are "
             "bit-identical on every transport)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="S",
        help="watchdog deadline in seconds per window slot for "
             "--workers > 1 (default: none — wait forever); a hung "
             "shard is diagnosed within the deadline and recovered by "
             "respawn-and-replay",
    )
    parser.add_argument(
        "--on-shard-loss",
        choices=sorted(SHARD_LOSS_POLICIES),
        default="abort",
        help="policy once a worker shard exhausts its restart budget "
             "(default: abort — fail the run loudly; degrade continues "
             "on the surviving shards with per-window loss accounting)",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="KIND@SHARD:WINDOW",
        help="inject a deterministic fault into a worker shard for the "
             "supervision harness, e.g. crash@0:1 (kinds: crash, hang, "
             "raise, corrupt-descriptor; repeatable; requires "
             "--workers > 1, and hang also needs --shard-timeout)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ApproxIoT reproduction (ICDCS 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="regenerate evaluation figures as text tables"
    )
    figures.add_argument(
        "ids",
        nargs="*",
        metavar="FIG",
        help=f"figure ids to run (default: all of {sorted(FIGURES)})",
    )
    _add_engine_knobs(
        figures,
        transport_help="inter-node transport (default: auto — in-process "
                       "for accuracy figures, simnet for deployment "
                       "figures)",
        workers_help="process-parallel worker shards for the statistical "
                     "(accuracy) figures; deployment figures model "
                     "distribution via simnet and ignore it (default: 1)",
    )

    scenarios = subparsers.add_parser(
        "scenarios",
        help="run declarative dynamic-workload scenarios",
    )
    scenario_commands = scenarios.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_run = scenario_commands.add_parser(
        "run",
        help="run a built-in scenario and print quality-over-time metrics",
    )
    scenario_run.add_argument(
        "name",
        metavar="SCENARIO",
        help=f"scenario to run, one of {list(BUILTIN_SCENARIOS)}",
    )
    scenario_run.add_argument(
        "--windows",
        type=int,
        default=None,
        metavar="N",
        help="windows to run (default: the scenario's own length)",
    )
    scenario_run.add_argument(
        "--fraction",
        type=float,
        default=0.1,
        metavar="F",
        help="end-to-end sampling fraction (default: 0.1, the paper's "
             "headline operating point)",
    )
    _add_engine_knobs(
        scenario_run,
        transport_help="inter-node transport (default: auto = in-process; "
                       "'simnet' is rejected — churn re-parents the tree "
                       "mid-run, which would desync a static WAN "
                       "placement)",
        workers_help="process-parallel worker shards; every shard replays "
                     "the identical scenario timeline (default: 1)",
    )
    scenario_commands.add_parser(
        "list", help="list the built-in scenario catalog"
    )

    subparsers.add_parser("list", help="list available figures")
    subparsers.add_parser("info", help="print version and inventory")
    return parser


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    """The experiment sizing an engine-knob namespace selects."""
    return replace(
        _SCALES[args.scale](),
        backend=args.backend,
        transport=args.transport,
        data_plane=args.data_plane,
        workers=args.workers,
        budget_controller=args.budget_controller,
        shard_transport=args.shard_transport,
        shard_timeout=args.shard_timeout,
        on_shard_loss=args.on_shard_loss,
        inject_faults=tuple(args.inject_fault or ()),
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    try:
        scale = _scale_from_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = args.ids or sorted(FIGURES)
    for figure_id in targets:
        try:
            run_figure(figure_id, scale)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    try:
        scenario = get_scenario(args.name)
        scale = _scale_from_args(args)
        config = base_config(args.fraction, scale)
        schedule = uniform_schedule(scale.rate_scale)
        with ScenarioRunner(
            config, schedule, gaussian_generators(), scenario
        ) as runner:
            outcome = runner.run(args.windows)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(outcome.report())
    print()
    print(outcome.summary())
    return 0


def _cmd_scenarios_list() -> int:
    width = max(len(name) for name in BUILTIN_SCENARIOS)
    for name, scenario in BUILTIN_SCENARIOS.items():
        print(
            f"{name.ljust(width)}  {scenario.windows:>3d} windows  "
            f"{scenario.description}"
        )
    return 0


def _cmd_list() -> int:
    width = max(len(figure_id) for figure_id in FIGURES)
    for figure_id in sorted(FIGURES):
        description, _entry = FIGURES[figure_id]
        print(f"{figure_id.ljust(width)}  {description}")
    return 0


def _cmd_info() -> int:
    print(f"repro {__version__} — ApproxIoT reproduction (ICDCS 2018)")
    print("subsystems:")
    for module, description in _SUBSYSTEMS:
        print(f"  {module.ljust(18)} {description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "scenarios":
            if args.scenario_command == "run":
                return _cmd_scenarios_run(args)
            return _cmd_scenarios_list()
        if args.command == "list":
            return _cmd_list()
        return _cmd_info()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
