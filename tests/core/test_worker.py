"""Unit tests for the distributed-execution extension (§III-E)."""

import random

import pytest

from repro.core.items import StreamItem
from repro.core.worker import SubstreamWorker, WorkerPool, pooled_estimated_count
from repro.errors import SamplingError


def make_items(substream, values):
    return [StreamItem(substream, float(v)) for v in values]


class TestSubstreamWorker:
    def test_local_counter(self):
        worker = SubstreamWorker("s", 5, random.Random(1))
        for item in make_items("s", range(12)):
            worker.offer(item)
        assert worker.seen == 12

    def test_flush_weight_and_reset(self):
        worker = SubstreamWorker("s", 5, random.Random(2))
        for item in make_items("s", range(20)):
            worker.offer(item)
        batch = worker.flush(input_weight=1.0)
        assert batch.weight == pytest.approx(4.0)
        assert len(batch) == 5
        assert worker.seen == 0  # reset for next interval

    def test_rejects_foreign_substream(self):
        worker = SubstreamWorker("s", 5)
        with pytest.raises(SamplingError):
            worker.offer(StreamItem("other", 1.0))

    def test_invalid_capacity(self):
        with pytest.raises(SamplingError):
            SubstreamWorker("s", 0)


class TestWorkerPool:
    def test_round_robin_sharding_is_even(self):
        pool = WorkerPool("s", 40, 4, rng=random.Random(3))
        pool.extend(make_items("s", range(100)))
        assert pool.seen == 100
        assert all(w.seen == 25 for w in pool._workers)

    def test_count_invariant_over_union(self):
        """Eq. 8 holds for the concatenation of worker batches."""
        pool = WorkerPool("s", 40, 4, rng=random.Random(4))
        pool.extend(make_items("s", range(1000)))
        batches = pool.flush(input_weight=1.0)
        assert pooled_estimated_count(batches) == pytest.approx(1000.0)

    def test_count_invariant_with_input_weight(self):
        pool = WorkerPool("s", 20, 2, rng=random.Random(5))
        pool.extend(make_items("s", range(100)))
        batches = pool.flush(input_weight=2.5)
        assert pooled_estimated_count(batches) == pytest.approx(250.0)

    def test_estimate_invariant_across_worker_counts(self):
        """The ablation claim: worker count does not bias the estimate."""
        rng = random.Random(6)
        values = [rng.gauss(100, 10) for _ in range(4000)]
        true_sum = sum(values)
        for workers in (1, 2, 4, 8):
            totals = []
            for trial in range(30):
                pool = WorkerPool(
                    "s", 400, workers, rng=random.Random(100 + trial)
                )
                pool.extend(make_items("s", values))
                batches = pool.flush(1.0)
                totals.append(sum(b.estimated_sum for b in batches))
            mean_total = sum(totals) / len(totals)
            assert mean_total == pytest.approx(true_sum, rel=0.02)

    def test_underfull_workers_keep_everything(self):
        pool = WorkerPool("s", 100, 4, rng=random.Random(7))
        pool.extend(make_items("s", range(8)))
        batches = pool.flush(1.0)
        assert sum(len(b) for b in batches) == 8
        assert all(b.weight == 1.0 for b in batches)

    def test_validation(self):
        with pytest.raises(SamplingError):
            WorkerPool("s", 10, 0)
        with pytest.raises(SamplingError):
            WorkerPool("s", 3, 4)  # less than one slot per worker


class TestColumnarOffer:
    """offer_columns: index-sliced round-robin == per-item routing."""

    BACKENDS = ["python"]
    try:
        import numpy  # noqa: F401

        BACKENDS.append("numpy")
    except ImportError:
        pass

    @staticmethod
    def columnar(substream, values):
        from repro.core.columns import ColumnarBatch

        return ColumnarBatch.single(substream, [float(v) for v in values])

    def flushed(self, pool, weight=1.0):
        return [
            (b.substream, b.weight, [item.value for item in b.items])
            for b in pool.flush(weight)
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_per_item_round_robin(self, backend):
        batch = self.columnar("s", range(41))
        per_item = WorkerPool("s", 12, 3, rng=random.Random(5), backend=backend)
        batched = WorkerPool("s", 12, 3, rng=random.Random(5), backend=backend)
        per_item.extend(batch.to_items())
        batched.offer_columns(batch)
        assert per_item.seen == batched.seen == 41
        assert self.flushed(per_item) == self.flushed(batched)

    def test_cursor_is_shared_with_per_item_offers(self):
        """A batch arriving mid-rotation lands exactly where per-item
        offers would have put it."""
        head = make_items("s", range(2))
        tail = self.columnar("s", range(2, 30))
        mixed = WorkerPool("s", 9, 3, rng=random.Random(6))
        plain = WorkerPool("s", 9, 3, rng=random.Random(6))
        mixed.extend(head)
        mixed.offer_columns(tail)
        plain.extend(head + tail.to_items())
        assert self.flushed(mixed) == self.flushed(plain)

    def test_empty_batch_is_a_noop(self):
        from repro.core.columns import ColumnarBatch

        pool = WorkerPool("s", 4, 2, rng=random.Random(7))
        pool.offer_columns(ColumnarBatch.empty())
        pool.offer_columns(self.columnar("s", []))
        assert pool.seen == 0

    def test_rejects_foreign_or_mixed_strata(self):
        from repro.core.columns import ColumnarBatch

        pool = WorkerPool("s", 4, 2, rng=random.Random(8))
        with pytest.raises(SamplingError):
            pool.offer_columns(self.columnar("other", [1.0]))
        mixed = ColumnarBatch(["s", "t"], [1.0, 2.0], [0.0, 0.0])
        with pytest.raises(SamplingError):
            pool.offer_columns(mixed)

    def test_parallel_node_receive_columns_matches_receive_raw(self):
        from repro.core.columns import ColumnarBatch
        from repro.core.worker import ParallelSamplingNode

        mixed = ColumnarBatch(
            ["a", "b", "a", "b", "a"],
            [1.0, 2.0, 3.0, 4.0, 5.0],
            [0.0] * 5,
        )
        outputs = {}
        for label in ("raw", "columns"):
            collected = []
            node = ParallelSamplingNode(
                "n", 4, 2, collected.append, rng=random.Random(9)
            )
            if label == "raw":
                node.receive_raw(mixed.to_items())
            else:
                node.receive_columns(mixed)
            node.close_interval()
            outputs[label] = [
                (b.substream, b.weight, [i.value for i in b.items])
                for b in collected
            ]
        assert outputs["raw"] == outputs["columns"]

    def test_accepts_single_stratum_batch_tagged_per_record(self):
        from repro.core.columns import ColumnarBatch

        tagged = ColumnarBatch(["s", "s", "s"], [1.0, 2.0, 3.0], [0.0] * 3)
        uniform = ColumnarBatch.single("s", [1.0, 2.0, 3.0])
        pools = [
            WorkerPool("s", 4, 2, rng=random.Random(10)) for _ in range(2)
        ]
        pools[0].offer_columns(tagged)
        pools[1].offer_columns(uniform)
        flushed = [
            [(b.substream, b.weight, [i.value for i in b.items])
             for b in pool.flush(1.0)]
            for pool in pools
        ]
        assert flushed[0] == flushed[1]
