"""Distributed execution extension (§III-E of the paper).

A sub-stream can be handled by ``w`` worker nodes: each worker samples
an equal share of the sub-stream's items into a local reservoir of size
at most ``N_i / w`` and keeps a local arrival counter for the weight
calculation. No synchronisation is needed — the per-worker batches are
simply concatenated upstream, and the count-preservation invariant
(Eq. 8) holds per worker, hence also for the union.

The implementation is deliberately deterministic and in-process (we
shard round-robin rather than by a load balancer), which keeps the
statistical behaviour identical while making tests reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.columns import ColumnarBatch
from repro.core.fastpath import (
    BACKEND_PYTHON,
    make_reservoir_sampler,
    resolve_backend,
)
from repro.core.items import StreamItem, WeightedBatch
from repro.core.reservoir import ReservoirSampler
from repro.core.weights import WeightMap, output_weight
from repro.errors import SamplingError

__all__ = ["ParallelSamplingNode", "SubstreamWorker", "WorkerPool"]


class SubstreamWorker:
    """One worker's local reservoir and counter for a single sub-stream.

    ``backend`` selects the reservoir implementation. The default stays
    pure Python: the pool routes items one at a time (round-robin), and
    the vectorized backend only pays off when fed in batches.
    """

    def __init__(
        self,
        substream: str,
        capacity: int,
        rng: random.Random | None = None,
        *,
        backend: str = BACKEND_PYTHON,
    ) -> None:
        if capacity <= 0:
            raise SamplingError(f"worker capacity must be >= 1, got {capacity}")
        self.substream = substream
        self._sampler: ReservoirSampler[StreamItem] = make_reservoir_sampler(
            capacity, rng, backend=backend
        )

    @property
    def seen(self) -> int:
        """Local arrival counter (items routed to this worker)."""
        return self._sampler.seen

    def offer(self, item: StreamItem) -> None:
        """Route one item of the sub-stream to this worker."""
        if item.substream != self.substream:
            raise SamplingError(
                f"worker for {self.substream!r} got item of {item.substream!r}"
            )
        self._sampler.offer(item)

    def offer_chunk(self, chunk: ColumnarBatch) -> None:
        """Route this worker's slice of a columnar batch in one call.

        The chunk's records enter the reservoir in slice order — the
        order per-item round-robin delivery would have produced — so
        a seeded flush is identical either way. On the vectorized
        backend the replacement *draws* for the whole chunk happen in
        one call; the records themselves are still materialized as
        :class:`StreamItem` objects at reservoir ingestion (the
        reservoir stores items), so the batched path removes the
        per-record routing dispatch, not the per-record object. A
        fully columnar worker reservoir (indices over accumulated
        chunks, survivors converted at flush) is the remaining step.
        """
        tag = chunk.uniform_substream
        if tag is not None and tag != self.substream:
            raise SamplingError(
                f"worker for {self.substream!r} got a chunk of {tag!r}"
            )
        self._sampler.extend(chunk.to_items())

    def flush(self, input_weight: float) -> WeightedBatch:
        """Close the interval: emit this worker's weighted batch.

        The weight is computed from the *local* counter against the
        *local* capacity, exactly as §III-E prescribes; the worker's
        reservoir is reset for the next interval.
        """
        sampled = self._sampler.sample()
        weight = output_weight(
            input_weight, self._sampler.seen, self._sampler.capacity
        )
        self._sampler.reset()
        return WeightedBatch(self.substream, weight, sampled)


class WorkerPool:
    """A set of ``w`` workers jointly sampling one sub-stream.

    The pool shards arriving items round-robin, so each worker receives
    an equal portion (±1) of the sub-stream, matching the paper's
    "each worker node samples an equal portion of items" assumption.
    """

    def __init__(
        self,
        substream: str,
        total_capacity: int,
        worker_count: int,
        *,
        rng: random.Random | None = None,
        backend: str = BACKEND_PYTHON,
    ) -> None:
        if worker_count <= 0:
            raise SamplingError(f"worker count must be >= 1, got {worker_count}")
        if total_capacity < worker_count:
            raise SamplingError(
                "total capacity must allow at least one slot per worker "
                f"(capacity={total_capacity}, workers={worker_count})"
            )
        self.substream = substream
        per_worker = total_capacity // worker_count
        seed_rng = rng if rng is not None else random.Random()
        self._workers = [
            SubstreamWorker(
                substream,
                per_worker,
                random.Random(seed_rng.getrandbits(64)),
                backend=backend,
            )
            for _ in range(worker_count)
        ]
        self._next = 0

    @property
    def worker_count(self) -> int:
        """Number of workers in the pool."""
        return len(self._workers)

    @property
    def seen(self) -> int:
        """Total items routed into the pool this interval."""
        return sum(worker.seen for worker in self._workers)

    def offer(self, item: StreamItem) -> None:
        """Shard one item to the next worker (round-robin)."""
        self._workers[self._next].offer(item)
        self._next = (self._next + 1) % len(self._workers)

    def extend(self, items: Iterable[StreamItem]) -> None:
        """Shard a sequence of items across the pool."""
        for item in items:
            self.offer(item)

    def offer_columns(self, batch: ColumnarBatch) -> None:
        """Shard a whole columnar batch by index slicing (batched).

        Round-robin assignment is a pure function of position: with
        the cursor at ``t``, record ``i`` belongs to worker
        ``(t + i) % w`` — so worker ``j``'s share is the index slice
        ``(j - t) % w, (j - t) % w + w, ...``, gathered with one
        column ``select`` per worker instead of a Python dispatch per
        record. Each worker receives exactly the records, in exactly
        the order, per-item :meth:`offer` would have routed to it, so
        seeded flushes are identical on either path; the batched path
        replaces ``n`` modulo steps with ``w`` slices and lets the
        vectorized reservoir backend ingest each slice in one call.

        The batch must be single-stratum (stratify mixed payloads
        with ``group_by_substream`` first), matching the pool's
        single sub-stream.
        """
        n = len(batch)
        if n == 0:
            return
        tag = batch.uniform_substream
        if tag is None:
            # Single-stratum batches tagged per record (e.g. built by
            # hand) are as valid as uniform-tagged ones — normalize so
            # both routing paths accept exactly the same records.
            tags = set(batch.substream_ids())
            if tags == {self.substream}:
                batch = ColumnarBatch(
                    self.substream, batch.values, batch.timestamps,
                    batch.sizes,
                )
            else:
                raise SamplingError(
                    f"pool for {self.substream!r} got a mixed batch of "
                    f"{sorted(tags)}; group by sub-stream before offering"
                )
        elif tag != self.substream:
            raise SamplingError(
                f"pool for {self.substream!r} got a batch of {tag!r}"
            )
        w = len(self._workers)
        for j, worker in enumerate(self._workers):
            start = (j - self._next) % w
            if start >= n:
                continue
            worker.offer_chunk(batch.select(range(start, n, w)))
        self._next = (self._next + n) % w

    def flush(self, input_weight: float) -> list[WeightedBatch]:
        """Close the interval on all workers and collect their batches."""
        self._next = 0
        return [worker.flush(input_weight) for worker in self._workers]


def pooled_estimated_count(batches: Sequence[WeightedBatch]) -> float:
    """Recovered item count over a pool's batches (union form of Eq. 8)."""
    return sum(batch.estimated_count for batch in batches)


class ParallelSamplingNode:
    """A node whose sampling is spread across ``w`` workers (§III-E).

    Plays the same per-interval role as
    :class:`~repro.core.node.SamplingNode`, but each sub-stream's
    reservoir is split across a :class:`WorkerPool`. No coordination
    happens between workers: each keeps a local counter and local
    reservoir, and the interval's output is simply every worker's
    weighted batch. The count-preservation invariant holds per worker,
    so the union is as unbiased as the single-reservoir node.
    """

    def __init__(
        self,
        name: str,
        per_substream_capacity: int,
        worker_count: int,
        forward: Callable[[WeightedBatch], None],
        *,
        rng: random.Random | None = None,
        backend: str = BACKEND_PYTHON,
    ) -> None:
        if per_substream_capacity < worker_count:
            raise SamplingError(
                "capacity must allow one slot per worker (capacity="
                f"{per_substream_capacity}, workers={worker_count})"
            )
        self.name = name
        self._capacity = per_substream_capacity
        self._worker_count = worker_count
        self._forward = forward
        # Resolve eagerly: pools are built lazily per sub-stream, and a
        # bad backend should fail here, not mid-stream.
        self._backend = resolve_backend(backend)
        self._rng = rng if rng is not None else random.Random()
        self._pools: dict[str, WorkerPool] = {}
        self._weights = WeightMap()
        self.intervals_processed = 0

    @property
    def worker_count(self) -> int:
        """Workers per sub-stream pool."""
        return self._worker_count

    def observe_weights(self, weights: Mapping[str, float]) -> None:
        """Record weight metadata received from downstream nodes."""
        self._weights.merge(weights)

    def _pool(self, substream: str) -> WorkerPool:
        pool = self._pools.get(substream)
        if pool is None:
            pool = WorkerPool(
                substream,
                self._capacity,
                self._worker_count,
                rng=random.Random(self._rng.getrandbits(64)),
                backend=self._backend,
            )
            self._pools[substream] = pool
        return pool

    def receive_raw(self, items: Iterable[StreamItem]) -> None:
        """Shard arriving items into their sub-stream's worker pool."""
        for item in items:
            self._pool(item.substream).offer(item)

    def receive_columns(self, batch: ColumnarBatch) -> None:
        """Shard a columnar batch: stratify, then index-sliced routing.

        The columnar twin of :meth:`receive_raw` — each stratum's
        chunk reaches its pool through
        :meth:`WorkerPool.offer_columns`, so routing is a handful of
        column slices per stratum instead of a per-record loop.
        """
        for substream, chunk in batch.group_by_substream().items():
            self._pool(substream).offer_columns(chunk)

    def close_interval(self) -> list[WeightedBatch]:
        """Flush every pool; forward and return all worker batches."""
        out: list[WeightedBatch] = []
        for substream, pool in self._pools.items():
            if pool.seen == 0:
                continue
            for batch in pool.flush(self._weights.get(substream)):
                if len(batch) == 0:
                    continue
                self._forward(batch)
                out.append(batch)
        self.intervals_processed += 1
        return out
