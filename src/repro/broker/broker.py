"""The broker: topic management plus consumer-group coordination.

One :class:`Broker` models a Kafka cluster's logical surface: create
and delete topics, produce, fetch, and coordinate consumer groups
(member registration, partition assignment, committed offsets). The
paper uses one Kafka cluster to carry the inter-layer topics of the
edge topology; :class:`~repro.broker.cluster.BrokerCluster` extends
this to several brokers with partition leadership for fault-injection
tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.broker.records import ConsumedRecord, Record
from repro.broker.topic import Topic
from repro.errors import (
    ConfigurationError,
    ConsumerGroupError,
    TopicExistsError,
    UnknownTopicError,
)

__all__ = ["Broker", "GroupState"]


class GroupState:
    """Book-keeping for one consumer group on one broker.

    Tracks members, the partition assignment produced by the trivial
    range assignor, committed offsets, and a generation counter bumped
    on every rebalance (used to fence zombie members, as in Kafka).
    """

    def __init__(self, group_id: str) -> None:
        self.group_id = group_id
        self.members: list[str] = []
        self.assignment: dict[str, list[tuple[str, int]]] = {}
        self.committed: dict[tuple[str, int], int] = {}
        self.generation = 0
        self.subscribed_topics: set[str] = set()

    def partitions_of(self, member_id: str) -> list[tuple[str, int]]:
        """The (topic, partition) pairs assigned to a member."""
        if member_id not in self.members:
            raise ConsumerGroupError(
                f"member {member_id!r} is not in group {self.group_id!r}"
            )
        return list(self.assignment.get(member_id, []))


class Broker:
    """An in-memory broker: topics + groups + produce/fetch."""

    def __init__(self, broker_id: str = "broker-0") -> None:
        self.broker_id = broker_id
        self._topics: dict[str, Topic] = {}
        self._groups: dict[str, GroupState] = {}

    # ------------------------------------------------------------------
    # Topic management
    # ------------------------------------------------------------------
    def create_topic(self, name: str, partitions: int = 1) -> Topic:
        """Create a topic; raises if it already exists."""
        if name in self._topics:
            raise TopicExistsError(f"topic {name!r} already exists")
        topic = Topic(name, partitions)
        self._topics[name] = topic
        return topic

    def ensure_topic(self, name: str, partitions: int = 1) -> Topic:
        """Create-if-absent (auto-create semantics)."""
        if name not in self._topics:
            return self.create_topic(name, partitions)
        return self._topics[name]

    def delete_topic(self, name: str) -> None:
        """Drop a topic and its data."""
        self.topic(name)  # raise UnknownTopicError if absent
        del self._topics[name]

    def topic(self, name: str) -> Topic:
        """Look up a topic by name."""
        try:
            return self._topics[name]
        except KeyError:
            raise UnknownTopicError(f"no such topic: {name!r}") from None

    def topics(self) -> list[str]:
        """All topic names, sorted."""
        return sorted(self._topics)

    # ------------------------------------------------------------------
    # Produce / fetch
    # ------------------------------------------------------------------
    def produce(
        self, topic: str, record: Record, partition: int | None = None
    ) -> tuple[int, int]:
        """Append one record; return ``(partition, offset)``."""
        return self.topic(topic).append(record, partition)

    def produce_batch(
        self, topic: str, records: Iterable[Record]
    ) -> list[tuple[int, int]]:
        """Append many records."""
        return self.topic(topic).append_batch(records)

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int | None = None,
    ) -> list[ConsumedRecord]:
        """Read records from a partition starting at an offset."""
        return self.topic(topic).read(partition, offset, max_records)

    def end_offsets(self, topic: str) -> dict[int, int]:
        """High watermarks of a topic's partitions."""
        return self.topic(topic).end_offsets()

    def enforce_retention(self, topic: str, max_records_per_partition: int) -> int:
        """Trim every partition to the newest ``max_records`` records.

        Returns the total number of records dropped. Consumers whose
        positions fall below the new start offset will raise
        :class:`~repro.errors.OffsetOutOfRangeError` on their next
        fetch, exactly as a lagging Kafka consumer does when retention
        deletes segments under it.
        """
        if max_records_per_partition < 0:
            raise ConfigurationError(
                "max_records_per_partition must be >= 0, got "
                f"{max_records_per_partition}"
            )
        dropped = 0
        target = self.topic(topic)
        for partition in range(target.partition_count):
            log = target.log(partition)
            dropped += log.truncate_before(
                log.end_offset - max_records_per_partition
            )
        return dropped

    def consumer_lag(self, group_id: str, topic: str) -> dict[int, int]:
        """Records each partition holds beyond the group's commits.

        Partitions with no committed offset count their full length as
        lag — the group has consumed nothing of them yet.
        """
        group = self._group(group_id)
        lags: dict[int, int] = {}
        for partition, end in self.end_offsets(topic).items():
            committed = group.committed.get((topic, partition), 0)
            lags[partition] = max(0, end - committed)
        return lags

    # ------------------------------------------------------------------
    # Consumer groups
    # ------------------------------------------------------------------
    def join_group(
        self, group_id: str, member_id: str, topics: Iterable[str]
    ) -> GroupState:
        """Register a member and rebalance the group's assignment."""
        group = self._groups.setdefault(group_id, GroupState(group_id))
        if member_id not in group.members:
            group.members.append(member_id)
        group.subscribed_topics.update(topics)
        self._rebalance(group)
        return group

    def leave_group(self, group_id: str, member_id: str) -> None:
        """Deregister a member and rebalance."""
        group = self._group(group_id)
        if member_id not in group.members:
            raise ConsumerGroupError(
                f"member {member_id!r} is not in group {group_id!r}"
            )
        group.members.remove(member_id)
        self._rebalance(group)

    def commit(
        self, group_id: str, topic: str, partition: int, offset: int
    ) -> None:
        """Record a committed offset for a group."""
        group = self._group(group_id)
        group.committed[(topic, partition)] = offset

    def committed(self, group_id: str, topic: str, partition: int) -> int | None:
        """The committed offset, or ``None`` if never committed."""
        group = self._group(group_id)
        return group.committed.get((topic, partition))

    def group(self, group_id: str) -> GroupState:
        """Public accessor for a group's state."""
        return self._group(group_id)

    def _group(self, group_id: str) -> GroupState:
        try:
            return self._groups[group_id]
        except KeyError:
            raise ConsumerGroupError(f"no such group: {group_id!r}") from None

    def _rebalance(self, group: GroupState) -> None:
        """Range-assign all subscribed partitions across members."""
        group.generation += 1
        group.assignment = {member: [] for member in group.members}
        if not group.members:
            return
        all_partitions: list[tuple[str, int]] = []
        for topic_name in sorted(group.subscribed_topics):
            if topic_name in self._topics:
                topic = self._topics[topic_name]
                all_partitions.extend(
                    (topic_name, p) for p in range(topic.partition_count)
                )
        members = sorted(group.members)
        for index, partition in enumerate(all_partitions):
            owner = members[index % len(members)]
            group.assignment[owner].append(partition)
