"""End-to-end integration of the paper's prototype architecture (Fig. 4).

Wires the actual substrates together the way §IV describes: input
streams land in broker topics; each edge layer is a streams application
whose user-defined sampling processor (low-level API) samples its
interval and produces to the next layer's topic; the root consumes the
final topic, samples once more, executes the query and attaches error
bounds. No shortcuts through the system-level runners — this exercises
broker + streams + core together.
"""

import random
from typing import Any

import pytest

from repro.broker import Broker, Producer
from repro.core import (
    StreamItem,
    ThetaStore,
    WeightedBatch,
    estimate_sum_with_error,
)
from repro.core.whs import WeightedHierarchicalSampler, whsamp_batches
from repro.streams import Processor, StreamBuilder, StreamsRuntime


class SamplingProcessor(Processor):
    """§IV's sampling module: WHSamp as a user-defined processor."""

    def __init__(self, name: str, sample_size: int, interval: float,
                 seed: int) -> None:
        super().__init__(name)
        self._sampler = WeightedHierarchicalSampler(
            sample_size, rng=random.Random(seed)
        )
        self._interval = interval
        self._raw: list[StreamItem] = []
        self._weighted: list[WeightedBatch] = []
        self._boundary = interval

    def process(self, key: Any, value: Any) -> None:
        if isinstance(value, WeightedBatch):
            self._weighted.append(value)
        else:
            self._raw.append(value)

    def punctuate(self, stream_time: float) -> None:
        while stream_time >= self._boundary:
            self._flush()
            self._boundary += self._interval

    def close(self) -> None:
        self._flush()

    def _flush(self) -> None:
        batches = list(self._weighted)
        self._weighted.clear()
        if self._raw:
            raw, self._raw = self._raw, []
            by_stream: dict[str, list[StreamItem]] = {}
            for item in raw:
                by_stream.setdefault(item.substream, []).append(item)
            batches.extend(
                WeightedBatch(substream, 1.0, items)
                for substream, items in by_stream.items()
            )
        if not batches:
            return
        result = whsamp_batches(
            batches, self._sampler.sample_size, rng=random.Random(len(batches))
        )
        for weighted in result.batches:
            self.context.forward(weighted.substream, weighted)


def build_layer(broker: Broker, in_topic: str, out_topic: str,
                sample_size: int, seed: int) -> StreamsRuntime:
    """One edge layer: consume, sample per interval, produce upward."""
    builder = StreamBuilder()
    (builder.stream(in_topic)
        .process_with(SamplingProcessor(f"samp-{in_topic}", sample_size,
                                        interval=1.0, seed=seed))
        .to(out_topic))
    return StreamsRuntime(broker, builder.build(),
                          application_id=f"layer-{in_topic}")


class TestPrototypeEndToEnd:
    @pytest.fixture()
    def broker(self):
        broker = Broker()
        for topic in ("layer0", "layer1", "layer2"):
            broker.create_topic(topic, partitions=2)
        return broker

    def _ingest(self, broker, rng, items_per_stream=2_000):
        producer = Producer(broker, batch_size=100)
        exact = 0.0
        count = 0
        for substream, mu in (("sensors/a", 10.0), ("sensors/b", 5_000.0)):
            for step in range(items_per_stream):
                timestamp = 4.0 * step / items_per_stream
                item = StreamItem(substream, rng.gauss(mu, mu * 0.1), timestamp)
                exact += item.value
                count += 1
                producer.send("layer0", item, key=substream,
                              timestamp=timestamp)
        producer.flush()
        return exact, count

    def test_two_sampling_layers_estimate_the_sum(self, broker):
        rng = random.Random(13)
        exact, count = self._ingest(broker, rng)

        layer1 = build_layer(broker, "layer0", "layer1",
                             sample_size=400, seed=1)
        layer2 = build_layer(broker, "layer1", "layer2",
                             sample_size=200, seed=2)
        for runtime in (layer1, layer2):
            runtime.run_to_completion()
            runtime.advance_stream_time(10.0)
            runtime.close()
        # Batches emitted at close() need one more drain into layer2.
        # (close() flushes through the sink synchronously.)

        theta = ThetaStore()
        for partition in broker.end_offsets("layer2"):
            for record in broker.fetch("layer2", partition, 0):
                theta.add(record.value)
        assert len(theta) > 0

        approx = estimate_sum_with_error(theta, confidence=0.95)
        assert approx.value == pytest.approx(exact, rel=0.1)
        # Eq. 8: the recovered item count is (close to) exact even
        # through two independent sampling layers and topic partitions.
        recovered = sum(
            est.estimated_count for est in theta.per_substream().values()
        )
        assert recovered == pytest.approx(count, rel=1e-6)

    def test_sampling_reduces_topic_volume(self, broker):
        rng = random.Random(14)
        self._ingest(broker, rng)
        layer1 = build_layer(broker, "layer0", "layer1",
                             sample_size=400, seed=3)
        layer1.run_to_completion()
        layer1.advance_stream_time(10.0)
        layer1.close()
        layer0_records = sum(broker.end_offsets("layer0").values())
        layer1_items = 0
        for partition in broker.end_offsets("layer1"):
            for record in broker.fetch("layer1", partition, 0):
                layer1_items += len(record.value)
        assert layer1_items < layer0_records / 2

    def test_committed_offsets_survive_restart(self, broker):
        """A restarted layer resumes where the group committed."""
        rng = random.Random(15)
        self._ingest(broker, rng, items_per_stream=200)
        layer1 = build_layer(broker, "layer0", "layer1",
                             sample_size=100, seed=4)
        layer1.run_to_completion()
        layer1.close()  # commits offsets
        # New data arrives after the app stopped.
        producer = Producer(broker)
        producer.send("layer0", StreamItem("sensors/a", 1.0, 9.0),
                      key="sensors/a", timestamp=9.0)
        restarted = build_layer(broker, "layer0", "layer1",
                                sample_size=100, seed=5)
        processed = restarted.run_to_completion()
        restarted.close()
        assert processed == 1  # only the record produced after commit
