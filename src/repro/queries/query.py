"""Linear streaming queries over the root's sampled window.

The paper's system supports *approximate linear queries* (SUM, MEAN,
COUNT and their compositions); joins/top-k are future work. A query
consumes the root's :class:`~repro.core.estimator.ThetaStore` for one
window and returns an :class:`~repro.core.error_bounds.ApproximateResult`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.error_bounds import (
    ApproximateResult,
    confidence_multiplier,
    estimate_mean_with_error,
    estimate_sum_with_error,
    sum_variance,
)
from repro.core.estimator import ThetaStore
from repro.errors import EstimationError

__all__ = ["LinearQuery", "SumQuery", "MeanQuery", "CountQuery", "PerSubstreamSumQuery"]


class LinearQuery(ABC):
    """Base class for queries the root can answer approximately."""

    def __init__(self, name: str, confidence: float = 0.95) -> None:
        self.name = name
        self.confidence = confidence

    @abstractmethod
    def execute(self, theta: ThetaStore) -> ApproximateResult:
        """Answer the query over one window's Theta store."""


class SumQuery(LinearQuery):
    """``SELECT SUM(value)`` over the window (Eq. 3-4)."""

    def __init__(self, confidence: float = 0.95) -> None:
        super().__init__("sum", confidence)

    def execute(self, theta: ThetaStore) -> ApproximateResult:
        """SUM* with its §III-D error bound over the window's Theta."""
        return estimate_sum_with_error(theta, self.confidence)


class MeanQuery(LinearQuery):
    """``SELECT AVG(value)`` over the window (Eq. 13-14)."""

    def __init__(self, confidence: float = 0.95) -> None:
        super().__init__("mean", confidence)

    def execute(self, theta: ThetaStore) -> ApproximateResult:
        """MEAN* with its §III-D error bound over the window's Theta."""
        return estimate_mean_with_error(theta, self.confidence)


class CountQuery(LinearQuery):
    """``SELECT COUNT(*)`` over the window.

    The recovered count is *exact* by the paper's invariant (Eq. 8):
    weights are constructed so ``sum |I| * W_out`` equals the number of
    items the bottom layer saw, so the error bound is zero.
    """

    def __init__(self, confidence: float = 0.95) -> None:
        super().__init__("count", confidence)

    def execute(self, theta: ThetaStore) -> ApproximateResult:
        """The Eq. 8-recovered item count (exact, zero-width bound)."""
        estimates = theta.per_substream()
        if not estimates:
            raise EstimationError("cannot count over an empty store")
        total = sum(est.estimated_count for est in estimates.values())
        sampled = sum(est.sampled_count for est in estimates.values())
        return ApproximateResult(
            value=total, error=0.0, confidence=self.confidence,
            variance=0.0, sampled_items=sampled,
        )


class PerSubstreamSumQuery(LinearQuery):
    """``SELECT substream, SUM(value) GROUP BY substream``.

    Returns the overall result through :meth:`execute` and exposes the
    per-stratum breakdown via :meth:`execute_grouped` (used by e.g. the
    pollution case study: total per pollutant per window).
    """

    def __init__(self, confidence: float = 0.95) -> None:
        super().__init__("per-substream-sum", confidence)

    def execute(self, theta: ThetaStore) -> ApproximateResult:
        """The overall SUM* (see :meth:`execute_grouped` for strata)."""
        return estimate_sum_with_error(theta, self.confidence)

    def execute_grouped(self, theta: ThetaStore) -> dict[str, ApproximateResult]:
        """Per-sub-stream SUM estimates with individual error bounds."""
        estimates = theta.per_substream()
        if not estimates:
            raise EstimationError("cannot query an empty store")
        multiplier = confidence_multiplier(self.confidence)
        out: dict[str, ApproximateResult] = {}
        for substream, est in estimates.items():
            variance = sum_variance({substream: est})
            out[substream] = ApproximateResult(
                value=est.estimated_sum,
                error=multiplier * variance ** 0.5,
                confidence=self.confidence,
                variance=variance,
                sampled_items=est.sampled_count,
            )
        return out
