"""The paper's prototype architecture: a sampling processor in the
stream engine over pub/sub topics.

ApproxIoT's implementation (§IV) plugs the sampling algorithm into
Kafka Streams as a user-defined low-level processor, between a source
topic and a sink topic. This example rebuilds exactly that shape on
the library's own substrates: broker topics carry the data stream, a
custom WHSamp processor samples per punctuation interval, and the root
consumes weighted batches from the output topic to answer a SUM query.

Run:  python examples/streaming_sampler.py
"""

import random
from typing import Any

from repro.broker import Broker, Producer
from repro.core import ThetaStore, WeightedBatch, estimate_sum_with_error
from repro.core.whs import WeightedHierarchicalSampler
from repro.streams import Processor, StreamBuilder, StreamsRuntime


class WHSampProcessor(Processor):
    """The paper's sampling module as a stream processor.

    Buffers items per punctuation interval; when stream time crosses an
    interval boundary it samples the buffer with weighted hierarchical
    sampling and forwards one weighted batch per sub-stream.
    """

    def __init__(self, sample_size: int, interval: float, seed: int = 0) -> None:
        super().__init__("whsamp")
        self._sample_size = sample_size
        self._seed = seed
        self._sampler: WeightedHierarchicalSampler | None = None
        self._interval = interval
        self._buffer: list[Any] = []
        self._next_boundary = interval

    def init(self) -> None:
        # The runtime resolves the sampling backend once and publishes
        # it on every processor context before init() runs; building
        # the sampler here picks it up (vectorized when numpy is in).
        self._ensure_sampler()

    def _ensure_sampler(self) -> WeightedHierarchicalSampler:
        # Lazy so the processor also works standalone (no runtime, no
        # init() call) on the context's default backend.
        if self._sampler is None:
            self._sampler = WeightedHierarchicalSampler(
                self._sample_size,
                rng=random.Random(self._seed),
                backend=self.context.sampling_backend,
            )
        return self._sampler

    def process(self, key: Any, value: Any) -> None:
        self._buffer.append(value)

    def punctuate(self, stream_time: float) -> None:
        while stream_time >= self._next_boundary:
            self._flush()
            self._next_boundary += self._interval

    def close(self) -> None:
        self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        result = self._ensure_sampler().process_interval(batch)
        for weighted in result.batches:
            self.context.forward(weighted.substream, weighted)


def main() -> None:
    broker = Broker()
    broker.create_topic("sensor-readings", partitions=2)

    # Producers: two sensor fleets pushing readings into the topic.
    from repro.core import StreamItem

    rng = random.Random(42)
    producer = Producer(broker, batch_size=50)
    emitted = []
    for step in range(2_000):
        timestamp = step * 0.01
        for substream, mu in (("indoor", 21.0), ("furnace", 900.0)):
            item = StreamItem(substream, rng.gauss(mu, mu * 0.05), timestamp)
            emitted.append(item)
            producer.send(
                "sensor-readings", item, key=substream, timestamp=timestamp
            )
    producer.flush()

    # Topology: source topic -> sampling processor -> output topic.
    builder = StreamBuilder()
    (builder.stream("sensor-readings")
        .process_with(WHSampProcessor(sample_size=150, interval=1.0))
        .to("sampled-readings"))
    runtime = StreamsRuntime(broker, builder.build())
    processed = runtime.run_to_completion()
    runtime.advance_stream_time(100.0)  # close the final interval
    runtime.close()

    # Root: consume weighted batches and answer the query.
    theta = ThetaStore()
    for partition in broker.end_offsets("sampled-readings"):
        for record in broker.fetch("sampled-readings", partition, 0):
            assert isinstance(record.value, WeightedBatch)
            theta.add(record.value)

    exact = sum(item.value for item in emitted)
    approx = estimate_sum_with_error(theta, confidence=0.95)
    print("Streaming sampler (paper §IV architecture)")
    print("-------------------------------------------")
    print(f"records through the engine : {processed}")
    print(f"weighted batches at root   : {len(theta)}")
    print(f"approximate SUM            : {approx}")
    print(f"exact SUM                  : {exact:,.1f}")
    print(f"accuracy loss              : "
          f"{100 * abs(approx.value - exact) / exact:.4f}%")


if __name__ == "__main__":
    main()
