"""Simple random sampling (SRS) baseline.

The paper's baseline (implemented in its prototype as a user-defined
Kafka processor) is the *coin-flip* sampling algorithm of Jermaine et
al. (DBO): each arriving item is kept independently with probability
equal to the sampling fraction, regardless of which sub-stream it came
from. SRS therefore under-represents small-but-important sub-streams,
which is exactly the failure mode ApproxIoT's stratification fixes.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, Sequence, TypeVar

from repro.errors import SamplingError

__all__ = ["CoinFlipSampler", "srs_sample"]

T = TypeVar("T")


class CoinFlipSampler(Generic[T]):
    """Bernoulli (coin-flip) sampler with a fixed keep probability.

    Unlike reservoir sampling, the coin-flip sampler needs no window or
    buffer: each item is decided on arrival. That is why, in the
    paper's Figure 9, the SRS system's latency does not grow with the
    window size while ApproxIoT's does.
    """

    def __init__(self, fraction: float, rng: random.Random | None = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(
                f"sampling fraction must be in (0, 1], got {fraction}"
            )
        self._fraction = float(fraction)
        self._rng = rng if rng is not None else random.Random()
        self._seen = 0
        self._kept = 0

    @property
    def fraction(self) -> float:
        """The configured keep probability."""
        return self._fraction

    @property
    def seen(self) -> int:
        """Number of items offered so far."""
        return self._seen

    @property
    def kept(self) -> int:
        """Number of items kept so far."""
        return self._kept

    @property
    def weight(self) -> float:
        """Inverse-probability weight for kept items (1 / fraction)."""
        return 1.0 / self._fraction

    def offer(self, item: T) -> T | None:
        """Offer an item; return it if kept, ``None`` if dropped."""
        self._seen += 1
        if self._rng.random() < self._fraction:
            self._kept += 1
            return item
        return None

    def filter(self, items: Iterable[T]) -> list[T]:
        """Keep each item of an iterable independently."""
        kept: list[T] = []
        for item in items:
            if self.offer(item) is not None:
                kept.append(item)
        return kept

    def decisions(self, count: int) -> list[bool]:
        """Keep/drop decisions for ``count`` records, in arrival order.

        The columnar plane's coin flip: one decision per record drawn
        with exactly the entropy :meth:`offer` would consume, so a
        seeded run keeps the same records on either plane. The caller
        applies the mask to its columns in one vector op (see
        :meth:`~repro.core.columns.ColumnarBatch.compress`).
        """
        if count < 0:
            raise SamplingError(f"count must be >= 0, got {count}")
        rng = self._rng
        fraction = self._fraction
        mask = [rng.random() < fraction for _ in range(count)]
        self._seen += count
        self._kept += sum(mask)
        return mask

    def merge_counters(self, other: "CoinFlipSampler") -> None:
        """Absorb another sampler's counters (sharded execution merge).

        Coin-flip sampling is trivially mergeable: each record's
        keep/drop decision is independent, so the union of per-shard
        SRS samples is an SRS sample of the union and the root-side
        state to combine is just the arrival/kept counters. Both
        samplers must share the keep probability (otherwise the merged
        Horvitz-Thompson weight ``1 / fraction`` would be wrong for
        one side's records).
        """
        if other._fraction != self._fraction:
            raise SamplingError(
                f"cannot merge coin-flip samplers with different fractions "
                f"({self._fraction} vs {other._fraction})"
            )
        self._seen += other._seen
        self._kept += other._kept

    def reset_counters(self) -> None:
        """Zero the seen/kept counters (keep probability unchanged)."""
        self._seen = 0
        self._kept = 0


def srs_sample(
    items: Sequence[T], fraction: float, rng: random.Random | None = None
) -> list[T]:
    """One-shot coin-flip sample of a sequence at the given fraction."""
    return CoinFlipSampler[T](fraction, rng).filter(items)


def horvitz_thompson_sum(values: Sequence[float], fraction: float) -> float:
    """Estimate a population sum from an SRS sample.

    Each sampled value is scaled by the inverse of its inclusion
    probability; this is how the SRS baseline system in the paper
    recreates the total from its sample. Under extreme skew this
    estimator has huge variance (Figure 10(c)) because the rare,
    high-value sub-stream is either missed entirely (underestimate) or
    scaled up by 1/fraction (overestimate).
    """
    if not 0.0 < fraction <= 1.0:
        raise SamplingError(f"sampling fraction must be in (0, 1], got {fraction}")
    return sum(values) / fraction
