"""The built-in scenario catalog.

Six ready-to-run scenarios covering the dynamic-workload axes the
paper's pitch rests on: rate fluctuation (flash crowds, diurnal
cycles), population drift, node churn and degraded links. All assume
the paper's evaluation setup — the 4-layer tree
(``source-0..7 / l1-0..3 / l2-0..1 / root``) and sub-streams
``A``–``D`` — which is what every experiment runner and the
``repro scenarios`` CLI use; binding one to a different tree or
schedule fails loudly at :class:`~repro.scenarios.engine.ScenarioEngine`
construction.

See ``docs/SCENARIOS.md`` for each scenario's expected
quality-over-time behaviour.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.events import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    RateRamp,
    RateWave,
    SkewDrift,
)
from repro.scenarios.scenario import Scenario

__all__ = ["BUILTIN_SCENARIOS", "get_scenario", "scenario_names"]


def _builtin(*scenarios: Scenario) -> dict[str, Scenario]:
    return {scenario.name: scenario for scenario in scenarios}


#: Name -> scenario for every built-in, in catalog order.
BUILTIN_SCENARIOS: dict[str, Scenario] = _builtin(
    Scenario(
        name="steady",
        description="static rates on a healthy tree (the control run)",
        windows=12,
    ),
    Scenario(
        name="flash-crowd",
        description="load ramps to 4x, holds, then ramps back down",
        windows=12,
        events=(
            RateRamp(2, 4, 1.0, 4.0),
            RateBurst(4, 7, 4.0),
            RateRamp(7, 9, 4.0, 1.0),
        ),
    ),
    Scenario(
        name="diurnal",
        description="one sinusoidal day/night cycle (0.4x..1.8x)",
        windows=12,
        events=(RateWave(0, 12, period_windows=12.0, low=0.4, high=1.8),),
    ),
    Scenario(
        name="drift",
        description="population mix drifts from uniform to A-heavy skew",
        windows=12,
        events=(
            SkewDrift(
                2, 9,
                to_shares={"A": 0.55, "B": 0.25, "C": 0.15, "D": 0.05},
            ),
        ),
    ),
    Scenario(
        name="churn",
        description="staggered node outages: an L1 node, a source, an L2 node",
        windows=12,
        events=(
            NodeChurn(3, 6, ("l1-1",)),
            NodeChurn(5, 9, ("source-5",)),
            NodeChurn(8, 11, ("l2-0",)),
        ),
    ),
    Scenario(
        name="brownout",
        description="lossy uplink + a straggler link under a mild burst",
        windows=12,
        events=(
            RateBurst(4, 7, 1.5),
            LinkDegrade(
                3, 7, ("source-6",),
                loss=0.2, rtt_factor=4.0, rate_factor=0.25,
            ),
            LinkDegrade(5, 7, ("source-7",), delay_windows=1),
        ),
    ),
)


def scenario_names() -> list[str]:
    """Built-in scenario names, in catalog order."""
    return list(BUILTIN_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a built-in scenario by name (loudly on a miss)."""
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; built-ins: {scenario_names()}"
        ) from None
