"""Property-based tests (hypothesis) for the core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import ThetaStore, estimate_sum
from repro.core.items import StreamItem, WeightedBatch
from repro.core.reservoir import ReservoirSampler, SkipAheadReservoirSampler
from repro.core.stratified import allocate_equal, allocate_proportional
from repro.core.weights import output_weight
from repro.core.whs import whsamp

# Strategy: a stream of items over up to 5 sub-streams.
substream_names = st.sampled_from(["a", "b", "c", "d", "e"])
item_strategy = st.builds(
    StreamItem,
    substream=substream_names,
    value=st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False),
)
items_strategy = st.lists(item_strategy, min_size=0, max_size=300)


@given(items=items_strategy, sample_size=st.integers(1, 100),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_whsamp_count_invariant(items, sample_size, seed):
    """Eq. 8: W_out * |sample| == W_in * c for every sub-stream, always."""
    result = whsamp(items, sample_size, rng=random.Random(seed))
    for batch in result.batches:
        seen = result.seen[batch.substream]
        assert abs(batch.estimated_count - seen) < 1e-6 * max(1, seen)


@given(items=items_strategy, sample_size=st.integers(1, 100),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_whsamp_sample_within_budget_per_stratum(items, sample_size, seed):
    """No stratum ever exceeds its allocated reservoir."""
    result = whsamp(items, sample_size, rng=random.Random(seed))
    for batch in result.batches:
        assert len(batch) <= result.allocation[batch.substream]


@given(items=items_strategy, sample_size=st.integers(1, 100),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_whsamp_covers_every_substream(items, sample_size, seed):
    """Stratification guarantee: every arriving stratum is represented."""
    result = whsamp(items, sample_size, rng=random.Random(seed))
    arrived = {item.substream for item in items}
    sampled = {batch.substream for batch in result.batches if len(batch) > 0}
    assert sampled == arrived


@given(items=items_strategy, sample_size=st.integers(1, 100),
       seed=st.integers(0, 2**32 - 1),
       weights=st.dictionaries(substream_names,
                               st.floats(min_value=0.1, max_value=100.0),
                               max_size=5))
@settings(max_examples=100, deadline=None)
def test_whsamp_weights_monotone_nondecreasing(items, sample_size, seed, weights):
    """Output weights never fall below input weights (w_i >= 1)."""
    result = whsamp(items, sample_size, weights, rng=random.Random(seed))
    for substream in result.seen:
        w_in = weights.get(substream, 1.0)
        assert result.weights.get(substream) >= w_in - 1e-12


@given(seen=st.integers(0, 10_000), capacity=st.integers(1, 1_000),
       w_in=st.floats(min_value=1e-3, max_value=1e6))
def test_output_weight_count_identity(seen, capacity, w_in):
    """Closed-form check of the proof in §III-C: W_out * c~ == W_in * c."""
    sampled = min(seen, capacity)
    w_out = output_weight(w_in, seen, capacity)
    assert abs(w_out * sampled - w_in * seen) <= 1e-9 * max(1.0, w_in * seen)


@given(stream=st.lists(st.integers(), min_size=0, max_size=500),
       capacity=st.integers(1, 50), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_reservoir_size_and_membership(stream, capacity, seed):
    sampler = ReservoirSampler(capacity, random.Random(seed))
    sampler.extend(stream)
    sample = sampler.sample()
    assert len(sample) == min(len(stream), capacity)
    stream_counts = {}
    for x in stream:
        stream_counts[x] = stream_counts.get(x, 0) + 1
    sample_counts = {}
    for x in sample:
        sample_counts[x] = sample_counts.get(x, 0) + 1
    for value, count in sample_counts.items():
        assert count <= stream_counts.get(value, 0)


@given(stream=st.lists(st.integers(), min_size=0, max_size=500),
       capacity=st.integers(1, 50), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_skip_ahead_size_and_membership(stream, capacity, seed):
    sampler = SkipAheadReservoirSampler(capacity, random.Random(seed))
    sampler.extend(stream)
    sample = sampler.sample()
    assert len(sample) == min(len(stream), capacity)
    assert set(sample) <= set(stream) | set()


@given(budget=st.integers(1, 500),
       counts=st.dictionaries(substream_names, st.integers(0, 10_000),
                              min_size=1, max_size=5))
def test_equal_allocation_invariants(budget, counts):
    alloc = allocate_equal(budget, counts)
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())
    assert sum(alloc.values()) >= min(budget, len(counts))


@given(budget=st.integers(1, 500),
       counts=st.dictionaries(substream_names, st.integers(0, 10_000),
                              min_size=1, max_size=5))
def test_proportional_allocation_invariants(budget, counts):
    alloc = allocate_proportional(budget, counts)
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())


@given(
    batches=st.lists(
        st.tuples(
            substream_names,
            st.floats(min_value=0.1, max_value=100.0),
            st.lists(st.floats(min_value=-1e3, max_value=1e3,
                               allow_nan=False), min_size=0, max_size=20),
        ),
        min_size=0, max_size=20,
    )
)
def test_theta_sum_is_linear(batches):
    """SUM over the store equals the sum of per-batch contributions."""
    theta = ThetaStore()
    expected = 0.0
    for substream, weight, values in batches:
        batch = WeightedBatch(
            substream, weight, [StreamItem(substream, v) for v in values]
        )
        theta.add(batch)
        expected += weight * sum(values)
    assert abs(estimate_sum(theta) - expected) <= 1e-6 * max(1.0, abs(expected))
