"""Unit tests for the workload generators."""

import random

import pytest

from repro.core.items import StreamItem
from repro.errors import WorkloadError
from repro.workloads.pollution import (
    POLLUTANTS,
    PollutantSubstream,
    PollutionTraceSynthesizer,
    pollutant_generators,
)
from repro.workloads.rates import RateSchedule, paper_rate_settings
from repro.workloads.skew import SkewedMixture, paper_skewed_mixture
from repro.workloads.source import (
    Source,
    generate_columns,
    sources_from_schedule,
)
from repro.workloads.synthetic import (
    GaussianSubstream,
    PoissonSubstream,
    paper_gaussian_substreams,
    paper_poisson_substreams,
)
from repro.workloads.taxi import (
    BOROUGHS,
    BoroughSubstream,
    TaxiTraceSynthesizer,
)


class TestSynthetic:
    def test_paper_gaussian_parameters(self):
        subs = {g.name: g for g in paper_gaussian_substreams()}
        assert subs["A"].mu == 10.0 and subs["A"].sigma == 5.0
        assert subs["D"].mu == 100000.0 and subs["D"].sigma == 5000.0

    def test_paper_poisson_parameters(self):
        subs = {g.name: g for g in paper_poisson_substreams()}
        assert [subs[n].lam for n in "ABCD"] == [10.0, 100.0, 1000.0, 10000.0]

    def test_gaussian_sample_mean(self):
        gen = GaussianSubstream("X", 100.0, 5.0)
        items = gen.generate(5000, random.Random(1))
        mean = sum(i.value for i in items) / len(items)
        assert mean == pytest.approx(100.0, rel=0.02)
        assert all(i.substream == "X" for i in items)

    def test_poisson_small_lambda_mean(self):
        gen = PoissonSubstream("X", 10.0)
        items = gen.generate(5000, random.Random(2))
        mean = sum(i.value for i in items) / len(items)
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_poisson_large_lambda_uses_normal_approx(self):
        gen = PoissonSubstream("X", 10_000_000.0)
        items = gen.generate(100, random.Random(3))
        mean = sum(i.value for i in items) / len(items)
        assert mean == pytest.approx(10_000_000.0, rel=0.01)
        assert all(v.value >= 0 for v in items)

    def test_emitted_at_propagates(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        items = gen.generate(3, random.Random(4), emitted_at=7.5)
        assert all(i.emitted_at == 7.5 for i in items)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GaussianSubstream("X", 0.0, -1.0)
        with pytest.raises(WorkloadError):
            PoissonSubstream("X", 0.0)
        with pytest.raises(WorkloadError):
            GaussianSubstream("X", 0.0, 1.0).generate(-1, random.Random())


class TestRates:
    def test_paper_settings(self):
        settings = {s.name: s for s in paper_rate_settings()}
        assert settings["Setting1"].rates == {
            "A": 50_000.0, "B": 25_000.0, "C": 12_500.0, "D": 625.0
        }
        assert settings["Setting2"].total_rate == 100_000.0
        assert settings["Setting3"].rates["A"] == 625.0

    def test_scaling_preserves_ratios(self):
        scaled = paper_rate_settings(scale=0.01)[0]
        assert scaled.rates["A"] == 500.0
        assert scaled.rates["A"] / scaled.rates["D"] == pytest.approx(80.0)

    def test_counts_for_interval(self):
        schedule = RateSchedule("s", {"a": 100.0, "b": 50.0})
        assert schedule.counts_for_interval(2.0) == {"a": 200, "b": 100}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RateSchedule("s", {})
        with pytest.raises(WorkloadError):
            RateSchedule("s", {"a": -1.0})
        schedule = RateSchedule("s", {"a": 1.0})
        with pytest.raises(WorkloadError):
            schedule.counts_for_interval(0.0)
        with pytest.raises(WorkloadError):
            schedule.scaled(0.0)


class TestSkew:
    def test_paper_mixture_proportions(self):
        mixture = paper_skewed_mixture()
        assert mixture.proportions == [0.80, 0.1989, 0.001, 0.0001]
        assert [s.lam for s in mixture.substreams] == [
            10.0, 100.0, 1000.0, 10_000_000.0
        ]

    def test_counts_sum_to_total(self):
        mixture = paper_skewed_mixture()
        counts = mixture.counts_for(100_000)
        assert sum(counts.values()) == 100_000
        assert counts["A"] == pytest.approx(80_000, abs=2)

    def test_rare_stratum_always_present(self):
        mixture = paper_skewed_mixture()
        counts = mixture.counts_for(1000)
        assert counts["D"] >= 1  # 0.01% of 1000 would round to 0

    def test_generate_shuffles_and_tags(self):
        mixture = paper_skewed_mixture()
        items = mixture.generate(1000, random.Random(5))
        assert len(items) == 1000
        assert {i.substream for i in items} == {"A", "B", "C", "D"}

    def test_validation(self):
        sub = PoissonSubstream("A", 1.0)
        with pytest.raises(WorkloadError):
            SkewedMixture([sub], [0.5])  # doesn't sum to 1
        with pytest.raises(WorkloadError):
            SkewedMixture([sub], [0.5, 0.5])  # length mismatch


class TestTaxi:
    def test_ride_schema(self):
        synth = TaxiTraceSynthesizer(seed=1)
        ride = synth.ride(100.0)
        assert ride.dropoff_datetime > ride.pickup_datetime
        assert ride.total_amount >= ride.fare_amount
        assert ride.borough in BOROUGHS
        assert ride.fare_amount == pytest.approx(
            2.50 + 2.50 * ride.trip_distance, abs=0.01
        )

    def test_generate_items_tags_boroughs(self):
        synth = TaxiTraceSynthesizer(seed=2)
        items = synth.generate_items(500)
        assert all(i.substream.startswith("taxi/") for i in items)
        manhattan = sum(
            1 for i in items if i.substream == "taxi/manhattan"
        )
        assert manhattan > 250  # dominant borough

    def test_rides_are_time_ordered(self):
        synth = TaxiTraceSynthesizer(seed=3)
        rides = synth.generate_rides(50, rate_per_second=10.0)
        pickups = [r.pickup_datetime for r in rides]
        assert pickups == sorted(pickups)

    def test_borough_generator_protocol(self):
        gen = BoroughSubstream("queens")
        items = gen.generate(100, random.Random(6), emitted_at=1.0)
        assert len(items) == 100
        assert all(i.substream == "taxi/queens" for i in items)
        assert all(i.value > 2.5 for i in items)  # flagfall floor

    def test_borough_generators_cover_all(self):
        gens = TaxiTraceSynthesizer.borough_generators()
        assert set(gens) == {f"taxi/{b}" for b in BOROUGHS}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TaxiTraceSynthesizer(medallions=0)
        with pytest.raises(WorkloadError):
            BoroughSubstream("atlantis")


class TestPollution:
    def test_readings_cover_all_pollutants(self):
        synth = PollutionTraceSynthesizer(seed=1, sensors_per_pollutant=3)
        readings = synth.readings_at(0.0)
        assert len(readings) == 3 * len(POLLUTANTS)
        assert {r.pollutant for r in readings} == set(POLLUTANTS)

    def test_values_stay_near_baseline(self):
        """The stability property the paper notes for this dataset."""
        gen = PollutantSubstream("pm")
        items = gen.generate(2000, random.Random(7))
        baseline = POLLUTANTS["pm"][0]
        mean = sum(i.value for i in items) / len(items)
        assert mean == pytest.approx(baseline, rel=0.2)
        values = [i.value for i in items]
        spread = (max(values) - min(values)) / baseline
        assert spread < 1.0  # low relative variability

    def test_pollution_less_variable_than_taxi(self):
        """Why Fig. 11(a)'s pollution curve sits below the taxi curve."""
        rng = random.Random(8)
        taxi_values = [
            i.value for i in BoroughSubstream("manhattan").generate(2000, rng)
        ]
        pollution_values = [
            i.value for i in PollutantSubstream("pm").generate(2000, rng)
        ]

        def cv(values):
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / len(values)
            return var ** 0.5 / mean

        assert cv(pollution_values) < cv(taxi_values) / 3

    def test_generators_cover_all(self):
        gens = pollutant_generators()
        assert set(gens) == {f"pollution/{p}" for p in POLLUTANTS}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PollutionTraceSynthesizer(sensors_per_pollutant=0)
        with pytest.raises(WorkloadError):
            PollutantSubstream("plutonium")


class TestSource:
    def test_emit_interval_count_matches_rate(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, rate_per_second=100.0, rng=random.Random(9))
        batch = source.emit_interval(0.0, 2.0)
        assert len(batch) == 200
        assert source.items_emitted == 200

    def test_emission_times_spread_within_interval(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, 10.0, rng=random.Random(10))
        batch = source.emit_interval(5.0, 1.0)
        assert all(5.0 < item.emitted_at < 6.0 for item in batch)
        times = [item.emitted_at for item in batch]
        assert times == sorted(times)

    def test_zero_rate_emits_nothing(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, 0.0)
        assert source.emit_interval(0.0, 1.0) == []

    def test_fractional_rate_carries_remainder(self):
        """A 0.4 items/s source must emit ~0.4 items per second long
        run, not zero forever (the old per-interval rounding bug)."""
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, rate_per_second=0.4, rng=random.Random(3))
        counts = [len(source.emit_interval(float(t), 1.0)) for t in range(10)]
        assert sum(counts) == 4
        assert counts[0] == 0  # nothing due yet after 0.4 items

    def test_fractional_rate_long_run_matches_schedule(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, rate_per_second=7.3, rng=random.Random(4))
        for t in range(100):
            source.emit_interval(float(t), 1.0)
        assert source.items_emitted == pytest.approx(730, abs=1)

    def test_low_rate_statistical_run_completes(self):
        """The motivating case end-to-end: a sub-item-per-window rate
        runs through the statistical engine, skipping the windows the
        schedule owes no items."""
        from repro.system.config import PipelineConfig
        from repro.system.statistical import StatisticalRunner

        run = StatisticalRunner(
            PipelineConfig(sampling_fraction=0.5, seed=1),
            RateSchedule("low", {"A": 4.0}),  # 0.5 items/s per source
            {"A": GaussianSubstream("A", 10.0, 1.0)},
        ).run(6)
        assert 0 < len(run.windows) <= 6
        assert run.mean_approxiot_loss >= 0.0

    def test_first_interval_still_rounds_to_nearest(self):
        """The carry starts centered, so a 0.6 items/s source emits in
        its very first window (no regression vs the old rounding) while
        the long run still tracks the schedule."""
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, rate_per_second=0.6, rng=random.Random(8))
        counts = [len(source.emit_interval(float(t), 1.0)) for t in range(10)]
        assert counts[0] == 1
        assert sum(counts) == pytest.approx(6, abs=1)

    def test_columnar_emission_matches_object_plane(self):
        """Same seed -> the two planes emit identical records."""
        gen = GaussianSubstream("X", 5.0, 2.0)
        objects = Source("s", gen, 12.5, rng=random.Random(11))
        columnar = Source("s", gen, 12.5, rng=random.Random(11))
        for t in range(3):
            expected = objects.emit_interval(float(t), 2.0)
            batch = columnar.emit_interval_columns(float(t), 2.0)
            assert batch.to_items() == expected
        assert columnar.items_emitted == objects.items_emitted

    def test_columnar_emission_spreads_timestamps(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, 10.0, rng=random.Random(10))
        batch = source.emit_interval_columns(5.0, 1.0)
        times = list(batch.timestamps)
        assert all(5.0 < t < 6.0 for t in times)
        assert times == sorted(times)

    def test_columnar_zero_rate_emits_empty_batch(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        source = Source("s", gen, 0.0)
        assert len(source.emit_interval_columns(0.0, 1.0)) == 0

    def test_generate_columns_fallback_for_plain_generators(self):
        """Generators without a native columnar path transpose their
        object batch at the seam."""

        class PlainGenerator:
            def generate(self, count, rng, emitted_at=0.0):
                return [
                    StreamItem("P", float(i), emitted_at) for i in range(count)
                ]

        batch = generate_columns(PlainGenerator(), 3, random.Random(0), 1.0)
        assert batch.to_items() == [
            StreamItem("P", 0.0, 1.0),
            StreamItem("P", 1.0, 1.0),
            StreamItem("P", 2.0, 1.0),
        ]

    def test_sources_from_schedule(self):
        schedule = RateSchedule("s", {"A": 10.0, "B": 20.0})
        gens = {"A": GaussianSubstream("A", 1.0, 0.0),
                "B": GaussianSubstream("B", 1.0, 0.0)}
        sources = sources_from_schedule(schedule, gens, seed=1)
        assert len(sources) == 2
        rates = sorted(s.rate_per_second for s in sources)
        assert rates == [10.0, 20.0]

    def test_missing_generator_rejected(self):
        schedule = RateSchedule("s", {"A": 10.0})
        with pytest.raises(WorkloadError):
            sources_from_schedule(schedule, {}, seed=1)

    def test_validation(self):
        gen = GaussianSubstream("X", 1.0, 0.0)
        with pytest.raises(WorkloadError):
            Source("s", gen, -1.0)
        source = Source("s", gen, 1.0)
        with pytest.raises(WorkloadError):
            source.emit_interval(0.0, 0.0)


class TestGeneratorColumnParity:
    """Every generator's columnar path emits the object path's records."""

    @pytest.mark.parametrize(
        "generator",
        [
            GaussianSubstream("A", 10.0, 5.0),
            PoissonSubstream("B", 100.0),
            BoroughSubstream("brooklyn"),
            paper_skewed_mixture(),
        ],
        ids=["gaussian", "poisson", "taxi", "skewed-mixture"],
    )
    def test_columns_match_objects(self, generator):
        expected = generator.generate(40, random.Random(21), 3.0)
        batch = generator.generate_columns(40, random.Random(21), 3.0)
        assert batch.to_items() == expected

    def test_pollution_columns_match_objects(self):
        """AR(1) state advances identically on either plane."""
        objects_gen = PollutantSubstream("pm")
        columns_gen = PollutantSubstream("pm")
        expected = objects_gen.generate(25, random.Random(5), 1.0)
        batch = columns_gen.generate_columns(25, random.Random(5), 1.0)
        assert batch.to_items() == expected

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            GaussianSubstream("A", 1.0, 0.0).generate_columns(
                -1, random.Random(0)
            )


class TestColumnStaging:
    """Generators reuse a staging buffer; emitted batches never alias."""

    def test_successive_windows_do_not_alias(self):
        gen = GaussianSubstream("g", 100.0, 5.0)
        rng = random.Random(11)
        first = gen.generate_columns(50, rng, 0.0)
        snapshot = list(first.values)
        gen.generate_columns(50, rng, 1.0)  # overwrites the staging slots
        assert list(first.values) == snapshot

    def test_reuse_preserves_cross_plane_parity(self):
        values = {}
        for plane in ("objects", "columnar"):
            gen = PollutantSubstream("pm")
            rng = random.Random(12)
            drawn = []
            for window in range(3):  # stateful AR(1) across windows
                if plane == "objects":
                    drawn.extend(
                        item.value
                        for item in gen.generate(20, rng, float(window))
                    )
                else:
                    drawn.extend(
                        float(v)
                        for v in gen.generate_columns(
                            20, rng, float(window)
                        ).values
                    )
            values[plane] = drawn
        assert values["objects"] == values["columnar"]

    def test_buffer_grows_high_water_mark_style(self):
        from repro.core.columns import ColumnBuffer

        buffer = ColumnBuffer()
        view = buffer.writable(4)
        view[0] = 1.5
        assert buffer.capacity == 4
        del view
        buffer.writable(2)
        assert buffer.capacity == 4  # shrinking requests keep the slots
        assert list(buffer.column(2)) == [1.5, 0.0]
        buffer.writable(10)
        assert buffer.capacity == 10

    def test_column_copies_are_independent(self):
        from repro.core.columns import ColumnBuffer

        buffer = ColumnBuffer()
        staged = buffer.writable(3)
        staged[0], staged[1], staged[2] = 1.0, 2.0, 3.0
        del staged
        first = buffer.column(3)
        buffer.writable(3)[0] = 99.0
        assert list(first) == [1.0, 2.0, 3.0]


class TestScheduleSplit:
    def test_split_shares_sum_to_the_original(self):
        schedule = RateSchedule("s", {"A": 10.0, "B": 4.0})
        shards = schedule.split(4)
        assert len(shards) == 4
        for substream, rate in schedule.rates.items():
            assert sum(s.rates[substream] for s in shards) == pytest.approx(
                rate
            )

    def test_split_one_returns_the_schedule_itself(self):
        schedule = RateSchedule("s", {"A": 10.0})
        assert schedule.split(1) == [schedule]

    def test_split_rejects_nonpositive_counts(self):
        with pytest.raises(WorkloadError):
            RateSchedule("s", {"A": 1.0}).split(0)
