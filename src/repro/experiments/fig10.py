"""Figure 10 — accuracy under fluctuating arrival rates and skew.

Panels (a)/(b): three arrival-rate settings over sub-streams A-D at a
fixed 60 % sampling fraction; ApproxIoT beats SRS in every setting
(5.5× under Gaussian Setting1, ~74× under Poisson Setting1 in the
paper) because SRS under-represents whichever sub-stream is rare.

Panel (c): the extreme-skew mixture — sub-stream D carries 0.01 % of
the items but (λ = 10⁷) essentially all of the value. SRS misses D
entirely in most windows (massive underestimate) or scales it up into
an overestimate; ApproxIoT's stratified reservoirs keep D every window
(paper reports up to 2600× better accuracy at the 10 % fraction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    PAPER_FRACTIONS,
    base_config,
    gaussian_generators,
    poisson_generators,
)
from repro.metrics.report import Table, format_percent
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule, paper_rate_settings
from repro.workloads.skew import paper_skewed_mixture

__all__ = [
    "Fig10SettingPoint",
    "Fig10SkewPoint",
    "run_fig10_settings",
    "run_fig10_skew",
    "main",
]


@dataclass(frozen=True, slots=True)
class Fig10SettingPoint:
    """Accuracy of both systems under one rate setting (panels a/b)."""

    distribution: str
    setting: str
    approxiot_loss: float
    srs_loss: float


@dataclass(frozen=True, slots=True)
class Fig10SkewPoint:
    """Accuracy under extreme skew at one fraction (panel c)."""

    fraction: float
    approxiot_loss: float
    srs_loss: float


def run_fig10_settings(
    distribution: str = "gaussian",
    scale: ExperimentScale | None = None,
    *,
    fraction: float = 0.6,
) -> list[Fig10SettingPoint]:
    """Panels (a)/(b): Settings 1-3 at the 60 % fraction."""
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = (
        gaussian_generators() if distribution == "gaussian"
        else poisson_generators()
    )
    points: list[Fig10SettingPoint] = []
    for schedule in paper_rate_settings(scale.rate_scale):
        config = base_config(fraction, scale)
        with StatisticalRunner(config, schedule, generators) as runner:
            outcome = runner.run(scale.windows)
        points.append(
            Fig10SettingPoint(
                distribution=distribution,
                setting=schedule.name.split("x")[0],
                approxiot_loss=outcome.mean_approxiot_loss,
                srs_loss=outcome.mean_srs_loss,
            )
        )
    return points


def run_fig10_skew(
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    total_rate: float = 100_000.0,
) -> list[Fig10SkewPoint]:
    """Panel (c): the extreme-skew mixture across fractions."""
    fractions = fractions if fractions is not None else PAPER_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    mixture = paper_skewed_mixture()
    generators = {sub.name: sub for sub in mixture.substreams}
    rate = total_rate * scale.rate_scale
    schedule = RateSchedule(
        "skewed",
        {
            sub.name: max(2.0, rate * proportion)
            for sub, proportion in zip(mixture.substreams, mixture.proportions)
        },
    )
    points: list[Fig10SkewPoint] = []
    for fraction in fractions:
        config = base_config(fraction, scale)
        with StatisticalRunner(config, schedule, generators) as runner:
            outcome = runner.run(scale.windows)
        points.append(
            Fig10SkewPoint(
                fraction=fraction,
                approxiot_loss=outcome.mean_approxiot_loss,
                srs_loss=outcome.mean_srs_loss,
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print all three panels; return the text."""
    blocks: list[str] = []
    for distribution, label in (("gaussian", "Fig. 10(a) Gaussian"),
                                ("poisson", "Fig. 10(b) Poisson")):
        table = Table(
            f"{label}: accuracy under fluctuating rates (60% fraction)",
            ["setting", "ApproxIoT loss", "SRS loss"],
        )
        for point in run_fig10_settings(distribution, scale):
            table.add_row(
                point.setting,
                format_percent(point.approxiot_loss),
                format_percent(point.srs_loss),
            )
        blocks.append(table.render())
    table = Table(
        "Fig. 10(c): accuracy under extreme skew",
        ["fraction", "ApproxIoT loss", "SRS loss"],
    )
    for point in run_fig10_skew(scale=scale):
        table.add_row(
            f"{point.fraction:.0%}",
            format_percent(point.approxiot_loss),
            format_percent(point.srs_loss, 1),
        )
    blocks.append(table.render())
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
