"""Unit tests for the transport implementations."""

import pytest

from repro.core.items import StreamItem, WeightedBatch
from repro.engine.transport import (
    BrokerTransport,
    InProcessTransport,
    SimnetBrokerTransport,
    make_statistical_transport,
    topic_for,
)
from repro.errors import ConfigurationError
from repro.simnet.netem import NetemConfig
from repro.simnet.network import Network
from repro.streams import StreamsRuntime


def batch(substream="a", weight=1.0, n=3):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(i)) for i in range(n)]
    )


@pytest.mark.parametrize(
    "transport_factory",
    [InProcessTransport, BrokerTransport],
    ids=["inprocess", "broker"],
)
class TestTransportContract:
    """Behaviour every non-simulated transport must share."""

    def test_send_collect_preserves_order(self, transport_factory):
        transport = transport_factory()
        transport.register("node")
        first, second = batch("a"), batch("b")
        transport.send("src", "node", first)
        transport.send("src", "node", second)
        collected = transport.collect("node")
        assert [b.substream for b in collected] == ["a", "b"]

    def test_collect_drains(self, transport_factory):
        transport = transport_factory()
        transport.register("node")
        transport.send("src", "node", batch())
        assert transport.has_pending()
        transport.collect("node")
        assert not transport.has_pending()
        assert transport.collect("node") == []

    def test_unregistered_destination_rejected(self, transport_factory):
        transport = transport_factory()
        with pytest.raises(ConfigurationError):
            transport.collect("ghost")


class TestBrokerTransport:
    def test_batches_ride_topics(self):
        transport = BrokerTransport()
        transport.register("root")
        transport.send("l2-0", "root", batch())
        assert topic_for("root") in transport.broker.topics()
        assert transport.broker.end_offsets(topic_for("root")) == {0: 1}

    def test_timestamps_come_from_clock(self):
        time = {"now": 7.5}
        transport = BrokerTransport(now=lambda: time["now"])
        transport.register("root")
        transport.send("l2-0", "root", batch())
        record = transport.broker.fetch(topic_for("root"), 0, 0)[0]
        assert record.timestamp == 7.5

    def test_streams_runtime_taps_transport_topics(self):
        """A streams app can consume the engine's record flow."""
        from repro.streams import StreamBuilder

        transport = BrokerTransport()
        transport.register("root")
        for index in range(3):
            transport.send("l2-0", "root", batch(f"s{index}"))

        seen = []
        builder = StreamBuilder()
        builder.stream(topic_for("root")).for_each(
            lambda key, value: seen.append(value.substream)
        )
        runtime = StreamsRuntime.from_transport(transport, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert seen == ["s0", "s1", "s2"]

    def test_streams_runtime_rejects_non_broker_transport(self):
        from repro.streams import StreamBuilder

        builder = StreamBuilder()
        builder.stream("t").for_each(lambda key, value: None)
        with pytest.raises(ConfigurationError):
            StreamsRuntime.from_transport(
                InProcessTransport(), builder.build()
            )


class TestSimnetBrokerTransport:
    def make_network(self):
        network = Network()
        network.add_host("edge", 1e9)
        network.add_host("root", 1e9)
        network.add_link("edge", "root", NetemConfig.from_rtt(20.0, 1e9))
        return network

    def test_delivery_waits_for_link(self):
        network = self.make_network()
        transport = SimnetBrokerTransport(network)
        transport.register("root")
        transport.send("edge", "root", batch())
        # Nothing lands until the clock advances past the link delay.
        assert transport.broker.end_offsets(topic_for("root")) == {0: 0}
        network.clock.run()
        assert transport.broker.end_offsets(topic_for("root")) == {0: 1}
        record = transport.broker.fetch(topic_for("root"), 0, 0)[0]
        assert record.timestamp == pytest.approx(network.clock.now)

    def test_bytes_accounted_on_link(self):
        network = self.make_network()
        transport = SimnetBrokerTransport(network)
        transport.register("root")
        sent = batch(n=5)
        transport.send("edge", "root", sent)
        network.clock.run()
        assert network.link("edge", "root").bytes_sent == sent.total_bytes


class TestFactory:
    def test_auto_is_inprocess(self):
        assert isinstance(
            make_statistical_transport("auto"), InProcessTransport
        )

    def test_broker_selected(self):
        assert isinstance(
            make_statistical_transport("broker"), BrokerTransport
        )

    def test_simnet_rejected_for_statistical(self):
        with pytest.raises(ConfigurationError):
            make_statistical_transport("simnet")
