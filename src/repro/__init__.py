"""ApproxIoT reproduction: approximate analytics for edge computing.

A from-scratch Python implementation of the system described in
*ApproxIoT: Approximate Analytics for Edge Computing* (Wen et al.,
ICDCS 2018), including the weighted hierarchical sampling algorithm,
a Kafka-model pub/sub substrate, a Kafka-Streams-model processing
engine, a discrete-event WAN simulator, the paper's logical tree
topology, workload generators, and the full experiment harness.

Quickstart::

    from repro.system import ApproxIoTPipeline, PipelineConfig
    from repro.workloads import GaussianSubstream

See ``examples/quickstart.py`` for a runnable version.
"""

from repro.core import (
    ApproximateResult,
    CoinFlipSampler,
    FractionBudget,
    QueryResult,
    ReservoirSampler,
    RootNode,
    SamplingNode,
    StreamItem,
    ThetaStore,
    WeightMap,
    WeightedBatch,
    WeightedHierarchicalSampler,
    whsamp,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximateResult",
    "CoinFlipSampler",
    "FractionBudget",
    "QueryResult",
    "ReservoirSampler",
    "RootNode",
    "SamplingNode",
    "StreamItem",
    "ThetaStore",
    "WeightMap",
    "WeightedBatch",
    "WeightedHierarchicalSampler",
    "__version__",
    "whsamp",
]
