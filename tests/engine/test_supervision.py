"""Shard supervision: watchdog, respawn-and-replay, degraded merges.

The supervisor's contract (:mod:`repro.engine.sharding`, §"Supervision"):

* a faulted run — a shard SIGKILLed mid-round, raising, hanging, or
  handing back a corrupted frame — recovers within the restart budget
  and produces **bit-identical** results to the unfaulted run, on both
  shard transports, both data planes, static and adaptive;
* recovery is deterministic respawn-and-replay: the replacement shard
  is rebuilt from the same :class:`ShardPlan` and fast-forwarded
  through every completed window (adaptive runs rebroadcast the
  recorded observation tape), so no estimator state is invented;
* hangs are detected by the watchdog within ``shard_timeout`` — a run
  with a hung shard never blocks indefinitely;
* past the restart budget, ``on_shard_loss="abort"`` fails loudly and
  poisons the runner, while ``"degrade"`` continues on the survivors
  with honest accounting: the lost shard's expected volume lands in
  ``items_dropped`` and every affected window reports ``shards_lost``;
* supervision bookkeeping is visible: restarts/timeouts/replayed
  windows in :class:`ShardIpcStats`, per-window restart deltas in the
  scenario trace.
"""

import multiprocessing
import time

import pytest

from repro.engine import shm
from repro.engine.faults import FaultPlan
from repro.engine.sharding import ShardedEngineRunner
from repro.errors import PipelineError
from repro.scenarios import get_scenario
from repro.system.config import PipelineConfig
from repro.system.scenarios import ScenarioRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

shm_capable = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    or not shm.shm_available(),
    reason="host lacks fork or usable shared memory",
)

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "supervision-test", {"A": 240.0, "B": 240.0, "C": 240.0, "D": 240.0}
)
#: Per-shard expected window volume at this schedule with two workers:
#: 960 items/s split evenly, 1 s windows.
SHARD_WINDOW_ITEMS = 480

#: Transport axis for the parity matrix; shm rides only where the host
#: can map segments.
TRANSPORTS = ["pipe", pytest.param("shm", marks=shm_capable)]


def config_for(workers=2, plane="objects", transport="pipe", seed=13,
               fraction=0.2, controller="static", faults=(), timeout=None,
               restarts=2, on_loss="abort"):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend="python",
        data_plane=plane,
        workers=workers,
        shard_transport=transport,
        budget_controller=controller,
        shard_timeout=timeout,
        max_shard_restarts=restarts,
        on_shard_loss=on_loss,
        fault_plan=FaultPlan.parse(faults) if faults else None,
    )


def outcome_tuple(window):
    return (
        window.window_index,
        window.items_emitted,
        window.items_sampled,
        window.exact_sum,
        window.srs_sum,
        window.approx_sum.value,
        window.approx_sum.error,
    )


def run_outcomes(config, windows=3):
    """Run ``windows`` and return (outcome tuples, ipc stats)."""
    with ShardedEngineRunner(
        config, SCHEDULE, GENS, backoff_seconds=0.01
    ) as runner:
        run = runner.run(windows)
        stats = runner.ipc_stats
    return [outcome_tuple(w) for w in run.windows], stats


class TestRecoveryBitParity:
    """The SIGKILL satellite: a crash fault is ``os.kill(getpid(),
    SIGKILL)`` fired mid-round inside the shard — recovery must be
    invisible in the results on every (transport, plane, controller)."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("plane", ["objects", "columnar"])
    @pytest.mark.parametrize("controller", ["static", "variance_aware"])
    def test_sigkill_recovery_is_bit_identical(
        self, transport, plane, controller
    ):
        base = dict(transport=transport, plane=plane, controller=controller)
        expected, _ = run_outcomes(config_for(**base))
        faulted, stats = run_outcomes(
            config_for(**base, faults=["crash@0:1"])
        )
        assert faulted == expected
        assert stats.restarts == 1

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("kind", ["raise", "corrupt-descriptor"])
    def test_soft_faults_recover_bit_identically(self, transport, kind):
        expected, _ = run_outcomes(config_for(transport=transport))
        faulted, stats = run_outcomes(
            config_for(transport=transport, faults=[f"{kind}@1:1"])
        )
        assert faulted == expected
        assert stats.restarts == 1

    @pytest.mark.parametrize("target", ["crash@0:0", "crash@1:2",
                                        "crash@2:3"])
    def test_any_shard_any_window_recovers(self, target):
        expected, _ = run_outcomes(config_for(workers=3), windows=4)
        faulted, stats = run_outcomes(
            config_for(workers=3, faults=[target]), windows=4
        )
        assert faulted == expected
        assert stats.restarts == 1

    def test_seeded_chaos_plan_recovers(self):
        expected, _ = run_outcomes(config_for(), windows=4)
        plan = FaultPlan.seeded(
            99, shards=2, windows=4, count=2, kinds=("crash", "raise")
        )
        faulted, stats = run_outcomes(
            config_for().with_fault_plan(plan), windows=4
        )
        assert faulted == expected
        assert stats.restarts == 2


class TestReplay:
    def test_static_replay_fast_forwards_completed_windows(self):
        """A crash after two committed windows replays exactly those
        two into the replacement before the failed round reruns."""
        config = config_for(faults=["crash@0:2"])
        with ShardedEngineRunner(
            config_for(), SCHEDULE, GENS
        ) as healthy:
            expected = [outcome_tuple(w) for w in healthy.run(4).windows]
        with ShardedEngineRunner(
            config, SCHEDULE, GENS, backoff_seconds=0.01
        ) as runner:
            first = [outcome_tuple(w) for w in runner.run(2).windows]
            second = [outcome_tuple(w) for w in runner.run(2).windows]
            stats = runner.ipc_stats
        assert first + second == expected
        assert stats.restarts == 1
        assert stats.replayed_windows == 2

    def test_adaptive_replay_rebroadcasts_the_observation_tape(self):
        """Adaptive recovery must replay budget observations, not just
        windows — otherwise the replacement's controller diverges."""
        base = dict(controller="variance_aware")
        expected, _ = run_outcomes(config_for(**base), windows=4)
        faulted, stats = run_outcomes(
            config_for(**base, faults=["crash@0:2"]), windows=4
        )
        assert faulted == expected
        assert stats.restarts == 1
        assert stats.replayed_windows == 2


class TestWatchdog:
    def test_hung_shard_is_detected_and_replaced(self):
        """A hang fault sleeps forever inside the shard; the watchdog
        must cut it loose within the deadline and the run must both
        terminate promptly and stay bit-identical."""
        expected, _ = run_outcomes(config_for(timeout=0.75), windows=2)
        start = time.monotonic()
        faulted, stats = run_outcomes(
            config_for(timeout=0.75, faults=["hang@0:0"]), windows=2
        )
        elapsed = time.monotonic() - start
        assert faulted == expected
        assert stats.timeouts == 1
        assert stats.restarts == 1
        assert elapsed < 30.0, f"watchdog recovery took {elapsed:.1f}s"

    def test_timeout_error_is_diagnosable(self):
        """With no restart budget the watchdog's verdict surfaces as-is."""
        config = config_for(timeout=0.5, restarts=0, faults=["hang@1:0"])
        with ShardedEngineRunner(
            config, SCHEDULE, GENS, backoff_seconds=0.01
        ) as runner:
            with pytest.raises(PipelineError, match="timeout"):
                runner.run(1)


class TestShardLossPolicies:
    def test_abort_is_loud_and_poisons_the_runner(self):
        config = config_for(restarts=0, faults=["crash@0:0"])
        runner = ShardedEngineRunner(
            config, SCHEDULE, GENS, backoff_seconds=0.01
        )
        try:
            with pytest.raises(PipelineError, match="on_shard_loss"):
                runner.run(1)
            with pytest.raises(PipelineError, match="fresh runner"):
                runner.run(1)
        finally:
            runner.close()

    def test_degrade_continues_with_honest_accounting(self):
        """Survivor windows carry the loss: the dead shard's expected
        volume lands in items_dropped and shards_lost says how many
        shards the merge is missing."""
        config = config_for(restarts=0, on_loss="degrade",
                            faults=["crash@0:1"])
        with ShardedEngineRunner(
            config, SCHEDULE, GENS, backoff_seconds=0.01
        ) as runner:
            healthy = runner.run(1).windows[0]
            degraded = runner.run(2).windows
        assert healthy.shards_lost == 0
        assert healthy.items_dropped == 0
        for window in degraded:
            assert window.shards_lost == 1
            assert window.items_dropped == SHARD_WINDOW_ITEMS
            # The merge really is survivors-only, with a live bound.
            assert window.items_emitted < healthy.items_emitted
            assert window.approx_sum.error > 0
            assert window.items_sampled > 0

    def test_degrade_with_every_shard_lost_raises(self):
        config = config_for(restarts=0, on_loss="degrade",
                            faults=["crash@0:0", "crash@1:0"])
        with ShardedEngineRunner(
            config, SCHEDULE, GENS, backoff_seconds=0.01
        ) as runner:
            with pytest.raises(PipelineError, match="no shards survive"):
                runner.run(1)

    def test_restart_budget_is_per_shard_not_global(self):
        """Two different shards each get the full budget: two faults on
        two shards recover even with max_shard_restarts=1."""
        expected, _ = run_outcomes(config_for(), windows=3)
        faulted, stats = run_outcomes(
            config_for(restarts=1, faults=["crash@0:1", "raise@1:2"]),
            windows=3,
        )
        assert faulted == expected
        assert stats.restarts == 2


class TestShardLifecycle:
    def test_shard_close_and_reap_are_idempotent(self):
        """The double-close satellite: close() and reap() on a live or
        already-dead shard must never raise."""
        runner = ShardedEngineRunner(config_for(), SCHEDULE, GENS)
        try:
            runner.run(1)
            shard = runner._ensure_shards()[0]
            shard.close()
            shard.close()
            shard.reap()
        finally:
            runner.close()
        runner.close()

    def test_reap_kills_without_handshake(self):
        """reap() is for misbehaving shards: no close handshake, the
        process is just terminated and the pipe/segment torn down."""
        runner = ShardedEngineRunner(config_for(), SCHEDULE, GENS)
        try:
            runner.run(1)
            shard = runner._ensure_shards()[1]
            process = shard._process
            shard.reap()
            assert not process.is_alive()
            shard.reap()
        finally:
            runner.close()


class TestScenarioTrace:
    def test_restarts_surface_in_the_faulted_window_row(self):
        scenario = get_scenario("steady")
        with ScenarioRunner(
            config_for(), SCHEDULE, GENS, scenario
        ) as healthy_runner:
            healthy = healthy_runner.run(4)
        with ScenarioRunner(
            config_for(faults=["raise@0:2"]), SCHEDULE, GENS, scenario
        ) as runner:
            outcome = runner.run(4)
        assert [w.shard_restarts for w in outcome.windows] == [0, 0, 1, 0]
        assert all(w.shards_lost == 0 for w in outcome.windows)
        # Recovery is invisible in the quality metrics themselves.
        assert [
            (w.items_emitted, w.approx_sum) for w in outcome.windows
        ] == [(w.items_emitted, w.approx_sum) for w in healthy.windows]
        report = outcome.report()
        assert "restarts" in report and "lost" in report
