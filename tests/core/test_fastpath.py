"""Backend parity tests for the vectorized sampling fast path.

Both backends must (a) preserve the Eq. 8 count invariant exactly
(``W_out * c~ == W_in * c``) and (b) produce statistically
indistinguishable inclusion probabilities. The distribution checks use
chi-squared statistics over repeated seeded runs with generous critical
values, so they are deterministic under the pinned seeds.
"""

import random

import pytest

from repro.core.fastpath import (
    BACKEND_AUTO,
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    BACKENDS,
    make_reservoir_sampler,
    numpy_available,
    resolve_backend,
)
from repro.core.items import StreamItem, WeightedBatch
from repro.core.reservoir import ReservoirSampler, reservoir_sample
from repro.core.whs import whsamp, whsamp_batches
from repro.errors import SamplingError

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

#: Backends available in this environment.
AVAILABLE = [BACKEND_PYTHON] + ([BACKEND_NUMPY] if numpy_available() else [])

# Upper-tail chi-squared critical values at the 99.9 % level, so a
# correct sampler fails each check with probability ~1e-3 — and the
# seeds below are pinned, making the outcome reproducible.
CHI2_CRIT = {9: 27.88, 19: 43.82}


def chi_squared(observed, expected):
    """Pearson's statistic over parallel observed/expected sequences."""
    return sum((o - e) ** 2 / e for o, e in zip(observed, expected))


def items_for(substream: str, count: int) -> list[StreamItem]:
    return [StreamItem(substream, float(i)) for i in range(count)]


# ----------------------------------------------------------------------
# Backend resolution and the factory seam
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_python_always_resolves(self):
        assert resolve_backend(BACKEND_PYTHON) == BACKEND_PYTHON

    def test_auto_matches_environment(self):
        expected = BACKEND_NUMPY if numpy_available() else BACKEND_PYTHON
        assert resolve_backend(BACKEND_AUTO) == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(SamplingError):
            resolve_backend("cython")

    def test_numpy_without_numpy_rejected(self, monkeypatch):
        import repro.core.fastpath as fastpath

        monkeypatch.setattr(fastpath, "_np", None)
        assert fastpath.resolve_backend(BACKEND_AUTO) == BACKEND_PYTHON
        with pytest.raises(SamplingError):
            fastpath.resolve_backend(BACKEND_NUMPY)

    def test_factory_returns_python_sampler(self):
        sampler = make_reservoir_sampler(5, backend=BACKEND_PYTHON)
        assert type(sampler) is ReservoirSampler

    @requires_numpy
    def test_factory_returns_numpy_sampler(self):
        from repro.core.fastpath import NumpyReservoirSampler

        sampler = make_reservoir_sampler(5, backend=BACKEND_NUMPY)
        assert isinstance(sampler, NumpyReservoirSampler)

    def test_backends_constant_is_exhaustive(self):
        assert set(BACKENDS) == {BACKEND_AUTO, BACKEND_PYTHON, BACKEND_NUMPY}


# ----------------------------------------------------------------------
# Reservoir semantics parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", AVAILABLE)
class TestReservoirParity:
    def test_under_capacity_keeps_everything(self, backend):
        sampler = make_reservoir_sampler(50, random.Random(1), backend=backend)
        sampler.extend(items_for("a", 20))
        assert len(sampler) == 20
        assert sampler.seen == 20
        assert not sampler.is_saturated
        assert sampler.sample() == items_for("a", 20)

    def test_over_capacity_caps_and_counts(self, backend):
        sampler = make_reservoir_sampler(10, random.Random(2), backend=backend)
        sampler.extend(items_for("a", 500))
        assert len(sampler) == 10
        assert sampler.seen == 500
        assert sampler.is_saturated

    def test_sample_is_subset_without_duplicates(self, backend):
        universe = items_for("a", 300)
        sampler = make_reservoir_sampler(25, random.Random(3), backend=backend)
        sampler.extend(universe)
        sample = sampler.sample()
        values = [item.value for item in sample]
        assert len(set(values)) == len(values) == 25
        assert set(sample) <= set(universe)

    def test_reset_clears_state(self, backend):
        sampler = make_reservoir_sampler(4, random.Random(4), backend=backend)
        sampler.extend(items_for("a", 100))
        sampler.reset()
        assert len(sampler) == 0
        assert sampler.seen == 0
        sampler.extend(items_for("a", 3))
        assert len(sampler) == 3

    def test_chunked_feeding_equals_streaming(self, backend):
        """Seen/size bookkeeping is chunking-invariant."""
        sampler = make_reservoir_sampler(16, random.Random(5), backend=backend)
        stream = items_for("a", 1000)
        for start in (0, 7, 16, 100, 999):
            sampler.extend(stream[start : start + 1])
        sampler.extend(stream[:500])
        sampler.offer(stream[0])
        assert sampler.seen == 506
        assert len(sampler) == 16

    def test_seeded_runs_are_deterministic(self, backend):
        def run():
            sampler = make_reservoir_sampler(
                8, random.Random(99), backend=backend
            )
            sampler.extend(items_for("a", 400))
            return sampler.sample()

        assert run() == run()

    def test_one_shot_convenience(self, backend):
        sample = reservoir_sample(
            items_for("a", 200), 11, random.Random(6), backend=backend
        )
        assert len(sample) == 11


# ----------------------------------------------------------------------
# Inclusion probability parity (chi-squared over repeated seeded runs)
# ----------------------------------------------------------------------
def inclusion_histogram(backend: str, *, runs: int, n: int, capacity: int,
                        buckets: int) -> list[int]:
    """How often each position-bucket of the stream gets sampled."""
    per_bucket = n // buckets
    counts = [0] * buckets
    stream = items_for("a", n)
    for seed in range(runs):
        sampler = make_reservoir_sampler(
            capacity, random.Random(10_000 + seed), backend=backend
        )
        sampler.extend(stream)
        for item in sampler.sample():
            counts[int(item.value) // per_bucket] += 1
    return counts


@pytest.mark.parametrize("backend", AVAILABLE)
def test_inclusion_probability_uniform(backend):
    """Every stream position is sampled with probability capacity/n."""
    runs, n, capacity, buckets = 300, 200, 20, 10
    counts = inclusion_histogram(
        backend, runs=runs, n=n, capacity=capacity, buckets=buckets
    )
    expected = [runs * capacity / buckets] * buckets
    statistic = chi_squared(counts, expected)
    assert statistic < CHI2_CRIT[buckets - 1], (backend, counts)


@requires_numpy
def test_backends_statistically_indistinguishable():
    """Two-sample chi-squared homogeneity across the two backends."""
    runs, n, capacity, buckets = 300, 200, 20, 10
    py = inclusion_histogram(
        BACKEND_PYTHON, runs=runs, n=n, capacity=capacity, buckets=buckets
    )
    np_ = inclusion_histogram(
        BACKEND_NUMPY, runs=runs, n=n, capacity=capacity, buckets=buckets
    )
    # Both histograms share the same total, so homogeneity reduces to
    # comparing each against the pooled mean of the pair.
    pooled = [(a + b) / 2 for a, b in zip(py, np_)]
    statistic = chi_squared(py, pooled) + chi_squared(np_, pooled)
    assert statistic < CHI2_CRIT[buckets - 1], (py, np_)


# ----------------------------------------------------------------------
# Eq. 8 count invariant through whsamp on every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", AVAILABLE)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_whsamp_preserves_count_invariant(backend, seed):
    """``sum(W_out * c~)`` recovers the exact arrival count."""
    rng = random.Random(seed)
    shape = {"a": 4000, "b": 350, "c": 17, "d": 1}
    items = [
        item
        for substream, count in shape.items()
        for item in items_for(substream, count)
    ]
    rng.shuffle(items)
    result = whsamp(items, 300, rng=rng, backend=backend)
    estimated = sum(batch.estimated_count for batch in result.batches)
    assert estimated == pytest.approx(sum(shape.values()))
    for batch in result.batches:
        assert batch.estimated_count == pytest.approx(shape[batch.substream])


@pytest.mark.parametrize("backend", AVAILABLE)
def test_whsamp_batches_invariant_with_input_weights(backend):
    """Eq. 8 composes across layers: W_out * c~ == W_in * c per group."""
    rng = random.Random(7)
    pairs = [
        WeightedBatch("a", 2.5, items_for("a", 900)),
        WeightedBatch("a", 4.0, items_for("a", 300)),
        WeightedBatch("b", 1.0, items_for("b", 50)),
    ]
    result = whsamp_batches(pairs, 120, rng=rng, backend=backend)
    by_group = [
        (batch.substream, batch.estimated_count) for batch in result.batches
    ]
    # Each (sub-stream, W_in) group preserves its own estimated count.
    expected = {("a", 2.5 * 900), ("a", 4.0 * 300), ("b", 1.0 * 50)}
    for substream, count in expected:
        assert any(
            batch.substream == substream
            and batch.estimated_count == pytest.approx(count)
            for batch in result.batches
        ), (substream, count, by_group)


@requires_numpy
def test_whsamp_estimates_agree_across_backends():
    """Backend choice does not bias the weighted SUM estimate."""
    stream = [StreamItem("a", 1.0)] * 5000 + [StreamItem("b", 10.0)] * 500
    exact = sum(item.value for item in stream)
    estimates = {}
    for backend in (BACKEND_PYTHON, BACKEND_NUMPY):
        total = 0.0
        for seed in range(40):
            result = whsamp(
                stream, 250, rng=random.Random(seed), backend=backend
            )
            total += sum(batch.estimated_sum for batch in result.batches)
        estimates[backend] = total / 40
    for backend, estimate in estimates.items():
        assert estimate == pytest.approx(exact, rel=0.05), backend
