"""Cost function: translating a query budget into sample sizes.

Algorithm 2 line 3 assumes "a cost function which translates a given
query budget (such as the user-specified latency/throughput/accuracy
guarantees) into the appropriate sample size for a node". The paper's
prototype adjusts these parameters manually and lists an automated cost
function as future work; we implement both the manual path and a simple
automated controller:

* :class:`FractionBudget` — the manual path: the analyst fixes a
  sampling fraction and the cost function turns an interval's expected
  arrival count into a reservoir budget.
* :class:`ThroughputBudget` — caps the number of items per second a
  node may forward (models limited uplink/CPU at an edge node).
* :class:`AdaptiveErrorBudget` — the feedback mechanism of §IV-B: if
  the reported error bound exceeds the target, grow the sampling
  fraction for subsequent runs; if comfortably below, shrink it.
* :func:`neyman_factors` — the per-stratum tilt of Neyman allocation:
  normalized standard-deviation factors that, multiplied by arrival
  counts, weight ``getSampleSize`` toward the strata dominating the
  stratified variance of Eq. 10-12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = [
    "FractionBudget",
    "ThroughputBudget",
    "AdaptiveErrorBudget",
    "neyman_factors",
]


def neyman_factors(variances: Mapping[str, float]) -> dict[str, float]:
    """Per-stratum standard-deviation factors, normalized to mean 1.

    Neyman allocation sizes stratum ``i``'s reservoir proportionally to
    ``c_i * s_i`` — arrival count times standard deviation. The counts
    are known exactly at allocation time; the deviations must come from
    feedback (last window's realized sample). This helper turns a map
    of realized per-stratum variances into the ``s_i`` tilt: factors
    proportional to ``sqrt(variance)``, scaled so their mean is 1 (a
    flat map of 1s is the neutral, count-proportional allocation).

    Strata with no variance signal — fewer than two sampled values, or
    a genuinely constant stream — get the smallest positive factor
    rather than zero: absence of evidence must not starve a stratum
    that the one-slot allocation floor would otherwise carry alone.
    An input with no positive variance at all returns all 1s.
    """
    deviations = {}
    for substream, variance in variances.items():
        if variance < 0:
            raise ConfigurationError(
                f"stratum {substream!r} has negative variance {variance}"
            )
        deviations[substream] = math.sqrt(variance)
    positive = [deviation for deviation in deviations.values() if deviation > 0]
    if not positive:
        return {substream: 1.0 for substream in deviations}
    floor = min(positive)
    deviations = {
        substream: deviation if deviation > 0 else floor
        for substream, deviation in deviations.items()
    }
    mean = sum(deviations.values()) / len(deviations)
    return {
        substream: deviation / mean
        for substream, deviation in deviations.items()
    }


def _require_fraction(fraction: float) -> float:
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"sampling fraction must be in (0, 1], got {fraction}"
        )
    return float(fraction)


@dataclass(slots=True)
class FractionBudget:
    """Fixed sampling fraction — the paper's evaluation configuration.

    Attributes:
        fraction: Fraction of the interval's arrivals to keep.
        floor: Minimum sample size so tiny intervals still sample.
    """

    fraction: float
    floor: int = 1

    def __post_init__(self) -> None:
        self.fraction = _require_fraction(self.fraction)
        if self.floor < 1:
            raise ConfigurationError(f"floor must be >= 1, got {self.floor}")

    def sample_size(self, expected_arrivals: int) -> int:
        """Reservoir budget for an interval with the given arrivals."""
        if expected_arrivals < 0:
            raise ConfigurationError(
                f"expected arrivals must be >= 0, got {expected_arrivals}"
            )
        return max(self.floor, int(round(expected_arrivals * self.fraction)))


@dataclass(slots=True)
class ThroughputBudget:
    """Cap on forwarded items per second (resource-constrained node).

    Attributes:
        items_per_second: Maximum sustained forwarding rate.
    """

    items_per_second: float

    def __post_init__(self) -> None:
        if self.items_per_second <= 0:
            raise ConfigurationError(
                f"items_per_second must be positive, got {self.items_per_second}"
            )

    def sample_size(self, interval_seconds: float) -> int:
        """Reservoir budget for an interval of the given length."""
        if interval_seconds <= 0:
            raise ConfigurationError(
                f"interval must be positive, got {interval_seconds}"
            )
        return max(1, int(self.items_per_second * interval_seconds))


class AdaptiveErrorBudget:
    """Multiplicative-increase feedback on the sampling fraction.

    After each query window the root compares the *relative* error bound
    against the analyst's target. When the bound is too loose the
    fraction is scaled up by ``grow``; when it is much tighter than
    needed (below ``target * slack``), the fraction is scaled down by
    ``shrink`` to save resources. The fraction stays within
    ``[min_fraction, 1.0]``.
    """

    def __init__(
        self,
        target_relative_error: float,
        initial_fraction: float = 0.1,
        *,
        grow: float = 1.5,
        shrink: float = 0.9,
        slack: float = 0.5,
        min_fraction: float = 0.01,
    ) -> None:
        if target_relative_error <= 0:
            raise ConfigurationError(
                f"target error must be positive, got {target_relative_error}"
            )
        if grow <= 1.0:
            raise ConfigurationError(f"grow factor must exceed 1, got {grow}")
        if not 0.0 < shrink < 1.0:
            raise ConfigurationError(f"shrink must be in (0, 1), got {shrink}")
        if not 0.0 < slack < 1.0:
            raise ConfigurationError(f"slack must be in (0, 1), got {slack}")
        self._target = float(target_relative_error)
        self._fraction = _require_fraction(initial_fraction)
        self._min_fraction = _require_fraction(min_fraction)
        self._grow = float(grow)
        self._shrink = float(shrink)
        self._slack = float(slack)
        self._history: list[float] = [self._fraction]

    @property
    def fraction(self) -> float:
        """The current sampling fraction recommended for all layers."""
        return self._fraction

    @property
    def target(self) -> float:
        """The analyst's relative-error target."""
        return self._target

    @property
    def history(self) -> list[float]:
        """All fractions the controller has recommended so far."""
        return list(self._history)

    def observe(self, relative_error: float) -> float:
        """Feed back one window's relative error; return the new fraction."""
        if relative_error < 0:
            raise ConfigurationError(
                f"relative error must be >= 0, got {relative_error}"
            )
        if relative_error > self._target:
            self._fraction = min(1.0, self._fraction * self._grow)
        elif relative_error < self._target * self._slack:
            self._fraction = max(self._min_fraction, self._fraction * self._shrink)
        self._history.append(self._fraction)
        return self._fraction

    def sample_size(self, expected_arrivals: int) -> int:
        """Reservoir budget under the current fraction."""
        return FractionBudget(self._fraction).sample_size(expected_arrivals)
