"""Deterministic fault injection for the sharded engine's supervisor.

The supervision layer (:mod:`repro.engine.sharding`) promises that a
crashed, hung or corrupted worker shard is detected, respawned and
replayed to a bit-identical result. A promise like that is only worth
anything if every recovery path is *exercised*, so this module makes
failure a first-class, seeded input: a :class:`FaultPlan` is a typed,
picklable timeline of faults targeted at exact ``(shard, window)``
coordinates, threaded through
:attr:`repro.system.config.PipelineConfig.fault_plan` (and the CLI's
``--inject-fault``) into each worker shard process, where
:func:`fire` detonates them at the targeted window.

Fault kinds, chosen to cover every distinct supervisor path:

* ``"crash"`` — the shard ``SIGKILL``\\ s itself mid-round: a hard
  process death with no exception, no close handshake and no cleanup
  (the pipe-EOF / dead-process detection path).
* ``"hang"`` — the shard sleeps forever while still alive: only the
  watchdog (``PipelineConfig.shard_timeout``) can detect it, so plans
  containing hang faults require a configured timeout.
* ``"raise"`` — the shard raises :class:`InjectedFaultError` from its
  serving loop: the clean ``("error", traceback)`` failure path.
* ``"corrupt-descriptor"`` — the shard completes the window but mangles
  its Theta frame before shipping it: a stale shared-memory descriptor
  on the shm transport, truncated codec bytes on the pipe transport.
  The parent's decode fails loudly and the supervisor replaces the
  shard *on the pipe codec* — a corrupted ring must degrade, never be
  trusted again.

Every fault fires at most once: after the supervisor recovers a failed
round it re-arms only the faults targeting later windows, so a
deterministic plan cannot re-kill its own replacement forever.
Faults target worker shard *processes*; plans are rejected for inline
and single-worker execution, where there is no process to kill.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, InjectedFaultError

__all__ = [
    "FAULT_KINDS",
    "CRASH",
    "HANG",
    "RAISE",
    "CORRUPT_DESCRIPTOR",
    "FaultSpec",
    "FaultPlan",
    "corrupt_frame",
    "fire",
]

#: The shard self-SIGKILLs mid-round (hard death, no cleanup).
CRASH = "crash"
#: The shard sleeps forever; only the watchdog can detect it.
HANG = "hang"
#: The shard raises :class:`~repro.errors.InjectedFaultError`.
RAISE = "raise"
#: The shard ships a mangled Theta frame (bad shm descriptor /
#: truncated pipe codec bytes); the parent's decode fails loudly.
CORRUPT_DESCRIPTOR = "corrupt-descriptor"

#: Every fault kind the harness can inject.
FAULT_KINDS = (CRASH, HANG, RAISE, CORRUPT_DESCRIPTOR)

#: One nap of a hung shard. The loop around it never exits — the value
#: only bounds how quickly the process notices a termination signal.
_HANG_NAP_SECONDS = 3600.0


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One typed fault aimed at an exact ``(shard, window)`` coordinate.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        shard: Target worker shard index (0-based plan order).
        window: Absolute window slot (0-based over the shard's whole
            lifetime, empty windows included) at which the fault fires.
    """

    kind: str
    shard: int
    window: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.shard, int) or self.shard < 0:
            raise ConfigurationError(
                f"fault shard must be an integer >= 0, got {self.shard!r}"
            )
        if not isinstance(self.window, int) or self.window < 0:
            raise ConfigurationError(
                f"fault window must be an integer >= 0, got {self.window!r}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``kind@shard:window`` (e.g. ``crash@1:2``)."""
        kind, sep, target = text.partition("@")
        shard_text, target_sep, window_text = target.partition(":")
        if not sep or not target_sep:
            raise ConfigurationError(
                f"fault spec {text!r} is not of the form kind@shard:window "
                f"(e.g. crash@1:2)"
            )
        try:
            shard, window = int(shard_text), int(window_text)
        except ValueError:
            raise ConfigurationError(
                f"fault spec {text!r} has non-integer shard/window "
                f"coordinates"
            ) from None
        return cls(kind, shard, window)

    def describe(self) -> str:
        """The spec in its canonical CLI form."""
        return f"{self.kind}@{self.shard}:{self.window}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic timeline of faults for one sharded run.

    A pure frozen value: picklable (it crosses into shard processes),
    hashable-by-content, and valid for any run whose worker count
    covers every targeted shard. Coordinates must be unique — two
    faults at the same ``(shard, window)`` could never both fire.
    """

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        coordinates = [(spec.shard, spec.window) for spec in self.faults]
        if len(set(coordinates)) != len(coordinates):
            raise ConfigurationError(
                "fault plan targets the same (shard, window) twice; "
                "only one fault can fire per coordinate"
            )

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, specs: "tuple[str, ...] | list[str]") -> "FaultPlan":
        """Build a plan from CLI ``kind@shard:window`` strings."""
        return cls(tuple(FaultSpec.parse(text) for text in specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        windows: int,
        count: int = 1,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan over a run's fault coordinate grid.

        Draws ``count`` distinct ``(shard, window)`` cells from the
        ``shards x windows`` grid and a kind for each, all from
        ``random.Random(f"fault-plan:{seed}")`` — the same seed always
        yields the same plan, which is what makes chaos runs replayable.
        """
        if shards < 1 or windows < 1:
            raise ConfigurationError(
                f"fault grid needs shards >= 1 and windows >= 1, got "
                f"shards={shards} windows={windows}"
            )
        if not 0 < count <= shards * windows:
            raise ConfigurationError(
                f"fault count must be in [1, {shards * windows}] for a "
                f"{shards}x{windows} grid, got {count}"
            )
        unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
        if not kinds or unknown:
            raise ConfigurationError(
                f"fault kinds must be drawn from {FAULT_KINDS}, got {kinds}"
            )
        rng = random.Random(f"fault-plan:{seed}")
        cells = rng.sample(
            [(s, w) for s in range(shards) for w in range(windows)], count
        )
        specs = [
            FaultSpec(rng.choice(kinds), shard, window)
            for shard, window in cells
        ]
        specs.sort(key=lambda spec: (spec.shard, spec.window))
        return cls(tuple(specs))

    def for_shard(self, shard: int) -> tuple[FaultSpec, ...]:
        """Every fault targeting one shard, in window order."""
        return tuple(
            sorted(
                (spec for spec in self.faults if spec.shard == shard),
                key=lambda spec: spec.window,
            )
        )

    @property
    def needs_watchdog(self) -> bool:
        """Whether the plan contains a fault only a watchdog can detect."""
        return any(spec.kind == HANG for spec in self.faults)

    def max_shard(self) -> int:
        """The highest shard index any fault targets (-1 for no faults)."""
        return max((spec.shard for spec in self.faults), default=-1)


def fire(spec: FaultSpec) -> None:
    """Detonate a process-fatal fault inside the worker shard.

    ``crash`` hard-kills the process (SIGKILL — no exception, no
    cleanup, exactly what a kernel OOM kill looks like to the parent);
    ``hang`` never returns; ``raise`` raises
    :class:`~repro.errors.InjectedFaultError`. ``corrupt-descriptor``
    is not process-fatal and must be applied to the slot's frame via
    :func:`corrupt_frame` instead.
    """
    if spec.kind == CRASH:
        os.kill(os.getpid(), signal.SIGKILL)
        os._exit(1)  # pragma: no cover - SIGKILL cannot be survived
    if spec.kind == HANG:
        while True:  # pragma: no branch - only a signal ends this
            time.sleep(_HANG_NAP_SECONDS)
    if spec.kind == RAISE:
        raise InjectedFaultError(f"injected fault {spec.describe()}")
    raise ConfigurationError(
        f"fault kind {spec.kind!r} is not process-fatal; apply it with "
        f"corrupt_frame()"
    )


def corrupt_frame(frame):
    """Deterministically mangle one slot's Theta frame.

    A shared-memory ``(sequence, offset, length)`` descriptor gets a
    wrong sequence (the parent's :meth:`ShardSegment.read_frame` then
    fails its round check loudly); pipe codec bytes are truncated so
    the decoder fails mid-frame. An empty slot (``None``) has nothing
    to corrupt and passes through — the fault is a silent no-op there.
    """
    if isinstance(frame, tuple):
        sequence, offset, length = frame
        return (sequence + 1, offset, length)
    if isinstance(frame, (bytes, bytearray)):
        return bytes(frame[: max(1, len(frame) // 2)])
    return frame
