"""Configuration objects for assembled pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.fastpath import BACKENDS, resolve_backend
from repro.core.stratified import AllocationPolicy, allocate_fair_fill
from repro.errors import ConfigurationError
from repro.topology.placement import PlacementSpec
from repro.topology.tree import LogicalTree, paper_tree

__all__ = [
    "PipelineConfig",
    "ExecutionMode",
    "BUDGET_CONTROLLERS",
    "DATA_PLANES",
    "SHARD_LOSS_POLICIES",
    "SHARD_TRANSPORTS",
    "TRANSPORTS",
    "TRANSPORT_AUTO",
]


class ExecutionMode:
    """The three systems the paper compares (§V-A Methodology)."""

    APPROXIOT = "approxiot"
    SRS = "srs"
    NATIVE = "native"

    ALL = (APPROXIOT, SRS, NATIVE)


#: ``"auto"`` resolves to the engine's native transport: in-process
#: callbacks for the statistical runner, simnet-backed broker links for
#: the deployment simulator.
TRANSPORT_AUTO = "auto"

#: Valid values of :attr:`PipelineConfig.transport` (see
#: :mod:`repro.engine.transport` for the implementations).
TRANSPORTS = (TRANSPORT_AUTO, "inprocess", "broker", "simnet")

#: Valid values of :attr:`PipelineConfig.data_plane` — how records are
#: represented between layers: per-item ``StreamItem`` objects
#: (``"objects"``, the compatibility default) or structure-of-arrays
#: :class:`~repro.core.columns.ColumnarBatch` columns (``"columnar"``,
#: the high-throughput plane). Seeded runs sample identical records on
#: either plane.
DATA_PLANES = ("objects", "columnar")

#: Valid values of :attr:`PipelineConfig.shard_transport` — how a
#: worker shard's per-window Theta payload crosses the process
#: boundary (see :mod:`repro.engine.shm`): ``"pipe"`` (codec frames
#: through the multiprocessing Pipe), ``"shm"`` (frames written into a
#: per-shard shared-memory ring; only descriptors cross the Pipe) or
#: ``"auto"`` (the default; shm wherever fork + shared memory are
#: available, pipe otherwise). Results are bit-identical on every
#: transport — only the IPC cost differs.
SHARD_TRANSPORTS = ("auto", "pipe", "shm")

#: Valid values of :attr:`PipelineConfig.budget_controller` — the
#: per-window feedback loop of §IV-B (see :mod:`repro.system.adaptive`
#: for the implementations): ``"static"`` (no feedback; the bit-exact
#: default), ``"adaptive_fraction"`` (the multiplicative global-fraction
#: controller run between windows) or ``"variance_aware"`` (Neyman
#: reallocation of a fixed budget toward high-variance sub-streams).
BUDGET_CONTROLLERS = ("static", "adaptive_fraction", "variance_aware")

#: Valid values of :attr:`PipelineConfig.on_shard_loss` — what the
#: shard supervisor does once a worker shard has exhausted its
#: ``max_shard_restarts`` respawn budget: ``"abort"`` (the default)
#: fails the run loudly; ``"degrade"`` continues on the surviving
#: shards with honest accounting (the lost shard's expected items are
#: counted into ``items_dropped``, bounds are recomputed from the
#: surviving Theta, and ``WindowOutcome.shards_lost`` surfaces the
#: loss per window).
SHARD_LOSS_POLICIES = ("abort", "degrade")


@dataclass(frozen=True)
class PipelineConfig:
    """Shared knobs for both the statistical and deployment runners.

    Instances are immutable; derive variants with the ``with_*``
    helpers (or :func:`dataclasses.replace`).

    Attributes:
        sampling_fraction: End-to-end fraction of the stream that
            reaches the query (the paper's x-axis in Figs. 5-8, 10-11).
        window_seconds: The computation window / interval length.
        mode: One of :class:`ExecutionMode` — which system to run.
        tree: The logical tree (defaults to the paper's 4-layer tree).
        placement: Host/link provisioning for deployment simulation.
        allocation_policy: ``getSampleSize`` policy for WHSamp.
        confidence: Confidence level for reported error bounds.
        seed: Seed for all randomness in a run.
        backend: Sampling kernel — ``"python"``, ``"numpy"`` or
            ``"auto"`` (default; uses numpy when installed, e.g. via
            the ``[fast]`` extra, and pure Python otherwise).
        transport: How weighted batches move between tree nodes —
            ``"inprocess"`` (direct callbacks), ``"broker"`` (pub/sub
            topics), ``"simnet"`` (broker topics fed over simulated WAN
            links) or ``"auto"`` (default; each engine's native
            transport). The statistical runner supports inprocess and
            broker; the deployment simulator supports simnet and
            broker.
        data_plane: How records are represented between layers —
            ``"objects"`` (per-item ``StreamItem`` objects; the
            compatibility default, bit-for-bit the seed behaviour) or
            ``"columnar"`` (structure-of-arrays
            :class:`~repro.core.columns.ColumnarBatch` batches,
            aggregated with vector ops end-to-end). Seeded runs sample
            identical records on either plane; vectorized reductions
            associate differently, so estimates agree to ~1e-12
            relative rather than bit-for-bit.
        workers: Process-parallel worker shards for the statistical
            engine (§III-E). ``1`` (the default) runs the whole tree
            in-process; ``N > 1`` splits every sub-stream's rate into
            ``N`` equal shares, runs one full sampling tree per shard
            in its own OS process, and merges per-shard Theta state at
            the root. Fixed ``(seed, workers)`` pairs are
            deterministic. The deployment simulator models
            distribution explicitly through simnet hosts/links and
            therefore ignores this knob.
        budget_controller: The per-window feedback loop (§IV-B) the
            statistical engine runs — one of
            :data:`BUDGET_CONTROLLERS`. ``"static"`` (the default)
            applies no feedback and leaves the engine bit-for-bit the
            classic run; ``"adaptive_fraction"`` steers the global
            sampling fraction on the reported error bound between
            windows; ``"variance_aware"`` re-splits a fixed budget
            toward high-variance sub-streams via Neyman weights read
            from the previous window's root Theta. Sharded runs
            broadcast the merged root observation so every shard
            replays the identical controller decision.
        shard_transport: How a worker shard's per-window Theta payload
            crosses the process boundary — one of
            :data:`SHARD_TRANSPORTS`. ``"auto"`` (the default) uses
            per-shard shared-memory rings (:mod:`repro.engine.shm`)
            wherever fork and shared memory are available and the pipe
            codec otherwise; ``"shm"`` requests the rings explicitly
            (same fallback); ``"pipe"`` forces the codec frames through
            the Pipe. Bit-identical results on every transport;
            irrelevant at ``workers == 1``.
        shard_timeout: Watchdog deadline, in seconds per window slot,
            for collecting a worker shard's round (``None``, the
            default, blocks forever — the seed behaviour). With a
            deadline set, a hung or silently-dead shard raises a
            diagnosable :class:`~repro.errors.ShardTimeoutError`
            within ``shard_timeout * slots_in_round`` seconds and the
            supervisor treats it like a crash (respawn-and-replay).
        max_shard_restarts: How many times the supervisor may respawn
            any one worker shard before declaring it lost (``0``
            disables recovery entirely — the seed's fail-stop
            behaviour). Respawned shards replay their deterministic
            history, so a recovered run is bit-identical to an
            unfaulted one.
        on_shard_loss: One of :data:`SHARD_LOSS_POLICIES` — what
            happens when a shard exhausts its restart budget:
            ``"abort"`` (default) fails the run loudly; ``"degrade"``
            continues on the surviving shards with per-window loss
            accounting.
        fault_plan: A :class:`~repro.engine.faults.FaultPlan` of
            deterministic injected faults for the supervision test
            harness (``None``, the default, injects nothing). Requires
            ``workers > 1`` process execution — faults kill shard
            *processes*, so the runner rejects plans on inline and
            single-worker runs.
    """

    sampling_fraction: float = 0.1
    window_seconds: float = 1.0
    mode: str = ExecutionMode.APPROXIOT
    tree: LogicalTree = field(default_factory=paper_tree)
    placement: PlacementSpec = field(
        default_factory=PlacementSpec.paper_defaults
    )
    allocation_policy: AllocationPolicy = allocate_fair_fill
    confidence: float = 0.95
    seed: int = 42
    backend: str = "auto"
    transport: str = TRANSPORT_AUTO
    data_plane: str = "objects"
    workers: int = 1
    budget_controller: str = "static"
    shard_transport: str = "auto"
    shard_timeout: float | None = None
    max_shard_restarts: int = 2
    on_shard_loss: str = "abort"
    fault_plan: object | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ConfigurationError(
                f"sampling fraction must be in (0, 1], got "
                f"{self.sampling_fraction}"
            )
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"window must be positive, got {self.window_seconds}"
            )
        if self.mode not in ExecutionMode.ALL:
            raise ConfigurationError(
                f"mode must be one of {ExecutionMode.ALL}, got {self.mode!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, got "
                f"{self.transport!r}"
            )
        if self.data_plane not in DATA_PLANES:
            raise ConfigurationError(
                f"data_plane must be one of {DATA_PLANES}, got "
                f"{self.data_plane!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigurationError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        if self.budget_controller not in BUDGET_CONTROLLERS:
            raise ConfigurationError(
                f"budget_controller must be one of {BUDGET_CONTROLLERS}, "
                f"got {self.budget_controller!r}"
            )
        if self.shard_transport not in SHARD_TRANSPORTS:
            raise ConfigurationError(
                f"shard_transport must be one of {SHARD_TRANSPORTS}, "
                f"got {self.shard_transport!r}"
            )
        if self.shard_timeout is not None and not self.shard_timeout > 0:
            raise ConfigurationError(
                f"shard_timeout must be positive (or None to disable "
                f"the watchdog), got {self.shard_timeout!r}"
            )
        if (
            not isinstance(self.max_shard_restarts, int)
            or self.max_shard_restarts < 0
        ):
            raise ConfigurationError(
                f"max_shard_restarts must be an integer >= 0, got "
                f"{self.max_shard_restarts!r}"
            )
        if self.on_shard_loss not in SHARD_LOSS_POLICIES:
            raise ConfigurationError(
                f"on_shard_loss must be one of {SHARD_LOSS_POLICIES}, "
                f"got {self.on_shard_loss!r}"
            )
        if self.fault_plan is not None:
            # Imported lazily: engine.faults sits above this module in
            # the layering (it only needs repro.errors), but config is
            # imported everywhere and must not pull the engine in at
            # module load.
            from repro.engine.faults import FaultPlan

            if not isinstance(self.fault_plan, FaultPlan):
                raise ConfigurationError(
                    f"fault_plan must be a repro.engine.faults.FaultPlan "
                    f"(or None), got {type(self.fault_plan).__name__}"
                )

    @property
    def resolved_backend(self) -> str:
        """The concrete sampling backend this config runs on.

        Resolves ``"auto"`` against the current environment; raises
        if ``"numpy"`` was requested explicitly but is unavailable.
        The engine resolves this exactly once per run (at pipeline
        assembly) and threads the result through every sampling call.
        """
        return resolve_backend(self.backend)

    def with_mode(self, mode: str) -> "PipelineConfig":
        """A copy of this config running a different system."""
        return replace(self, mode=mode)

    def with_fraction(self, fraction: float) -> "PipelineConfig":
        """A copy of this config at a different sampling fraction."""
        return replace(self, sampling_fraction=fraction)

    def with_backend(self, backend: str) -> "PipelineConfig":
        """A copy of this config on a different sampling backend."""
        return replace(self, backend=backend)

    def with_transport(self, transport: str) -> "PipelineConfig":
        """A copy of this config on a different inter-node transport."""
        return replace(self, transport=transport)

    def with_data_plane(self, data_plane: str) -> "PipelineConfig":
        """A copy of this config on a different data plane."""
        return replace(self, data_plane=data_plane)

    def with_seed(self, seed: int) -> "PipelineConfig":
        """A copy of this config with a different random seed."""
        return replace(self, seed=seed)

    def with_workers(self, workers: int) -> "PipelineConfig":
        """A copy of this config with a different worker-shard count."""
        return replace(self, workers=workers)

    def with_budget_controller(self, controller: str) -> "PipelineConfig":
        """A copy of this config under a different budget controller."""
        return replace(self, budget_controller=controller)

    def with_shard_transport(self, shard_transport: str) -> "PipelineConfig":
        """A copy of this config on a different shard transport."""
        return replace(self, shard_transport=shard_transport)

    def with_shard_timeout(self, shard_timeout: float | None) -> "PipelineConfig":
        """A copy of this config with a different watchdog deadline."""
        return replace(self, shard_timeout=shard_timeout)

    def with_max_shard_restarts(self, restarts: int) -> "PipelineConfig":
        """A copy of this config with a different respawn budget."""
        return replace(self, max_shard_restarts=restarts)

    def with_on_shard_loss(self, policy: str) -> "PipelineConfig":
        """A copy of this config under a different shard-loss policy."""
        return replace(self, on_shard_loss=policy)

    def with_fault_plan(self, fault_plan) -> "PipelineConfig":
        """A copy of this config with injected faults (test harness)."""
        return replace(self, fault_plan=fault_plan)
