"""Benchmark: regenerate Fig. 6 (throughput vs sampling fraction)."""

from repro.experiments import fig6


def test_bench_fig6(benchmark, bench_scale, results_sink):
    """Asserts the 1/fraction throughput scaling and low overhead."""
    text = benchmark.pedantic(
        fig6.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    points = {
        p.fraction: p for p in fig6.run_fig6([0.1, 0.8, 1.0], bench_scale)
    }
    # Paper: 9.9x at 10%, 1.3x at 80%; shape, not absolute numbers.
    assert points[0.1].speedup_over_native > 4.0
    assert 1.0 < points[0.8].speedup_over_native < 4.0
    # At 100% both sampled systems match native (low sampling overhead).
    assert abs(points[1.0].approxiot - points[1.0].native) < (
        0.5 * points[1.0].native
    )
    # ApproxIoT ~ SRS across the sweep.
    assert abs(points[0.1].approxiot - points[0.1].srs) < 0.5 * points[0.1].srs
