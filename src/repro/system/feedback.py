"""Adaptive feedback driver (§IV-B's refinement loop, between runs).

When a window's reported error bound exceeds the analyst's budget, the
root refines the sampling parameters at all layers for subsequent runs.
:class:`FeedbackDriver` reproduces the paper's *between-runs* form of
that loop: each window is executed by a fresh statistical runner at the
controller's current fraction ("in subsequent runs", per the paper).

The driver is a thin facade over the in-run controller machinery of
:mod:`repro.system.adaptive` — it wraps the caller's
:class:`~repro.core.cost.AdaptiveErrorBudget` in an
:class:`~repro.system.adaptive.AdaptiveFractionController` and feeds it
the same :class:`~repro.system.adaptive.WindowObservation` values the
engine's per-window hook produces. The observation contract fixes a
long-standing trap: a window whose estimate is *zero* (blackout, total
churn) used to be recorded as ``relative_error = 0.0`` — "the estimate
was perfect" — shrinking the budget exactly when the system was blind.
A zero-estimate window now carries no relative bound, the controller
holds its fraction, and the trace records ``nan`` for that window.

For feedback *inside* one running engine (sampler and Theta state
persisting across windows), set
:attr:`~repro.system.config.PipelineConfig.budget_controller` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.cost import AdaptiveErrorBudget
from repro.errors import PipelineError
from repro.system.adaptive import AdaptiveFractionController, WindowObservation
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner, WindowOutcome
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator

__all__ = ["FeedbackDriver", "FeedbackOutcome"]


@dataclass
class FeedbackOutcome:
    """Trace of an adaptive run.

    ``relative_errors`` holds ``nan`` for windows the controller held
    on (zero-estimate windows carry no relative bound); ``fractions``
    records the fraction each window actually ran at.
    """

    windows: list[WindowOutcome] = field(default_factory=list)
    fractions: list[float] = field(default_factory=list)
    relative_errors: list[float] = field(default_factory=list)

    @property
    def final_fraction(self) -> float:
        """The fraction the controller settled on."""
        if not self.fractions:
            raise PipelineError("adaptive run recorded no windows")
        return self.fractions[-1]


class FeedbackDriver:
    """Runs windows, feeding each error bound back into the controller."""

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
        controller: AdaptiveErrorBudget,
    ) -> None:
        self._base_config = config
        self._schedule = schedule
        self._generators = generators
        self._budget = controller
        # The facade seam: observation handling (including the
        # hold-on-zero rule) is the in-run controller's, shared with
        # the engine's per-window hook. The caller's AdaptiveErrorBudget
        # is wrapped, not copied, so its fraction/history stay live.
        self._controller = AdaptiveFractionController(controller)

    def run(self, windows: int) -> FeedbackOutcome:
        """Run ``windows`` windows with per-window fraction refinement.

        Each window is executed by a fresh statistical runner at the
        controller's current fraction (sampling parameters refined "in
        subsequent runs", per the paper); the realized relative error
        bound of the SUM estimate drives the next adjustment. Windows
        with a zero estimate (or with nothing emitted at all) hold the
        fraction — silence is not evidence of a perfect estimate — and
        record ``nan`` in the error trace.
        """
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = FeedbackOutcome()
        for index in range(windows):
            fraction = self._budget.fraction
            # Vary the seed per window so the adaptive trace is not a
            # single replayed sample path.
            config = self._base_config.with_fraction(fraction).with_seed(
                self._base_config.seed + index
            )
            with StatisticalRunner(
                config, self._schedule, self._generators
            ) as runner:
                window = runner.run_window()
            if window is None:
                # Nothing emitted: the slot advances (seed variation
                # keeps its place) but there is nothing to learn from.
                continue
            observation = _observation_for(index, window)
            self._controller.observe(observation)
            outcome.windows.append(window)
            outcome.fractions.append(fraction)
            outcome.relative_errors.append(
                observation.relative_bound
                if observation.relative_bound is not None
                else math.nan
            )
        return outcome


def _observation_for(
    index: int, window: WindowOutcome
) -> WindowObservation:
    """One driver window as a controller observation.

    Only the relative bound matters to the fraction controller;
    per-sub-stream state is not reconstructed (the driver discards the
    root Theta with its fresh runner). A zero estimate yields a
    ``None`` bound — the hold signal.
    """
    relative_bound = (
        window.approx_sum.relative_error()
        if window.approx_sum.value != 0
        else None
    )
    return WindowObservation(
        window=index, relative_bound=relative_bound, substreams=()
    )
