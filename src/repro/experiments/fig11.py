"""Figure 11 — real-world case studies (NYC taxi, Brasov pollution).

Panel (a): accuracy loss vs sampling fraction for both datasets; the
pollution curve sits below the taxi curve because sensor values are
more stable than fares. Panel (b): throughput vs fraction; at the 10 %
fraction ApproxIoT sustains roughly an order of magnitude more input
than the native execution, and both datasets behave alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    PAPER_FRACTIONS,
    base_config,
    saturating_placement,
)
from repro.metrics.report import Table, format_percent, format_rate
from repro.system.config import ExecutionMode
from repro.system.deployment import DeploymentSimulator
from repro.system.statistical import StatisticalRunner
from repro.workloads.pollution import POLLUTANTS, pollutant_generators
from repro.workloads.rates import RateSchedule
from repro.workloads.taxi import BOROUGHS, TaxiTraceSynthesizer

__all__ = [
    "Fig11AccuracyPoint",
    "Fig11ThroughputPoint",
    "run_fig11_accuracy",
    "run_fig11_throughput",
    "taxi_workload",
    "pollution_workload",
    "main",
]


@dataclass(frozen=True, slots=True)
class Fig11AccuracyPoint:
    """ApproxIoT accuracy on one dataset at one fraction (panel a)."""

    dataset: str
    fraction: float
    approxiot_loss: float


@dataclass(frozen=True, slots=True)
class Fig11ThroughputPoint:
    """ApproxIoT throughput on one dataset at one fraction (panel b)."""

    dataset: str
    fraction: float
    throughput: float
    native_throughput: float


def taxi_workload(scale: ExperimentScale) -> tuple[RateSchedule, dict]:
    """Schedule + generators for the taxi case study.

    Borough rates follow the 2013 ride-volume shares, scaled to an
    aggregate comparable to the synthetic experiments.
    """
    aggregate = 100_000.0 * scale.rate_scale
    schedule = RateSchedule(
        "nyc-taxi",
        {
            f"taxi/{borough}": max(2.0, aggregate * share)
            for borough, share in BOROUGHS.items()
        },
    )
    return schedule, TaxiTraceSynthesizer.borough_generators()


def pollution_workload(scale: ExperimentScale) -> tuple[RateSchedule, dict]:
    """Schedule + generators for the pollution case study.

    Pollutant feeds report at equal rates (every sensor reports each
    period in the real dataset).
    """
    aggregate = 100_000.0 * scale.rate_scale
    per_pollutant = aggregate / len(POLLUTANTS)
    schedule = RateSchedule(
        "brasov-pollution",
        {
            f"pollution/{pollutant}": max(2.0, per_pollutant)
            for pollutant in POLLUTANTS
        },
    )
    return schedule, pollutant_generators()


_WORKLOADS = {"taxi": taxi_workload, "pollution": pollution_workload}


def run_fig11_accuracy(
    dataset: str = "taxi",
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
) -> list[Fig11AccuracyPoint]:
    """Panel (a) for one dataset."""
    fractions = fractions if fractions is not None else PAPER_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    schedule, generators = _WORKLOADS[dataset](scale)
    points: list[Fig11AccuracyPoint] = []
    for fraction in fractions:
        config = base_config(fraction, scale)
        with StatisticalRunner(config, schedule, generators) as runner:
            outcome = runner.run(scale.windows)
        points.append(
            Fig11AccuracyPoint(
                dataset=dataset,
                fraction=fraction,
                approxiot_loss=outcome.mean_approxiot_loss,
            )
        )
    return points


def run_fig11_throughput(
    dataset: str = "taxi",
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    n_windows: int = 10,
) -> list[Fig11ThroughputPoint]:
    """Panel (b) for one dataset at a saturating offered load."""
    fractions = fractions if fractions is not None else PAPER_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    schedule, generators = _WORKLOADS[dataset](scale)
    placement = saturating_placement(schedule)

    def throughput(mode: str, fraction: float) -> float:
        config = base_config(fraction, scale, mode=mode, placement=placement)
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=n_windows
        )
        return simulator.run().throughput_items_per_second

    native = throughput(ExecutionMode.NATIVE, 1.0)
    return [
        Fig11ThroughputPoint(
            dataset=dataset,
            fraction=fraction,
            throughput=throughput(ExecutionMode.APPROXIOT, fraction),
            native_throughput=native,
        )
        for fraction in fractions
    ]


def main(scale: ExperimentScale | None = None) -> str:
    """Print both panels for both datasets; return the text."""
    blocks: list[str] = []
    table = Table(
        "Fig. 11(a): accuracy loss vs sampling fraction (real-world)",
        ["fraction", "NYC taxi loss", "Brasov pollution loss"],
    )
    taxi_points = run_fig11_accuracy("taxi", scale=scale)
    pollution_points = run_fig11_accuracy("pollution", scale=scale)
    for taxi_point, pollution_point in zip(taxi_points, pollution_points):
        table.add_row(
            f"{taxi_point.fraction:.0%}",
            format_percent(taxi_point.approxiot_loss),
            format_percent(pollution_point.approxiot_loss),
        )
    blocks.append(table.render())

    table = Table(
        "Fig. 11(b): throughput vs sampling fraction (real-world)",
        ["fraction", "NYC taxi", "Brasov pollution", "native"],
    )
    taxi_throughput = run_fig11_throughput("taxi", scale=scale)
    pollution_throughput = run_fig11_throughput("pollution", scale=scale)
    for taxi_point, pollution_point in zip(taxi_throughput, pollution_throughput):
        table.add_row(
            f"{taxi_point.fraction:.0%}",
            format_rate(taxi_point.throughput),
            format_rate(pollution_point.throughput),
            format_rate(taxi_point.native_throughput),
        )
    blocks.append(table.render())
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
