"""Data sources: objects that emit item batches per interval.

A :class:`Source` ties a value generator (Gaussian, Poisson, taxi,
pollution, mixture) to an arrival rate, producing the per-interval item
batches that the pipeline's bottom layer ingests. Sources are how the
experiments express "8 source nodes producing the input data stream"
and the fluctuating-rate settings.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.core.columns import ColumnarBatch
from repro.core.items import StreamItem
from repro.errors import WorkloadError
from repro.workloads.rates import RateSchedule

__all__ = [
    "Source",
    "ItemGenerator",
    "generate_columns",
    "sources_from_schedule",
]


class ItemGenerator(Protocol):
    """Anything that can generate ``count`` items at a timestamp.

    Generators may additionally implement ``generate_columns`` with
    the same signature returning a
    :class:`~repro.core.columns.ColumnarBatch`; the columnar data
    plane uses it when present (see :func:`generate_columns`).
    """

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Produce a batch of items."""
        ...  # pragma: no cover - protocol


def generate_columns(
    generator: ItemGenerator,
    count: int,
    rng: random.Random,
    emitted_at: float = 0.0,
) -> ColumnarBatch:
    """A generator's batch as columns, however the generator is built.

    Generators that implement ``generate_columns`` emit columns
    natively (no item objects ever exist); anything else falls back to
    transposing its object batch — same records, object-churn cost
    paid once at the seam.
    """
    native = getattr(generator, "generate_columns", None)
    if native is not None:
        return native(count, rng, emitted_at)
    return ColumnarBatch.from_items(generator.generate(count, rng, emitted_at))


class Source:
    """One logical data source with a fixed arrival rate."""

    def __init__(
        self,
        name: str,
        generator: ItemGenerator,
        rate_per_second: float,
        *,
        rng: random.Random | None = None,
    ) -> None:
        if rate_per_second < 0:
            raise WorkloadError(
                f"rate must be >= 0, got {rate_per_second}"
            )
        self.name = name
        self._generator = generator
        self.rate_per_second = float(rate_per_second)
        self._rng = rng if rng is not None else random.Random()
        self.items_emitted = 0
        # Centered at 0.5 so a lone interval rounds to nearest rather
        # than truncating; see _interval_count.
        self._carry = 0.5

    def _interval_count(self, interval_seconds: float) -> int:
        """Items due this interval, carrying the fractional remainder.

        ``rate * interval`` is rarely an integer; rounding it per call
        silently drops (or invents) volume — a 0.4 items/s source
        would emit nothing forever, and a 0.6 items/s source would
        emit 67% over schedule. The fractional remainder is carried
        into the next interval instead, so long-run emitted counts
        track the schedule exactly. The carry starts at one half so a
        single interval still rounds to nearest — integer-rate sources
        are unchanged, fractional first windows round half *up* (the
        historical ``int(round(...))`` rounded half-integer ties to
        even) — and thereafter the running total stays within one item
        of ``rate * elapsed``.
        """
        if interval_seconds <= 0:
            raise WorkloadError(
                f"interval must be positive, got {interval_seconds}"
            )
        due = self.rate_per_second * interval_seconds + self._carry
        count = int(due)
        self._carry = due - count
        return count

    def emit_interval(
        self, interval_start: float, interval_seconds: float
    ) -> list[StreamItem]:
        """Produce this source's batch for one interval.

        Items get emission timestamps spread uniformly over the
        interval so latency accounting sees realistic in-interval
        arrival spread.
        """
        count = self._interval_count(interval_seconds)
        if count == 0:
            return []
        batch = self._generator.generate(count, self._rng, interval_start)
        spread: list[StreamItem] = []
        for index, item in enumerate(batch):
            offset = interval_seconds * (index + 1) / (count + 1)
            spread.append(
                StreamItem(
                    item.substream,
                    item.value,
                    interval_start + offset,
                    item.size_bytes,
                )
            )
        self.items_emitted += len(spread)
        return spread

    def emit_interval_columns(
        self, interval_start: float, interval_seconds: float
    ) -> ColumnarBatch:
        """Columnar twin of :meth:`emit_interval`.

        Values come from the generator's columnar path (identical
        entropy, so seeded emissions match the object plane exactly)
        and the in-interval timestamp spread is one vector op instead
        of a second per-item copy of the whole batch.
        """
        count = self._interval_count(interval_seconds)
        if count == 0:
            return ColumnarBatch.empty()
        batch = generate_columns(
            self._generator, count, self._rng, interval_start
        ).with_spread_timestamps(interval_start, interval_seconds)
        self.items_emitted += len(batch)
        return batch


class _CallableGenerator:
    """Adapter from a plain callable to the ItemGenerator protocol."""

    def __init__(
        self,
        fn: Callable[[int, random.Random, float], list[StreamItem]],
    ) -> None:
        self._fn = fn

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        return self._fn(count, rng, emitted_at)


def sources_from_schedule(
    schedule: RateSchedule,
    generators: dict[str, ItemGenerator],
    *,
    seed: int = 0,
) -> list[Source]:
    """One source per sub-stream of a rate schedule.

    Raises :class:`WorkloadError` when the schedule references a
    sub-stream with no generator.
    """
    sources: list[Source] = []
    seed_rng = random.Random(seed)
    for substream, rate in schedule.rates.items():
        if substream not in generators:
            raise WorkloadError(
                f"no generator supplied for sub-stream {substream!r}"
            )
        sources.append(
            Source(
                f"source-{substream}",
                generators[substream],
                rate,
                rng=random.Random(seed_rng.getrandbits(64)),
            )
        )
    return sources
