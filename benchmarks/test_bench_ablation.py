"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Stratified reservoirs vs a single shared reservoir.
2. Weight propagation (Eq. 2) vs naive 1/fraction rescaling at the root.
3. Budget allocation policies (fair-fill vs equal vs proportional).
4. Per-item reservoir vs skip-ahead sampling CPU cost.
5. Worker-parallel sampling (§III-E): estimate invariant across pool sizes.
"""

import random

import pytest

from repro.core.estimator import ThetaStore, estimate_sum
from repro.core.items import StreamItem
from repro.core.reservoir import ReservoirSampler, SkipAheadReservoirSampler
from repro.core.stratified import (
    allocate_equal,
    allocate_fair_fill,
    allocate_proportional,
)
from repro.core.whs import whsamp
from repro.core.worker import WorkerPool
from repro.metrics.report import Table
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import PoissonSubstream


def _skewed_items(rng, common=20_000, rare=4):
    items = [StreamItem("common", rng.gauss(10, 3)) for _ in range(common)]
    items += [StreamItem("rare", rng.gauss(1e6, 1e4)) for _ in range(rare)]
    rng.shuffle(items)
    return items


def test_ablation_stratified_vs_single_reservoir(benchmark, results_sink):
    """Ablation 1: drop stratification -> rare stratum vanishes."""

    def run():
        rng = random.Random(0)
        strat_losses, single_losses = [], []
        for trial in range(30):
            trial_rng = random.Random(trial)
            items = _skewed_items(trial_rng)
            exact = sum(i.value for i in items)
            budget = len(items) // 10
            # Stratified (the paper's algorithm).
            result = whsamp(items, budget, rng=trial_rng)
            theta = ThetaStore()
            theta.extend(result.batches)
            strat_losses.append(abs(estimate_sum(theta) - exact) / exact)
            # Single shared reservoir: one stratum for everything.
            sampler = ReservoirSampler(budget, trial_rng)
            sampler.extend(items)
            weight = len(items) / budget
            estimate = weight * sum(i.value for i in sampler.sample())
            single_losses.append(abs(estimate - exact) / exact)
        return (
            sum(strat_losses) / len(strat_losses),
            sum(single_losses) / len(single_losses),
        )

    strat, single = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation 1: stratified vs single reservoir (10% sample)",
                  ["variant", "mean loss"])
    table.add_row("stratified (paper)", f"{100 * strat:.4f}%")
    table.add_row("single reservoir", f"{100 * single:.4f}%")
    results_sink(table.render())
    assert single > 10 * strat


def test_ablation_weight_propagation(benchmark, results_sink):
    """Ablation 2: replacing Eq. 2 by 1/fraction rescaling biases sums.

    The hierarchy's realized fraction differs per sub-stream (fair-fill
    keeps small strata whole), so a flat 1/fraction blow-up at the root
    is wrong whenever stratum rates differ.
    """

    def run():
        fraction = 0.1
        weighted_losses, naive_losses = [], []
        for trial in range(15):
            rng = random.Random(trial)
            # A big low-value stratum and a rare high-value one: the
            # hierarchy keeps the rare stratum whole (weight 1) while
            # thinning the big one (weight ~1/fraction).
            items = [StreamItem("big", rng.gauss(10, 3)) for _ in range(20_000)]
            items += [StreamItem("rare", rng.gauss(1e5, 1e3)) for _ in range(40)]
            exact = sum(i.value for i in items)
            budget = int(len(items) * fraction)
            l1 = whsamp(items, budget, rng=rng)
            forwarded = [i for b in l1.batches for i in b.items]
            root = whsamp(forwarded, budget, l1.weights, rng=rng)
            theta = ThetaStore()
            theta.extend(root.batches)
            weighted = estimate_sum(theta)
            # Naive root: discard the weight metadata, blow every
            # sampled value up by the nominal 1/fraction.
            naive = sum(i.value for b in root.batches for i in b.items) / fraction
            weighted_losses.append(100.0 * abs(weighted - exact) / exact)
            naive_losses.append(100.0 * abs(naive - exact) / exact)
        return (
            sum(weighted_losses) / len(weighted_losses),
            sum(naive_losses) / len(naive_losses),
        )

    weighted, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation 2: weight propagation vs naive 1/f rescaling",
                  ["variant", "mean loss"])
    table.add_row("Eq. 2 weights (paper)", f"{weighted:.4f}%")
    table.add_row("naive 1/fraction", f"{naive:.4f}%")
    results_sink(table.render())
    assert weighted < naive


def test_ablation_allocation_policies(benchmark, results_sink):
    """Ablation 3: fair-fill dominates under heterogeneous rates."""

    def run():
        losses = {}
        for policy, name in (
            (allocate_fair_fill, "fair_fill"),
            (allocate_equal, "equal"),
            (allocate_proportional, "proportional"),
        ):
            # Average across seeds: the fair-fill edge over proportional
            # is modest at this scale (the 1-slot floor keeps the rare
            # stratum alive even under proportional), so a single seeded
            # run can order the policies either way on any backend.
            per_seed = []
            for seed in range(5):
                gens = {
                    "big": PoissonSubstream("big", 1000.0),
                    "rare": PoissonSubstream("rare", 1_000_000.0),
                }
                schedule = RateSchedule("ab", {"big": 3000.0, "rare": 8.0})
                config = PipelineConfig(
                    sampling_fraction=0.1, seed=seed,
                    allocation_policy=policy,
                )
                runner = StatisticalRunner(config, schedule, gens)
                per_seed.append(runner.run(20).mean_approxiot_loss)
            losses[name] = sum(per_seed) / len(per_seed)
        return losses

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation 3: getSampleSize allocation policy (10% fraction)",
                  ["policy", "mean loss"])
    for name, loss in losses.items():
        table.add_row(name, f"{loss:.4f}%")
    results_sink(table.render())
    # Proportional allocation starves the rare-but-valuable stratum.
    assert losses["fair_fill"] < losses["proportional"]


def test_ablation_reservoir_cpu(benchmark, results_sink):
    """Ablation 4: skip-ahead reduces RNG calls on the hot path."""
    stream = list(range(200_000))

    def per_item():
        sampler = ReservoirSampler(100, random.Random(1))
        sampler.extend(stream)
        return sampler.sample()

    result = benchmark(per_item)
    assert len(result) == 100

    # Compare RNG call counts directly (the mechanism behind the win).
    class CountingRandom(random.Random):
        calls = 0

        def random(self):
            CountingRandom.calls += 1
            return super().random()

        def randrange(self, *args, **kwargs):
            CountingRandom.calls += 1
            return super().randrange(*args, **kwargs)

    CountingRandom.calls = 0
    per_item_sampler = ReservoirSampler(100, CountingRandom(2))
    per_item_sampler.extend(stream)
    per_item_calls = CountingRandom.calls

    CountingRandom.calls = 0
    skip_sampler = SkipAheadReservoirSampler(100, CountingRandom(3))
    skip_sampler.extend(stream)
    skip_calls = CountingRandom.calls

    table = Table("Ablation 4: RNG calls per 200k-item stream (capacity 100)",
                  ["sampler", "rng calls"])
    table.add_row("per-item (Algorithm R)", per_item_calls)
    table.add_row("skip-ahead (Algorithm X)", skip_calls)
    results_sink(table.render())
    assert skip_calls < per_item_calls / 50


def test_ablation_worker_parallelism(benchmark, results_sink):
    """Ablation 5: §III-E worker pools leave the estimate unchanged."""

    def run():
        rng = random.Random(4)
        values = [rng.gauss(100, 10) for _ in range(20_000)]
        true_sum = sum(values)
        rows = {}
        for workers in (1, 2, 4, 8):
            estimates = []
            for trial in range(10):
                pool = WorkerPool(
                    "s", 2000, workers, rng=random.Random(trial)
                )
                pool.extend([StreamItem("s", v) for v in values])
                batches = pool.flush(1.0)
                estimates.append(sum(b.estimated_sum for b in batches))
            mean = sum(estimates) / len(estimates)
            rows[workers] = abs(mean - true_sum) / true_sum
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("Ablation 5: worker-parallel sampling (§III-E)",
                  ["workers", "relative bias of mean estimate"])
    for workers, bias in rows.items():
        table.add_row(workers, f"{100 * bias:.4f}%")
        assert bias < 0.02
    results_sink(table.render())
