"""Unified execution engine: one pipeline, many transports and modes.

The engine separates *what a run is* from *how it executes*:

* :mod:`repro.engine.pipeline` assembles the node graph once —
  sources, per-node budgets, resolved sampling backend — from a
  :class:`~repro.system.config.PipelineConfig` and a rate schedule.
* :mod:`repro.engine.transport` moves weighted batches between nodes:
  in-process callbacks, broker topics, or simnet-backed broker links.
* :mod:`repro.engine.runner` is the single windowed run loop with the
  paper's three strategies (approxiot / srs / native).
* :mod:`repro.engine.sharding` scales that loop across cores: a shard
  planner splits the rates into equal per-worker shares, each shard
  runs the loop in its own OS process, and per-shard Theta state is
  merged at the root (§III-E made physical).
* :mod:`repro.engine.shm` is the sharded loop's zero-copy IPC plane:
  per-shard shared-memory segments carry the Theta payload bytes while
  only ``(sequence, offset, length)`` descriptors cross the Pipe
  (``config.shard_transport``; falls back to the pipe codec wherever
  shared memory or fork is unavailable).

The public runners in :mod:`repro.system` are thin facades over this
package: the :class:`~repro.system.statistical.StatisticalRunner`
drives :class:`EngineRunner` directly, and the
:class:`~repro.system.deployment.DeploymentSimulator` drives the same
pipeline and sampling step from a discrete-event clock.
"""

from repro.engine.pipeline import Pipeline, build_pipeline
from repro.engine.runner import (
    ApproxIoTWindow,
    EngineRunner,
    RunOutcome,
    WindowOutcome,
    accuracy_loss,
    sample_interval,
)
from repro.engine.sharding import (
    ShardIpcStats,
    ShardPlan,
    ShardedEngineRunner,
    plan_shards,
)
from repro.engine.transport import (
    BrokerTransport,
    InProcessTransport,
    SimnetBrokerTransport,
    Transport,
    make_statistical_transport,
    topic_for,
)

__all__ = [
    "ApproxIoTWindow",
    "BrokerTransport",
    "EngineRunner",
    "InProcessTransport",
    "Pipeline",
    "RunOutcome",
    "ShardIpcStats",
    "ShardPlan",
    "ShardedEngineRunner",
    "SimnetBrokerTransport",
    "Transport",
    "WindowOutcome",
    "accuracy_loss",
    "build_pipeline",
    "make_statistical_transport",
    "plan_shards",
    "sample_interval",
    "topic_for",
]
