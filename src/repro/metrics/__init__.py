"""Evaluation metrics and report formatting.

The paper's three metrics (§V-A): throughput (items/s), accuracy loss
(``|approx - exact| / exact``) and end-to-end latency, plus the
bandwidth-saving rate of Fig. 7. Accuracy lives in
:func:`repro.system.accuracy_loss`; latency and bandwidth helpers in
:mod:`repro.simnet.stats`; this package adds report tables shared by
the experiment harness.
"""

from repro.metrics.report import Table, format_bytes, format_percent, format_rate
from repro.simnet.stats import LatencyRecorder, bandwidth_saving
from repro.system.statistical import accuracy_loss

__all__ = [
    "LatencyRecorder",
    "Table",
    "accuracy_loss",
    "bandwidth_saving",
    "format_bytes",
    "format_percent",
    "format_rate",
]
