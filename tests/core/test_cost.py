"""Unit tests for the budget cost functions."""

import pytest

from repro.core.cost import AdaptiveErrorBudget, FractionBudget, ThroughputBudget
from repro.errors import ConfigurationError


class TestFractionBudget:
    def test_basic_scaling(self):
        assert FractionBudget(0.1).sample_size(1000) == 100

    def test_rounding(self):
        assert FractionBudget(0.333).sample_size(10) == 3

    def test_floor_applies(self):
        assert FractionBudget(0.01, floor=5).sample_size(10) == 5

    def test_zero_arrivals_gives_floor(self):
        assert FractionBudget(0.5).sample_size(0) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FractionBudget(0.0)
        with pytest.raises(ConfigurationError):
            FractionBudget(1.5)
        with pytest.raises(ConfigurationError):
            FractionBudget(0.5, floor=0)
        with pytest.raises(ConfigurationError):
            FractionBudget(0.5).sample_size(-1)


class TestThroughputBudget:
    def test_scales_with_interval(self):
        budget = ThroughputBudget(1000.0)
        assert budget.sample_size(1.0) == 1000
        assert budget.sample_size(2.5) == 2500

    def test_minimum_one(self):
        assert ThroughputBudget(0.5).sample_size(1.0) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThroughputBudget(0.0)
        with pytest.raises(ConfigurationError):
            ThroughputBudget(10.0).sample_size(0.0)


class TestAdaptiveErrorBudget:
    def test_grows_when_error_exceeds_target(self):
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.1)
        new = controller.observe(0.2)
        assert new == pytest.approx(0.15)

    def test_shrinks_when_error_far_below_target(self):
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.5)
        new = controller.observe(0.001)
        assert new == pytest.approx(0.45)

    def test_holds_inside_deadband(self):
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.2, slack=0.5)
        new = controller.observe(0.03)  # between 0.025 and 0.05
        assert new == pytest.approx(0.2)

    def test_fraction_capped_at_one(self):
        controller = AdaptiveErrorBudget(0.01, initial_fraction=0.9)
        for _ in range(10):
            controller.observe(1.0)
        assert controller.fraction == 1.0

    def test_fraction_floored(self):
        controller = AdaptiveErrorBudget(0.5, initial_fraction=0.02,
                                         min_fraction=0.01)
        for _ in range(20):
            controller.observe(0.0)
        assert controller.fraction == pytest.approx(0.01)

    def test_history_recorded(self):
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.1)
        controller.observe(0.2)
        controller.observe(0.2)
        assert len(controller.history) == 3

    def test_sample_size_uses_current_fraction(self):
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.1)
        assert controller.sample_size(1000) == 100
        controller.observe(1.0)  # grow to 0.15
        assert controller.sample_size(1000) == 150

    def test_converges_toward_target(self):
        """A synthetic error model ~ 1/sqrt(fraction) should settle."""
        controller = AdaptiveErrorBudget(0.05, initial_fraction=0.02)
        for _ in range(30):
            simulated_error = 0.02 / (controller.fraction ** 0.5)
            controller.observe(simulated_error)
        final_error = 0.02 / (controller.fraction ** 0.5)
        assert final_error <= 0.05 * 1.6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveErrorBudget(0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveErrorBudget(0.05, grow=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveErrorBudget(0.05, shrink=1.2)
        with pytest.raises(ConfigurationError):
            AdaptiveErrorBudget(0.05, slack=0.0)
        controller = AdaptiveErrorBudget(0.05)
        with pytest.raises(ConfigurationError):
            controller.observe(-0.1)
