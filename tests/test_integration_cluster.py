"""Integration: the sampling pipeline over a multi-broker cluster.

The paper's testbed carries inter-layer topics on a 10-node Kafka
cluster. These tests run the edge pipeline against
:class:`~repro.broker.cluster.BrokerCluster` with leader routing and
inject broker failures mid-run, checking that (a) partition leadership
fails over, (b) the pipeline keeps flowing, and (c) the estimate stays
correct — the sampling algorithm is oblivious to the transport.
"""

import random

import pytest

from repro.broker import BrokerCluster, Record
from repro.core import (
    StreamItem,
    ThetaStore,
    estimate_sum_with_error,
)
from repro.core.whs import whsamp
from repro.errors import BrokerError


def produce_via_cluster(cluster, topic, batches):
    """Route every produce through the partition leader."""
    for batch in batches:
        topic_obj = cluster.data_plane.topic(topic)
        partition = topic_obj.partition_for(batch.substream)
        broker = cluster.route(topic, partition)  # raises if unavailable
        broker.produce(
            topic, Record(key=batch.substream, value=batch), partition
        )


def drain(cluster, topic):
    out = []
    data = cluster.data_plane
    for partition, end in data.end_offsets(topic).items():
        out.extend(record.value for record in data.fetch(topic, partition, 0))
    return out


class TestClusterPipeline:
    def _sample_layers(self, items, rng):
        """Two sampling layers, clustered transport in between."""
        cluster = BrokerCluster(broker_count=3, replication_factor=2)
        cluster.create_topic("layer1", partitions=3)

        l1 = whsamp(items, 2_000, rng=rng)
        produce_via_cluster(cluster, "layer1", l1.batches)
        return cluster, l1

    def test_end_to_end_estimate_over_cluster(self):
        rng = random.Random(21)
        items = [StreamItem("a", rng.gauss(10, 2)) for _ in range(10_000)]
        items += [StreamItem("b", rng.gauss(1000, 50)) for _ in range(10_000)]
        exact = sum(i.value for i in items)

        cluster, _l1 = self._sample_layers(items, rng)
        arrived = drain(cluster, "layer1")
        root = whsamp(
            [i for b in arrived for i in b.items],
            1_000,
            {b.substream: b.weight for b in arrived},
            rng=rng,
        )
        theta = ThetaStore()
        theta.extend(root.batches)
        approx = estimate_sum_with_error(theta)
        assert approx.value == pytest.approx(exact, rel=0.05)

    def test_failover_keeps_pipeline_flowing(self):
        rng = random.Random(22)
        items = [StreamItem("a", 1.0) for _ in range(5_000)]
        cluster = BrokerCluster(broker_count=3, replication_factor=2)
        cluster.create_topic("layer1", partitions=3)

        first_half = whsamp(items[:2_500], 500, rng=rng)
        produce_via_cluster(cluster, "layer1", first_half.batches)

        # A broker dies between intervals; replicas take over leadership.
        victim = cluster.leader("layer1", 0)
        cluster.kill_broker(victim)
        assert cluster.leader("layer1", 0) != victim

        second_half = whsamp(items[2_500:], 500, rng=rng)
        produce_via_cluster(cluster, "layer1", second_half.batches)

        arrived = drain(cluster, "layer1")
        recovered = sum(b.estimated_count for b in arrived)
        assert recovered == pytest.approx(5_000.0)

    def test_unavailable_partition_surfaces_as_error(self):
        rng = random.Random(23)
        cluster = BrokerCluster(broker_count=2, replication_factor=1)
        cluster.create_topic("layer1", partitions=2)
        # Kill the single replica of one partition.
        victim = cluster.leader("layer1", 0)
        cluster.kill_broker(victim)
        result = whsamp([StreamItem("a", 1.0)] * 100, 10, rng=rng)
        with pytest.raises(BrokerError):
            for batch in result.batches:
                # partition_for is keyed; force partition 0 to hit the
                # dead replica deterministically.
                cluster.route("layer1", 0).produce(
                    "layer1", Record(key=batch.substream, value=batch), 0
                )

    def test_restart_rejoins_without_data_loss(self):
        cluster = BrokerCluster(broker_count=2, replication_factor=2)
        cluster.create_topic("layer1", partitions=1)
        leader = cluster.leader("layer1", 0)
        cluster.data_plane.produce(
            "layer1", Record(key="s", value="before"), 0
        )
        cluster.kill_broker(leader)
        cluster.data_plane.produce(
            "layer1", Record(key="s", value="during"), 0
        )
        cluster.restart_broker(leader)
        values = [r.value for r in cluster.data_plane.fetch("layer1", 0, 0)]
        assert values == ["before", "during"]
