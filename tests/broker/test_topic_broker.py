"""Unit tests for topics and the broker surface."""

import pytest

from repro.broker.broker import Broker
from repro.broker.records import Record
from repro.broker.topic import Topic
from repro.errors import (
    ConfigurationError,
    ConsumerGroupError,
    TopicExistsError,
    UnknownPartitionError,
    UnknownTopicError,
)


def rec(value, key=None):
    return Record(key=key, value=value)


class TestTopic:
    def test_keyed_records_stick_to_partition(self):
        topic = Topic("t", partitions=4)
        partitions = {topic.partition_for("substream-A") for _ in range(20)}
        assert len(partitions) == 1

    def test_different_keys_spread(self):
        topic = Topic("t", partitions=8)
        partitions = {topic.partition_for(f"key-{i}") for i in range(100)}
        assert len(partitions) > 1

    def test_unkeyed_round_robin(self):
        topic = Topic("t", partitions=3)
        assert [topic.partition_for(None) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_append_and_read(self):
        topic = Topic("t", partitions=2)
        partition, offset = topic.append(rec("hello", key="k"))
        out = topic.read(partition, offset)
        assert out[0].value == "hello"

    def test_unknown_partition(self):
        topic = Topic("t", partitions=2)
        with pytest.raises(UnknownPartitionError):
            topic.read(5, 0)

    def test_needs_positive_partitions(self):
        with pytest.raises(ConfigurationError):
            Topic("t", partitions=0)

    def test_end_offsets(self):
        topic = Topic("t", partitions=2)
        topic.append(rec("a"), partition=0)
        topic.append(rec("b"), partition=0)
        topic.append(rec("c"), partition=1)
        assert topic.end_offsets() == {0: 2, 1: 1}

    def test_total_records(self):
        topic = Topic("t", partitions=3)
        topic.append_batch([rec(i) for i in range(7)])
        assert topic.total_records == 7


class TestBrokerTopics:
    def test_create_and_duplicate(self):
        broker = Broker()
        broker.create_topic("t")
        with pytest.raises(TopicExistsError):
            broker.create_topic("t")

    def test_ensure_topic_idempotent(self):
        broker = Broker()
        first = broker.ensure_topic("t", 2)
        second = broker.ensure_topic("t", 5)
        assert first is second
        assert second.partition_count == 2

    def test_delete(self):
        broker = Broker()
        broker.create_topic("t")
        broker.delete_topic("t")
        with pytest.raises(UnknownTopicError):
            broker.topic("t")

    def test_unknown_topic_operations(self):
        broker = Broker()
        with pytest.raises(UnknownTopicError):
            broker.produce("missing", rec(1))
        with pytest.raises(UnknownTopicError):
            broker.delete_topic("missing")

    def test_topics_sorted(self):
        broker = Broker()
        broker.create_topic("zeta")
        broker.create_topic("alpha")
        assert broker.topics() == ["alpha", "zeta"]

    def test_produce_fetch_roundtrip(self):
        broker = Broker()
        broker.create_topic("t")
        partition, offset = broker.produce("t", rec({"x": 1}))
        out = broker.fetch("t", partition, offset)
        assert out[0].value == {"x": 1}


class TestConsumerGroups:
    def test_join_assigns_partitions(self):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        group = broker.join_group("g", "m1", ["t"])
        assert group.partitions_of("m1") == [("t", p) for p in range(4)]

    def test_rebalance_on_second_member(self):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        broker.join_group("g", "m1", ["t"])
        group = broker.join_group("g", "m2", ["t"])
        assigned = group.partitions_of("m1") + group.partitions_of("m2")
        assert sorted(assigned) == [("t", p) for p in range(4)]
        assert len(group.partitions_of("m1")) == 2

    def test_generation_bumps(self):
        broker = Broker()
        broker.create_topic("t")
        g1 = broker.join_group("g", "m1", ["t"]).generation
        g2 = broker.join_group("g", "m2", ["t"]).generation
        assert g2 > g1

    def test_leave_rebalances(self):
        broker = Broker()
        broker.create_topic("t", partitions=2)
        broker.join_group("g", "m1", ["t"])
        broker.join_group("g", "m2", ["t"])
        broker.leave_group("g", "m2")
        group = broker.group("g")
        assert group.partitions_of("m1") == [("t", 0), ("t", 1)]

    def test_leave_unknown_member(self):
        broker = Broker()
        broker.create_topic("t")
        broker.join_group("g", "m1", ["t"])
        with pytest.raises(ConsumerGroupError):
            broker.leave_group("g", "ghost")

    def test_commit_and_committed(self):
        broker = Broker()
        broker.create_topic("t")
        broker.join_group("g", "m1", ["t"])
        assert broker.committed("g", "t", 0) is None
        broker.commit("g", "t", 0, 42)
        assert broker.committed("g", "t", 0) == 42

    def test_unknown_group(self):
        broker = Broker()
        with pytest.raises(ConsumerGroupError):
            broker.group("missing")
