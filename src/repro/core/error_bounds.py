"""Error estimation with rigorous bounds (§III-D of the paper).

Because every sub-stream is sampled independently and items within a
sub-stream are selected uniformly at random across nodes, the paper
applies classic random-sampling theory (finite population correction +
central limit theorem):

* Eq. 11 — variance of the per-stratum SUM estimate::

      Var(SUM_i) = c_ib * (c_ib - zeta) * s_i^2 / zeta

  with ``c_ib`` the (recovered) true stratum size, ``zeta`` the number
  of physically sampled items at the root and ``s_i^2`` their sample
  variance (Eq. 12).
* Eq. 10 — the variance of the overall SUM is the sum over strata.
* Eq. 14 — variance of the overall MEAN via stratum proportions
  ``phi_i = c_ib / sum c_ib``.
* The error bound follows the "68-95-99.7" rule: the result lies within
  one/two/three standard deviations with 68 % / 95 % / 99.7 %
  probability. Arbitrary confidence levels use the normal quantile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Mapping, Sequence

from repro.core.estimator import SubstreamEstimate, ThetaStore
from repro.errors import EstimationError

try:  # pragma: no cover - trivially environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ApproximateResult",
    "sample_variance",
    "substream_sum_variance",
    "sum_variance",
    "mean_variance",
    "confidence_multiplier",
    "estimate_sum_with_error",
    "estimate_mean_with_error",
]

#: The three canonical confidence levels of the 68-95-99.7 rule, mapped
#: to their standard-deviation multipliers.
SIGMA_RULE: dict[float, float] = {0.68: 1.0, 0.95: 2.0, 0.997: 3.0}


@dataclass(frozen=True, slots=True)
class ApproximateResult:
    """An approximate query answer in the paper's ``result ± error`` form.

    Attributes:
        value: The point estimate (SUM* or MEAN*).
        error: Half-width of the confidence interval at ``confidence``.
        confidence: The confidence level the half-width corresponds to.
        variance: The estimated variance behind the bound.
        sampled_items: Number of physical items the estimate used.
    """

    value: float
    error: float
    confidence: float
    variance: float
    sampled_items: int

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval."""
        return self.value - self.error

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval."""
        return self.value + self.error

    def contains(self, exact: float) -> bool:
        """Whether the interval covers a given exact value."""
        return self.lower <= exact <= self.upper

    def relative_error(self) -> float:
        """Half-width as a fraction of the point estimate."""
        if self.value == 0:
            raise EstimationError("relative error undefined for a zero estimate")
        return abs(self.error / self.value)

    def __str__(self) -> str:
        return f"{self.value:.6g} ± {self.error:.3g} ({self.confidence:.1%})"


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased sample variance ``s^2`` (Eq. 12); 0.0 for n < 2.

    Accepts either a plain sequence (the object plane, summed exactly
    as the seed implementation did) or a contiguous numpy value column
    (the columnar plane, reduced with one vector op).
    """
    n = len(values)
    if n < 2:
        return 0.0
    if _np is not None and isinstance(values, _np.ndarray):
        return float(values.var(ddof=1))
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / (n - 1)


def substream_sum_variance(estimate: SubstreamEstimate) -> float:
    """Eq. 11 for one stratum.

    The finite population correction ``(c_ib - zeta)`` is clamped at
    zero: sampling noise can make the recovered ``c_ib`` fall slightly
    below the physical sample size, and a negative variance is
    meaningless.
    """
    zeta = estimate.sampled_count
    if zeta == 0:
        raise EstimationError(
            f"sub-stream {estimate.substream!r} has no sampled items"
        )
    c_ib = estimate.estimated_count
    fpc = max(0.0, c_ib - zeta)
    s2 = sample_variance(estimate.sampled_values)
    return c_ib * fpc * s2 / zeta


def sum_variance(estimates: Mapping[str, SubstreamEstimate]) -> float:
    """Eq. 10: total variance is the sum of independent stratum variances."""
    return sum(substream_sum_variance(est) for est in estimates.values())


def mean_variance(estimates: Mapping[str, SubstreamEstimate]) -> float:
    """Eq. 14: variance of the stratified MEAN estimator."""
    total_count = sum(est.estimated_count for est in estimates.values())
    if total_count <= 0:
        raise EstimationError("total estimated count must be positive")
    variance = 0.0
    for est in estimates.values():
        zeta = est.sampled_count
        if zeta == 0:
            raise EstimationError(
                f"sub-stream {est.substream!r} has no sampled items"
            )
        c_ib = est.estimated_count
        if c_ib <= 0:
            continue
        phi = c_ib / total_count
        s2 = sample_variance(est.sampled_values)
        fpc = max(0.0, (c_ib - zeta) / c_ib)
        variance += phi * phi * (s2 / zeta) * fpc
    return variance


def confidence_multiplier(confidence: float) -> float:
    """Standard-deviation multiplier for a two-sided confidence level.

    The three 68-95-99.7 levels return exactly 1, 2 and 3 (as the paper
    specifies); any other level in (0, 1) uses the exact normal
    quantile.
    """
    if confidence in SIGMA_RULE:
        return SIGMA_RULE[confidence]
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    # Wichura's AS241 via the stdlib — identical to scipy's norm.ppf
    # to ~1e-15, and keeps the base install dependency-free.
    return float(NormalDist().inv_cdf(0.5 + confidence / 2.0))


def estimate_sum_with_error(
    theta: ThetaStore, confidence: float = 0.95
) -> ApproximateResult:
    """Approximate SUM* with its error bound (lines 22-25, Algorithm 2)."""
    estimates = theta.per_substream()
    if not estimates:
        raise EstimationError("cannot estimate from an empty Theta store")
    value = sum(est.estimated_sum for est in estimates.values())
    variance = sum_variance(estimates)
    sampled = sum(est.sampled_count for est in estimates.values())
    error = confidence_multiplier(confidence) * math.sqrt(variance)
    return ApproximateResult(value, error, confidence, variance, sampled)


def estimate_mean_with_error(
    theta: ThetaStore, confidence: float = 0.95
) -> ApproximateResult:
    """Approximate MEAN* with its error bound."""
    estimates = theta.per_substream()
    if not estimates:
        raise EstimationError("cannot estimate from an empty Theta store")
    total_count = sum(est.estimated_count for est in estimates.values())
    if total_count == 0:
        raise EstimationError("all sub-streams have zero estimated count")
    value = sum(est.estimated_sum for est in estimates.values()) / total_count
    variance = mean_variance(estimates)
    sampled = sum(est.sampled_count for est in estimates.values())
    error = confidence_multiplier(confidence) * math.sqrt(variance)
    return ApproximateResult(value, error, confidence, variance, sampled)
