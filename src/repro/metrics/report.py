"""Plain-text experiment report tables.

Every experiment prints its results as an aligned table with the same
rows/series the paper's figure reports, so a run of the benchmark
harness reads like the evaluation section.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

__all__ = ["Table", "format_bytes", "format_rate", "format_percent", "format_ratio"]


def format_bytes(count: float) -> str:
    """Render a byte count with a binary-prefix unit (``1.5 KiB`` style)."""
    magnitude = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if magnitude < 1024 or unit == "GiB":
            if unit == "B":
                return f"{magnitude:.0f} B"
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024
    raise AssertionError("unreachable")  # pragma: no cover


def format_percent(value: float, digits: int = 4) -> str:
    """Render a percentage with fixed precision."""
    return f"{value:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    """Render a multiplier/utilisation ratio (``1.50x`` style)."""
    return f"{value:.{digits}f}x"


def format_rate(items_per_second: float) -> str:
    """Render a throughput in the paper's items/s style."""
    if items_per_second >= 1000:
        return f"{items_per_second / 1000:.1f}k items/s"
    return f"{items_per_second:.0f} items/s"


class Table:
    """A minimal aligned-column table builder."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ReproError("a table needs at least one column")
        self.title = title
        self._columns = list(columns)
        self._rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row (cells are stringified)."""
        if len(cells) != len(self._columns):
            raise ReproError(
                f"expected {len(self._columns)} cells, got {len(cells)}"
            )
        self._rows.append([str(cell) for cell in cells])

    @property
    def row_count(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned text."""
        widths = [len(col) for col in self._columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(self._columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
