"""Figure 6 — throughput vs sampling fraction.

The paper's result: at a saturating input rate, ApproxIoT and SRS
sustain nearly identical throughput, both scaling roughly with
1/fraction over native execution (1.3×–9.9× for fractions 80 %–10 %),
and matching native at the 100 % fraction (low sampling overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    base_config,
    saturating_placement,
    gaussian_generators,
    uniform_schedule,
)
from repro.metrics.report import Table, format_rate
from repro.system.config import ExecutionMode
from repro.system.deployment import DeploymentSimulator

__all__ = ["Fig6Point", "run_fig6", "main"]

#: Fig. 6's x-axis includes the 100 % fraction.
FIG6_FRACTIONS: list[float] = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


@dataclass(frozen=True, slots=True)
class Fig6Point:
    """Throughput of the three systems at one sampling fraction."""

    fraction: float
    approxiot: float
    srs: float
    native: float

    @property
    def speedup_over_native(self) -> float:
        """ApproxIoT's throughput gain over native execution."""
        if self.native == 0:
            return float("inf")
        return self.approxiot / self.native


def run_fig6(
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    n_windows: int = 12,
) -> list[Fig6Point]:
    """Reproduce Fig. 6 at a saturating offered load."""
    fractions = fractions if fractions is not None else FIG6_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = gaussian_generators()
    schedule = uniform_schedule(scale.rate_scale)
    placement = saturating_placement(schedule)

    def throughput(mode: str, fraction: float) -> float:
        config = base_config(fraction, scale, mode=mode, placement=placement)
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=n_windows
        )
        return simulator.run().throughput_items_per_second

    native = throughput(ExecutionMode.NATIVE, 1.0)
    points: list[Fig6Point] = []
    for fraction in fractions:
        points.append(
            Fig6Point(
                fraction=fraction,
                approxiot=throughput(ExecutionMode.APPROXIOT, fraction),
                srs=throughput(ExecutionMode.SRS, fraction),
                native=native,
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print the Fig. 6 table; return the text."""
    table = Table(
        "Fig. 6: throughput vs sampling fraction (saturating input)",
        ["fraction", "ApproxIoT", "SRS", "Native", "speedup"],
    )
    for point in run_fig6(scale=scale):
        table.add_row(
            f"{point.fraction:.0%}",
            format_rate(point.approxiot),
            format_rate(point.srs),
            format_rate(point.native),
            f"{point.speedup_over_native:.1f}x",
        )
    text = table.render()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
