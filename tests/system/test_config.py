"""Unit tests for the frozen pipeline configuration."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.system.config import TRANSPORTS, ExecutionMode, PipelineConfig


class TestImmutability:
    def test_config_is_frozen(self):
        config = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 7
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.sampling_fraction = 0.5

    def test_with_seed(self):
        config = PipelineConfig(seed=1)
        derived = config.with_seed(2)
        assert derived.seed == 2
        assert config.seed == 1
        assert derived.sampling_fraction == config.sampling_fraction

    def test_with_transport(self):
        config = PipelineConfig()
        assert config.transport == "auto"
        derived = config.with_transport("broker")
        assert derived.transport == "broker"
        assert config.transport == "auto"

    def test_with_mode_chainable(self):
        config = (
            PipelineConfig()
            .with_mode(ExecutionMode.SRS)
            .with_fraction(0.5)
            .with_backend("python")
            .with_seed(9)
        )
        assert config.mode == ExecutionMode.SRS
        assert config.sampling_fraction == 0.5
        assert config.backend == "python"
        assert config.seed == 9


class TestTransportValidation:
    def test_all_declared_transports_accepted(self):
        for transport in TRANSPORTS:
            assert PipelineConfig(transport=transport).transport == transport

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(transport="carrier-pigeon")
