"""Per-window budget controllers — §IV-B's refinement loop, in the run.

The paper sketches a feedback mechanism: the root observes each
window's reported error bound and refines the sampling parameters for
subsequent windows. :mod:`repro.system.feedback` reproduces the
paper's *between-runs* form (a fresh pipeline per window at a new
global fraction); this module closes the loop **inside** one running
engine, where sampler and Theta state persist across windows:

* ``static`` — no feedback. The engine's classic behaviour, bit for
  bit: the controller only reports the assembly-time root budget.
* ``adaptive_fraction`` — the
  :class:`~repro.core.cost.AdaptiveErrorBudget` multiplicative
  controller driving the *global* sampling fraction window to window.
  Every sampling node's budget is re-derived from the live fraction
  before each window opens.
* ``variance_aware`` — per-sub-stream Neyman reallocation at a fixed
  total budget. After each window the controller reads the realized
  per-sub-stream variance and estimated counts out of the root's
  Theta store, turns them into standard-deviation tilt factors
  (:func:`~repro.core.cost.neyman_factors`), and re-runs the
  ``getSampleSize`` split for the next window through
  :func:`~repro.core.stratified.allocate_weighted` — budget flows
  toward the high-variance / bursting sub-streams that dominate the
  Eq. 10-12 stratified variance, without spending one extra slot.

Controllers see the world only through :class:`WindowObservation`, a
small picklable value built once per window from the merged root Theta
(:func:`observe_window`). That is what makes sharded execution
coordination-free: the parent merges per-shard Theta exactly as the
root estimator does, builds one observation, and broadcasts it to
every shard, so each shard's controller replays the identical decision
the in-process controller would have made. A ``None`` observation
(empty window, blackout) always means *hold* — adapting on silence
would tell the controller the estimate was perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.core.cost import AdaptiveErrorBudget, neyman_factors
from repro.core.error_bounds import ApproximateResult, sample_variance
from repro.core.estimator import ThetaStore
from repro.core.stratified import allocate_weighted
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # circular at runtime: the engine lazily imports us
    from repro.engine.pipeline import Pipeline
    from repro.system.config import PipelineConfig

__all__ = [
    "ADAPTIVE_TARGET_RELATIVE_ERROR",
    "AdaptiveFractionController",
    "BudgetController",
    "StaticBudgetController",
    "SubstreamObservation",
    "VarianceAwareController",
    "WindowObservation",
    "make_budget_controller",
    "observe_window",
]

#: Relative-error target the in-run ``adaptive_fraction`` controller
#: steers toward (the analyst knob of §IV-B; callers needing a custom
#: target construct :class:`AdaptiveFractionController` directly).
ADAPTIVE_TARGET_RELATIVE_ERROR = 0.05


@dataclass(frozen=True, slots=True)
class SubstreamObservation:
    """One sub-stream's realized state at the root after a window.

    Attributes:
        substream: The stratum identifier.
        estimated_count: Arrival count recovered through Eq. 8.
        sampled_count: Physical items for this stratum at the root.
        variance: Sample variance of the stratum's sampled values
            (0 when fewer than two values reached the root).
    """

    substream: str
    estimated_count: float
    sampled_count: int
    variance: float


@dataclass(frozen=True, slots=True)
class WindowObservation:
    """Everything a budget controller may learn from one window.

    A plain frozen value — picklable and cheap — because in sharded
    runs it crosses the process boundary: the parent builds it from
    the *merged* root Theta and broadcasts it, so every shard adapts
    on the same global evidence.

    Attributes:
        window: 0-based window slot the observation was taken from.
        relative_bound: The reported §III-D error bound relative to
            the estimate (``error / |value|``), or ``None`` when the
            estimate was zero and no relative bound exists.
        substreams: Per-sub-stream realized state, sorted by name.
    """

    window: int
    relative_bound: float | None
    substreams: tuple[SubstreamObservation, ...]


def observe_window(
    window: int, theta: ThetaStore, approx: ApproximateResult
) -> WindowObservation:
    """Distill one window's root state into a controller observation.

    Reads the merged ``(W_out, I)`` pairs exactly once: per-sub-stream
    estimated counts via Eq. 8 and the realized sample variance of each
    stratum's values — the two inputs Neyman allocation needs — plus
    the reported relative bound the fraction controller steers on.
    """
    per_substream = theta.per_substream()
    substreams = tuple(
        SubstreamObservation(
            substream=name,
            estimated_count=estimate.estimated_count,
            sampled_count=estimate.sampled_count,
            variance=sample_variance(estimate.sampled_values),
        )
        for name, estimate in sorted(per_substream.items())
    )
    relative_bound = (
        approx.relative_error() if approx.value != 0 else None
    )
    return WindowObservation(
        window=window, relative_bound=relative_bound, substreams=substreams
    )


class BudgetController(Protocol):
    """The per-window feedback seam of the engine.

    ``begin_window`` runs before a window opens and applies the
    controller's current decision to the live pipeline (budgets,
    allocation override), returning the root budget in effect for the
    window's quality trace. ``observe`` runs after the window closes
    with the realized root state (``None`` for an empty window, which
    every controller treats as *hold*). ``wants_observations`` lets
    the engine skip building observations entirely for controllers
    that never look at them.
    """

    name: str
    wants_observations: bool

    def begin_window(self, pipeline: "Pipeline") -> int:
        """Apply the current decision; return the root budget in effect."""
        ...  # pragma: no cover - protocol

    def observe(self, observation: WindowObservation | None) -> None:
        """Feed back one window's realized root state (``None`` = hold)."""
        ...  # pragma: no cover - protocol


def _root_budget(pipeline: "Pipeline") -> int:
    """The root node's per-interval budget under the live decision."""
    return pipeline.budget(pipeline.tree.root.name)


class StaticBudgetController:
    """No feedback: assembly-time budgets, config allocation policy.

    The engine constructed with this controller is bit-for-bit the
    pre-controller engine — ``begin_window`` only *reads* the root
    budget and ``observe`` is never even fed (``wants_observations``
    is false, so no observation is built).
    """

    name = "static"
    wants_observations = False

    def begin_window(self, pipeline: "Pipeline") -> int:
        """Report the assembly-time root budget; change nothing."""
        return _root_budget(pipeline)

    def observe(self, observation: WindowObservation | None) -> None:
        """Ignore feedback (the static contract)."""


class AdaptiveFractionController:
    """§IV-B's global-fraction feedback, applied between windows.

    Wraps an :class:`~repro.core.cost.AdaptiveErrorBudget`: after each
    window the reported relative bound nudges the fraction up (bound
    above target) or down (comfortably below), and before the next
    window every sampling node's budget is re-derived from the live
    fraction — same cost function as pipeline assembly, so a fraction
    equal to the config's reproduces the assembly budgets exactly.
    Zero-estimate windows carry no relative bound and hold the
    fraction.
    """

    name = "adaptive_fraction"
    wants_observations = True

    def __init__(self, budget: AdaptiveErrorBudget) -> None:
        self._budget = budget
        self._applied_fraction: float | None = None

    @property
    def budget(self) -> AdaptiveErrorBudget:
        """The wrapped multiplicative fraction controller."""
        return self._budget

    @property
    def fraction(self) -> float:
        """The sampling fraction the next window will run at."""
        return self._budget.fraction

    def begin_window(self, pipeline: "Pipeline") -> int:
        """Re-derive every node budget from the live fraction."""
        fraction = self._budget.fraction
        if fraction != self._applied_fraction:
            pipeline.budgets = pipeline.budgets_for_fraction(fraction)
            self._applied_fraction = fraction
        return _root_budget(pipeline)

    def observe(self, observation: WindowObservation | None) -> None:
        """Steer the fraction on the reported relative bound (if any)."""
        if observation is None or observation.relative_bound is None:
            return
        self._budget.observe(observation.relative_bound)


class VarianceAwareController:
    """Neyman reallocation of a *fixed* total budget across sub-streams.

    Every window's total budget is exactly the static controller's —
    this controller never buys slots, it moves them. After a window it
    converts the realized per-sub-stream variances into
    standard-deviation factors (:func:`~repro.core.cost.neyman_factors`,
    clamped to ``[1/max_tilt, max_tilt]``); before the next window it
    overrides the pipeline's ``getSampleSize`` policy with a weighted
    fair fill whose stratum weights are ``count * factor`` — live
    arrival counts (bursts register instantly) times last window's
    deviation tilt, which is Neyman's ``c_i * s_i`` with the deviation
    one window stale. When the observed tilt is flat (all deviations
    within ``min_dispersion`` of each other) the override is dropped
    and the window runs the config policy bit-for-bit.
    """

    name = "variance_aware"
    wants_observations = True

    def __init__(
        self, *, max_tilt: float = 32.0, min_dispersion: float = 1.05
    ) -> None:
        if max_tilt <= 1.0:
            raise ConfigurationError(
                f"max_tilt must exceed 1, got {max_tilt}"
            )
        if min_dispersion < 1.0:
            raise ConfigurationError(
                f"min_dispersion must be >= 1, got {min_dispersion}"
            )
        self._max_tilt = float(max_tilt)
        self._min_dispersion = float(min_dispersion)
        self._factors: dict[str, float] | None = None

    @property
    def factors(self) -> dict[str, float] | None:
        """The live deviation tilt (``None`` while flat / unobserved)."""
        return dict(self._factors) if self._factors is not None else None

    def begin_window(self, pipeline: "Pipeline") -> int:
        """Install (or drop) the weighted ``getSampleSize`` override."""
        factors = self._factors
        if factors is None:
            pipeline.allocation_override = None
        else:
            pipeline.allocation_override = self._weighted_policy(factors)
        return _root_budget(pipeline)

    def _weighted_policy(self, factors: dict[str, float]):
        """An AllocationPolicy closure weighting strata by count*factor.

        ``whsamp_batches`` allocates over ``(substream, W_in)`` group
        keys, so the closure maps every key back to its sub-stream's
        factor; unseen sub-streams (newly appearing strata) run at the
        neutral factor 1.
        """

        def allocate(sample_size, stratum_counts):
            weights = {}
            for key, count in stratum_counts.items():
                substream = key[0] if isinstance(key, tuple) else key
                weights[key] = count * factors.get(substream, 1.0)
            return allocate_weighted(sample_size, stratum_counts, weights)

        return allocate

    def observe(self, observation: WindowObservation | None) -> None:
        """Refresh the deviation tilt from the window's realized state."""
        if observation is None or not observation.substreams:
            return
        variances = {
            sub.substream: sub.variance for sub in observation.substreams
        }
        factors = {
            substream: min(
                self._max_tilt, max(1.0 / self._max_tilt, factor)
            )
            for substream, factor in neyman_factors(variances).items()
        }
        spread = max(factors.values()) / min(factors.values())
        self._factors = None if spread < self._min_dispersion else factors


#: Controller names accepted by :func:`make_budget_controller` (and by
#: :attr:`repro.system.config.PipelineConfig.budget_controller`).
_CONTROLLERS = ("static", "adaptive_fraction", "variance_aware")


def make_budget_controller(
    name: str, config: "PipelineConfig"
) -> BudgetController:
    """Construct the controller a config names, seeded from its knobs.

    ``adaptive_fraction`` starts at the config's sampling fraction and
    steers toward :data:`ADAPTIVE_TARGET_RELATIVE_ERROR`; the other
    controllers take no parameters from the config. Unknown names fail
    loudly (config validation normally catches them first).
    """
    if name == "static":
        return StaticBudgetController()
    if name == "adaptive_fraction":
        return AdaptiveFractionController(
            AdaptiveErrorBudget(
                ADAPTIVE_TARGET_RELATIVE_ERROR,
                initial_fraction=config.sampling_fraction,
                min_fraction=min(0.01, config.sampling_fraction),
            )
        )
    if name == "variance_aware":
        return VarianceAwareController()
    raise ConfigurationError(
        f"unknown budget controller {name!r}; choose from {_CONTROLLERS}"
    )
