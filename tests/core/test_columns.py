"""Unit tests for the columnar (SoA) data-plane primitives."""

import random

import pytest

from repro.core.columns import (
    ColumnarBatch,
    concat_value_chunks,
    group_payload,
    masked_sum,
    payload_timestamps,
    value_column,
)
from repro.core.fastpath import reservoir_sample_indices
from repro.core.items import StreamItem, WeightedBatch, group_by_substream
from repro.core.reservoir import ReservoirSampler
from repro.errors import SamplingError


def items_fixture():
    return [
        StreamItem("A", 1.0, 0.1, 100),
        StreamItem("A", 2.0, 0.2, 100),
        StreamItem("B", 3.0, 0.3, 64),
        StreamItem("A", 4.0, 0.4, 100),
    ]


class TestConstruction:
    def test_from_items_roundtrip(self):
        items = items_fixture()
        batch = ColumnarBatch.from_items(items)
        assert len(batch) == 4
        assert batch.to_items() == items

    def test_uniform_substream_detected(self):
        batch = ColumnarBatch.from_items(
            [StreamItem("A", 1.0), StreamItem("A", 2.0)]
        )
        assert batch.uniform_substream == "A"
        mixed = ColumnarBatch.from_items(items_fixture())
        assert mixed.uniform_substream is None
        assert mixed.substream_ids() == ["A", "A", "B", "A"]

    def test_single(self):
        batch = ColumnarBatch.single("X", [1.0, 2.0, 3.0], 5.0, 42)
        assert batch.uniform_substream == "X"
        assert list(batch.timestamps) == [5.0, 5.0, 5.0]
        assert batch.total_bytes == 3 * 42

    def test_empty(self):
        batch = ColumnarBatch.empty()
        assert len(batch) == 0
        assert not batch
        assert batch.to_items() == []
        assert batch.group_by_substream() == {}

    def test_length_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            ColumnarBatch("A", value_column([1.0]), value_column([1.0, 2.0]))
        with pytest.raises(SamplingError):
            ColumnarBatch(
                ["A"], value_column([1.0, 2.0]), value_column([1.0, 2.0])
            )
        with pytest.raises(SamplingError):
            ColumnarBatch(
                "A", value_column([1.0, 2.0]), value_column([1.0, 2.0]),
                sizes=[10],
            )


class TestAggregation:
    def test_value_sum(self):
        batch = ColumnarBatch.from_items(items_fixture())
        assert batch.value_sum() == pytest.approx(10.0)

    def test_total_bytes_uniform_and_mixed(self):
        uniform = ColumnarBatch.single("A", [1.0, 2.0], size_bytes=100)
        assert uniform.total_bytes == 200
        mixed = ColumnarBatch.from_items(items_fixture())
        assert mixed.total_bytes == 100 + 100 + 64 + 100

    def test_masked_sum(self):
        column = value_column([1.0, 2.0, 3.0, 4.0])
        assert masked_sum(column, [True, False, True, False]) == 4.0

    def test_concat_value_chunks(self):
        chunk = [1.0, 2.0]
        assert concat_value_chunks([chunk]) is chunk
        merged = concat_value_chunks([value_column([1.0]), value_column([2.0])])
        assert list(merged) == [1.0, 2.0]


class TestTransformation:
    def test_select_preserves_index_order(self):
        batch = ColumnarBatch.from_items(items_fixture())
        picked = batch.select([2, 0])
        assert picked.to_items() == [
            StreamItem("B", 3.0, 0.3, 64),
            StreamItem("A", 1.0, 0.1, 100),
        ]

    def test_compress(self):
        batch = ColumnarBatch.from_items(items_fixture())
        kept = batch.compress([False, True, True, False])
        assert [item.value for item in kept] == [2.0, 3.0]
        with pytest.raises(SamplingError):
            batch.compress([True])

    def test_concat(self):
        a = ColumnarBatch.single("A", [1.0, 2.0])
        b = ColumnarBatch.single("A", [3.0])
        merged = ColumnarBatch.concat([a, b])
        assert merged.uniform_substream == "A"
        assert list(merged.values) == [1.0, 2.0, 3.0]
        mixed = ColumnarBatch.concat([a, ColumnarBatch.single("B", [9.0])])
        assert mixed.uniform_substream is None
        assert mixed.substream_ids() == ["A", "A", "B"]

    def test_spread_matches_object_plane_bitwise(self):
        n, start, seconds = 7, 5.0, 2.0
        batch = ColumnarBatch.single("A", [0.0] * n, start).with_spread_timestamps(
            start, seconds
        )
        expected = [start + seconds * (i + 1) / (n + 1) for i in range(n)]
        assert list(batch.timestamps) == expected

    def test_group_by_substream_matches_object_grouping(self):
        items = items_fixture()
        columnar = ColumnarBatch.from_items(items).group_by_substream()
        objects = group_by_substream(items)
        assert list(columnar) == list(objects)  # first-occurrence order
        for key in objects:
            assert columnar[key].to_items() == objects[key]

    def test_group_by_uniform_is_zero_copy(self):
        batch = ColumnarBatch.single("A", [1.0, 2.0])
        assert batch.group_by_substream()["A"] is batch


class TestPayloadDispatch:
    def test_group_payload(self):
        items = items_fixture()
        assert list(group_payload(items)) == ["A", "B"]
        assert list(group_payload(ColumnarBatch.from_items(items))) == ["A", "B"]

    def test_payload_timestamps(self):
        items = items_fixture()
        assert list(payload_timestamps(items)) == [0.1, 0.2, 0.3, 0.4]
        columnar = ColumnarBatch.from_items(items)
        assert list(payload_timestamps(columnar)) == [0.1, 0.2, 0.3, 0.4]

    def test_weighted_batch_dispatch(self):
        items = [StreamItem("A", 2.0, size_bytes=10) for _ in range(4)]
        objects = WeightedBatch("A", 3.0, items)
        columnar = WeightedBatch("A", 3.0, ColumnarBatch.from_items(items))
        assert len(columnar) == len(objects) == 4
        assert columnar.estimated_sum == pytest.approx(objects.estimated_sum)
        assert columnar.estimated_count == objects.estimated_count
        assert columnar.total_bytes == objects.total_bytes == 40
        assert list(columnar) == items


class TestReservoirIndexKernel:
    def test_matches_object_reservoir_entropy(self):
        """Index-space Algorithm R keeps exactly the records (in slot
        order) that ``ReservoirSampler`` would, for the same seed."""
        items = [StreamItem("A", float(i)) for i in range(100)]
        sampler = ReservoirSampler(10, random.Random(7))
        sampler.extend(items)
        indices = reservoir_sample_indices(100, 10, random.Random(7))
        assert [items[i] for i in indices] == sampler.sample()

    def test_small_population_passthrough(self):
        rng = random.Random(1)
        assert reservoir_sample_indices(3, 10, rng) == [0, 1, 2]
        # No entropy consumed below capacity.
        assert rng.random() == random.Random(1).random()

    def test_validation(self):
        with pytest.raises(SamplingError):
            reservoir_sample_indices(10, 0, random.Random(0))
        with pytest.raises(SamplingError):
            reservoir_sample_indices(-1, 5, random.Random(0))
