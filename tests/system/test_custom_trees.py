"""Robustness: the runners work on tree shapes beyond the paper's.

The algorithm is topology-agnostic (no cross-node coordination), so a
2-layer star, a deep 5-layer chain and a wide fan-in must all produce
unbiased estimates and preserve the count invariant.
"""

import pytest

from repro.simnet.netem import NetemConfig
from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.deployment import DeploymentSimulator
from repro.system.statistical import StatisticalRunner
from repro.topology.placement import PlacementSpec
from repro.topology.tree import LogicalTree
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "shape", {"A": 400.0, "B": 400.0, "C": 400.0, "D": 400.0}
)


def spec_for(tree: LogicalTree) -> PlacementSpec:
    return PlacementSpec(
        layer_service_rates=[1e12] + [5_000.0] * (tree.depth - 1),
        uplink_configs=[
            NetemConfig.from_rtt(20.0, 1e9) for _ in range(tree.depth - 1)
        ],
    )


@pytest.mark.parametrize(
    "layers",
    [
        [4, 1],             # star: sources straight into the root
        [8, 4, 2, 1],       # the paper's tree
        [16, 8, 4, 2, 1],   # deeper chain
        [12, 2, 1],         # wide fan-in
    ],
    ids=["star", "paper", "deep", "wide"],
)
class TestTreeShapes:
    def test_statistical_runner_unbiased(self, layers):
        tree = LogicalTree(layers)
        config = PipelineConfig(
            sampling_fraction=0.2, tree=tree, placement=spec_for(tree), seed=31
        )
        runner = StatisticalRunner(config, SCHEDULE, GENS)
        outcome = runner.run(5)
        assert outcome.mean_approxiot_loss < 2.0
        assert outcome.realized_fraction == pytest.approx(0.2, rel=0.3)

    def test_deployment_completes(self, layers):
        tree = LogicalTree(layers)
        config = PipelineConfig(
            sampling_fraction=0.2,
            tree=tree,
            placement=spec_for(tree),
            mode=ExecutionMode.APPROXIOT,
            seed=32,
        )
        simulator = DeploymentSimulator(config, SCHEDULE, GENS, n_windows=4)
        report = simulator.run()
        assert report.items_at_root > 0
        assert len(report.boundary_bytes) == tree.depth - 1


class TestDegenerateShapes:
    def test_more_substreams_than_sources_rejected(self):
        tree = LogicalTree([2, 1])
        config = PipelineConfig(tree=tree, placement=spec_for(tree))
        schedule = RateSchedule(
            "many", {name: 100.0 for name in "ABCDEFG"}
        )
        gens = {name: GENS["A"] for name in "ABCDEFG"}
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            StatisticalRunner(config, schedule, gens)

    def test_single_substream_single_source_pair(self):
        tree = LogicalTree([1, 1])
        config = PipelineConfig(
            sampling_fraction=0.5, tree=tree, placement=spec_for(tree), seed=33
        )
        schedule = RateSchedule("solo", {"A": 500.0})
        runner = StatisticalRunner(config, schedule, {"A": GENS["A"]})
        outcome = runner.run(3)
        assert outcome.mean_approxiot_loss < 5.0
