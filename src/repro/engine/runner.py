"""The windowed run loop — one loop, three strategies, any transport.

Per window, sources emit batches which traverse the logical tree
bottom-up over the configured :class:`~repro.engine.transport.Transport`.
What each sampling node does with its interval inbox is the *strategy*:

* ``approxiot`` — weighted hierarchical sampling (Algorithm 1) with the
  node's local budget; the root accumulates ``(W_out, I)`` pairs in
  Theta and estimates SUM with error bounds.
* ``srs`` — coin-flip sampling at the first edge layer, pass-through
  above, Horvitz-Thompson scaling at the root (the paper's baseline).
* ``native`` — everything forwarded unsampled; the root's sum is the
  ground truth.

:class:`EngineRunner` runs all three strategies over the *same* emitted
items each window, so accuracy-loss comparisons are apples-to-apples —
this is the engine behind Figs. 5, 10 and 11(a), and the deployment
simulator reuses its per-interval sampling step for Figs. 6-9, 11(b).

With a bound :class:`~repro.scenarios.engine.ScenarioEngine` the same
loop runs *dynamic* workloads: before each window the runner applies
the scenario's compiled state — effective source rates (bursts, skew
drift), offline nodes (churn; batches re-parent to the nearest live
ancestor) and degraded uplinks (seeded batch loss, straggler delays
that deliver whole windows late). Scenario state is a pure function of
the window index, so seeded scenario runs stay deterministic on every
transport, data plane and worker-shard count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.columns import ColumnarBatch, group_payload, masked_sum
from repro.core.error_bounds import ApproximateResult, estimate_sum_with_error
from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.core.srs import CoinFlipSampler
from repro.core.whs import WHSampResult, whsamp_batches
from repro.engine.pipeline import Pipeline
from repro.engine.transport import Transport
from repro.errors import PipelineError

if TYPE_CHECKING:  # import cycle is only structural: scenarios are data
    from repro.scenarios.engine import ScenarioEngine, WindowState

__all__ = [
    "WindowOutcome",
    "RunOutcome",
    "ApproxIoTWindow",
    "EngineRunner",
    "accuracy_loss",
    "sample_interval",
]


def accuracy_loss(approx: float, exact: float) -> float:
    """The paper's accuracy metric: ``|approx - exact| / exact`` (in %)."""
    if exact == 0:
        raise PipelineError("accuracy loss undefined for a zero exact value")
    return 100.0 * abs(approx - exact) / abs(exact)


@dataclass(frozen=True, slots=True)
class WindowOutcome:
    """Per-window results across the three systems.

    Attributes:
        window_index: Sequence number of the window.
        exact_sum: Ground-truth sum over every emitted item.
        approx_sum: ApproxIoT's estimate with error bounds.
        srs_sum: The SRS baseline's Horvitz-Thompson estimate.
        items_emitted: Ground-truth item count for the window.
        items_sampled: Items physically reaching the root (ApproxIoT).
        items_dropped: Items destroyed on degraded links this window
            (0 outside scenario runs — healthy links drop nothing).
        sample_budget: The root's per-interval sample budget in effect
            for this window — the budget controller's live decision
            (0 only in legacy constructions that predate controllers).
        shards_lost: Worker shards missing from this window's merge
            (non-zero only in sharded runs degrading after shard loss
            under ``on_shard_loss="degrade"``). The lost shards'
            expected items are counted into ``items_dropped`` and the
            error bound is recomputed from the surviving Theta — the
            estimate stays honest about what it no longer covers.
    """

    window_index: int
    exact_sum: float
    approx_sum: ApproximateResult
    srs_sum: float
    items_emitted: int
    items_sampled: int
    items_dropped: int = 0
    sample_budget: int = 0
    shards_lost: int = 0

    @property
    def approxiot_loss(self) -> float:
        """ApproxIoT accuracy loss (%) for this window."""
        return accuracy_loss(self.approx_sum.value, self.exact_sum)

    @property
    def srs_loss(self) -> float:
        """SRS accuracy loss (%) for this window."""
        return accuracy_loss(self.srs_sum, self.exact_sum)


@dataclass
class RunOutcome:
    """All windows of one run plus aggregate accuracy."""

    windows: list[WindowOutcome] = field(default_factory=list)

    @property
    def mean_approxiot_loss(self) -> float:
        """Mean ApproxIoT accuracy loss (%) across windows."""
        if not self.windows:
            raise PipelineError("run produced no windows")
        return sum(w.approxiot_loss for w in self.windows) / len(self.windows)

    @property
    def mean_srs_loss(self) -> float:
        """Mean SRS accuracy loss (%) across windows."""
        if not self.windows:
            raise PipelineError("run produced no windows")
        return sum(w.srs_loss for w in self.windows) / len(self.windows)

    @property
    def realized_fraction(self) -> float:
        """Fraction of emitted items that physically reached the root."""
        emitted = sum(w.items_emitted for w in self.windows)
        sampled = sum(w.items_sampled for w in self.windows)
        if emitted == 0:
            raise PipelineError("run emitted no items")
        return sampled / emitted


@dataclass(slots=True)
class ApproxIoTWindow:
    """One ApproxIoT window's root-side state (before Theta is cleared).

    Attributes:
        theta: The root's ``(W_out, I)`` accumulator for the window.
        approx: The SUM estimate with error bounds.
        sampled: Items that physically reached the root.
    """

    theta: ThetaStore
    approx: ApproximateResult
    sampled: int


def _estimate_window(theta: ThetaStore, confidence: float) -> ApproximateResult:
    """One window's root estimate, honest about total blackouts.

    A window in which *nothing* physically reached the root — possible
    only under scenarios, when degraded links destroy (or straggle)
    every root-bound batch — has no data to estimate from. The honest
    answer is 0 with a zero-width interval over zero samples: 100 %
    loss, never "in bound", which is exactly what a blackout costs.
    """
    if not theta.batches:
        return ApproximateResult(
            value=0.0, error=0.0, confidence=confidence, variance=0.0,
            sampled_items=0,
        )
    return estimate_sum_with_error(theta, confidence)


def sample_interval(
    pipeline: Pipeline, node_name: str, batches: list[WeightedBatch]
) -> WHSampResult:
    """One node's interval close: Algorithm 1 under the node's budget.

    The single WHSamp step shared by every execution mode — the
    algorithmic window loop below and the deployment simulator's
    event-driven interval closes both call it, so budget, allocation
    policy, rng and backend are applied identically everywhere.
    """
    policy = (
        pipeline.allocation_override
        if pipeline.allocation_override is not None
        else pipeline.config.allocation_policy
    )
    return whsamp_batches(
        batches,
        pipeline.budget(node_name),
        policy=policy,
        rng=pipeline.rng,
        backend=pipeline.backend,
    )


class EngineRunner:
    """Drives the assembled pipeline over windows of generated data.

    ``scenario`` (a bound
    :class:`~repro.scenarios.engine.ScenarioEngine`, or ``None`` for
    the classic static run) makes the loop dynamic: each window first
    applies the scenario's compiled state — source rates, offline
    nodes, degraded uplinks — then runs exactly as before. A ``None``
    scenario leaves every code path bit-for-bit identical to the
    pre-scenario engine.

    The per-window feedback loop lives here too: the runner builds the
    budget controller ``pipeline.config.budget_controller`` names and,
    around every window, lets it apply its decision (budgets,
    allocation override) and observe the realized root state. The
    ``static`` controller makes both steps no-ops, keeping the classic
    engine bit-for-bit. ``observe_locally=False`` disables the
    *observe* half only — worker shards run that way, because in a
    sharded run the merged-root observation is broadcast back by
    :class:`~repro.engine.sharding.ShardedEngineRunner` through
    :meth:`apply_observation` so every shard adapts on global (not
    shard-local) evidence.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        transport: Transport,
        scenario: "ScenarioEngine | None" = None,
        *,
        observe_locally: bool = True,
    ) -> None:
        # Imported lazily: repro.system packages import this module at
        # load time (same structural cycle as the scenario engine).
        from repro.system.adaptive import make_budget_controller, observe_window

        self._pipeline = pipeline
        self._transport = transport
        self._scenario = scenario
        self._controller = make_budget_controller(
            pipeline.config.budget_controller, pipeline.config
        )
        self._observe_window = observe_window
        self._observe_locally = observe_locally
        if scenario is not None and set(scenario.tree.nodes) != set(
            pipeline.tree.nodes
        ):
            raise PipelineError(
                "scenario was bound to a different tree than the "
                "pipeline runs on; bind it to the run's config.tree"
            )
        for node in pipeline.tree.sampling_nodes:
            transport.register(node.name)
        self._windows_run = 0
        #: Per-window scenario state (None in static runs / pre-run).
        self._window_state: "WindowState | None" = None
        #: Straggler queue: (due_window, src, dst, batch) not yet delivered.
        self._delayed: list[tuple[int, str, str, WeightedBatch]] = []
        self._loss_rng: random.Random | None = None
        self._window_dropped = 0

    @property
    def pipeline(self) -> Pipeline:
        """The assembled pipeline this runner executes."""
        return self._pipeline

    @property
    def transport(self) -> Transport:
        """The transport moving batches between nodes."""
        return self._transport

    @property
    def controller(self):
        """The live per-window budget controller (see config docs)."""
        return self._controller

    def apply_observation(self, observation) -> None:
        """Feed an externally built window observation to the controller.

        The sharded runner's broadcast seam: the parent merges every
        shard's root Theta, builds one
        :class:`~repro.system.adaptive.WindowObservation` and pushes it
        into each shard's controller before the next window, so the
        coordination-free shards all replay the decision the in-process
        controller would have made on the same evidence.
        """
        self._controller.observe(observation)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_window(self) -> WindowOutcome | None:
        """Run one window through ApproxIoT, SRS and the native path.

        Returns ``None`` for a window in which no source emitted
        anything — a legitimate intermittent outcome when a source's
        ``rate * window`` is below one item, since the schedule-exact
        rate accumulator owes such sources an empty interval every so
        often. Time still advances past the empty window.
        """
        outcome, _theta = self.run_window_with_theta()
        return outcome

    def run_window_with_theta(
        self,
    ) -> tuple[WindowOutcome | None, ThetaStore | None]:
        """One window's outcome plus the root's Theta store behind it.

        The sharded engine runs this loop per worker shard and needs
        the window's ``(W_out, I)`` pairs — not just the shard-local
        estimate — so the root can merge Theta across shards and
        estimate once over the union. :meth:`run_window` is this with
        the store dropped; both advance window time identically, so a
        single-shard run is bit-for-bit the in-process run.
        """
        window_start = self._windows_run * self._pipeline.config.window_seconds
        self._window_dropped = 0
        sample_budget = self._controller.begin_window(self._pipeline)
        if self._scenario is not None:
            self._window_state = self._scenario.state_for(self._windows_run)
            self._apply_window_state(self._window_state)
        emitted = self._pipeline.emit_window(window_start)
        items_emitted = sum(len(batch) for batch in emitted.values())
        if items_emitted == 0:
            # Straggler batches due now stay queued: loss is measured
            # against emissions, and a no-emission window has no ground
            # truth to measure late arrivals against.
            self._windows_run += 1
            return None, None

        # The ground truth is the native strategy's answer, computed
        # directly: forwarding everything through the transport would
        # reach the same sum with an O(n) traversal for nothing.
        if self._pipeline.data_plane == "columnar":
            exact_sum = sum(batch.value_sum() for batch in emitted.values())
        else:
            exact_sum = sum(
                item.value for batch in emitted.values() for item in batch
            )
        approx = self.run_approxiot(emitted)
        srs_sum = self.run_srs(emitted)
        if self._observe_locally and self._controller.wants_observations:
            self._controller.observe(
                self._observe_window(
                    self._windows_run, approx.theta, approx.approx
                )
            )
        self._windows_run += 1
        outcome = WindowOutcome(
            window_index=self._windows_run,
            exact_sum=exact_sum,
            approx_sum=approx.approx,
            srs_sum=srs_sum,
            items_emitted=items_emitted,
            items_sampled=approx.sampled,
            items_dropped=self._window_dropped,
            sample_budget=sample_budget,
        )
        return outcome, approx.theta

    def run(self, windows: int) -> RunOutcome:
        """Run several windows and collect the outcomes.

        Empty windows (low-rate sources owed no items yet) contribute
        no outcome; a run in which *every* window was empty is a
        configuration error and raises.
        """
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = RunOutcome()
        for _ in range(windows):
            window = self.run_window()
            if window is not None:
                outcome.windows.append(window)
        if not outcome.windows:
            raise PipelineError(
                "sources emitted no items in any window of the run; "
                "increase the source rates or the window size"
            )
        return outcome

    # ------------------------------------------------------------------
    # Scenario application
    # ------------------------------------------------------------------
    def _apply_window_state(self, state: "WindowState") -> None:
        """Reshape the world before a window runs.

        Sources are re-rated from the scenario's effective
        per-sub-stream rates (offline sources emit nothing; surviving
        owners keep their even share — a dead sensor's volume is
        genuinely lost, not redistributed). The per-window loss rng is
        derived from ``(seed, window)`` as a string seed (stable
        across processes), so link-loss decisions are reproducible and
        independent of the sampling entropy stream.
        """
        pipeline = self._pipeline
        for node in pipeline.tree.sources:
            substream = pipeline.source_substreams[node.name]
            owners = pipeline.substream_owner_count(substream)
            rate = state.rates[substream] / owners
            if node.name in state.offline:
                rate = 0.0
            pipeline.sources[node.name].rate_per_second = rate
        self._loss_rng = random.Random(
            f"link-loss:{pipeline.config.seed}:{state.window}"
        )

    def _route(self, dst: str) -> str:
        """The live node a destination resolves to under churn."""
        state = self._window_state
        if state is None or not state.offline:
            return dst
        tree = self._pipeline.tree
        while dst in state.offline:
            parent = tree.node(dst).parent
            assert parent is not None  # the root can never churn
            dst = parent
        return dst

    def _deliver(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """One scenario-aware hop from ``src`` toward ``dst``.

        Applies the window's uplink state for ``src`` — seeded loss
        (the batch is destroyed; the estimator never learns it
        existed) or straggler delay (the batch is queued and arrives
        whole windows later) — then routes around offline nodes to
        the nearest live ancestor. Static runs fall straight through
        to the transport.
        """
        state = self._window_state
        if state is not None:
            link = state.degraded.get(src)
            if link is not None:
                if link.loss > 0.0:
                    assert self._loss_rng is not None
                    if self._loss_rng.random() < link.loss:
                        self._window_dropped += len(batch)
                        return
                if link.delay_windows > 0:
                    self._delayed.append(
                        (self._windows_run + link.delay_windows, src, dst, batch)
                    )
                    return
        self._transport.send(src, self._route(dst), batch)

    def _release_due_stragglers(self) -> None:
        """Deliver straggler batches whose delay has elapsed.

        Late batches join the *current* window's traversal at their
        original destination (re-routed if it is now offline) — mass
        smeared out of the window it was emitted in and into this one,
        which is exactly the quality wobble a straggler link causes.
        """
        if not self._delayed:
            return
        now = self._windows_run
        due = [entry for entry in self._delayed if entry[0] <= now]
        if not due:
            return
        self._delayed = [entry for entry in self._delayed if entry[0] > now]
        for _due_window, _src, dst, batch in due:
            self._transport.send(_src, self._route(dst), batch)

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _inject(self, emitted: "dict[str, list[StreamItem] | ColumnarBatch]") -> None:
        """Ship one window's emissions to the first sampling layer.

        Plane-agnostic: object batches stratify per item, columnar
        batches group by column (zero-copy for single-stratum sources)
        — the payload rides the transport either way.
        """
        tree = self._pipeline.tree
        for source_node in tree.sources:
            payload = emitted[source_node.name]
            if not len(payload):
                continue
            parent = source_node.parent
            assert parent is not None
            for substream, chunk in group_payload(payload).items():
                self._deliver(
                    source_node.name,
                    parent,
                    WeightedBatch(substream, 1.0, chunk),
                )

    def run_approxiot(
        self, emitted: "dict[str, list[StreamItem] | ColumnarBatch]"
    ) -> ApproxIoTWindow:
        """Propagate one window bottom-up with WHSamp at every node.

        Under a scenario, straggler batches due this window are
        released first, offline nodes are skipped (their traffic was
        routed around them at send time), and every upward hop goes
        through the scenario-aware :meth:`_deliver`.
        """
        self._release_due_stragglers()
        self._inject(emitted)
        offline = (
            self._window_state.offline if self._window_state is not None
            else frozenset()
        )
        theta = ThetaStore()
        for node in self._pipeline.tree.sampling_nodes:  # bottom-up, root last
            if node.name in offline:
                continue
            batches = self._transport.collect(node.name)
            if not batches:
                continue
            result = sample_interval(self._pipeline, node.name, batches)
            if node.parent is None:
                theta.extend(result.batches)
            else:
                for batch in result.batches:
                    self._deliver(node.name, node.parent, batch)
        sampled = sum(len(batch) for batch in theta.batches)
        if self._scenario is not None:
            approx = _estimate_window(theta, self._pipeline.config.confidence)
        else:
            # Static runs keep the loud EstimationError on an empty
            # Theta: nothing can legitimately destroy root-bound
            # batches without a scenario, so silence would hide a
            # misconfiguration (e.g. budgets rounded to zero).
            approx = estimate_sum_with_error(
                theta, self._pipeline.config.confidence
            )
        return ApproxIoTWindow(theta=theta, approx=approx, sampled=sampled)

    def run_srs(
        self, emitted: "dict[str, list[StreamItem] | ColumnarBatch]"
    ) -> float:
        """The baseline: coin-flip at the first edge layer, HT at root.

        The kept sum accumulates directly — no intermediate list of
        kept values is materialized. On the columnar plane the coin
        flip is a mask applied to the value column in one vector op
        (decision entropy is identical per record, so seeded runs keep
        the same records on either plane).
        """
        fraction = self._pipeline.config.sampling_fraction
        rng = self._pipeline.rng
        kept_sum = 0.0
        for node in self._pipeline.tree.sources:
            sampler = CoinFlipSampler(
                fraction, random.Random(rng.getrandbits(64))
            )
            payload = emitted[node.name]
            if isinstance(payload, ColumnarBatch):
                kept_sum += masked_sum(
                    payload.values, sampler.decisions(len(payload))
                )
            else:
                for item in payload:
                    if sampler.offer(item) is not None:
                        kept_sum += item.value
        return kept_sum / fraction

    def run_native(
        self, emitted: "dict[str, list[StreamItem] | ColumnarBatch]"
    ) -> float:
        """Everything forwarded unsampled; the root's sum is exact."""
        self._inject(emitted)
        offline = (
            self._window_state.offline if self._window_state is not None
            else frozenset()
        )
        total = 0.0
        for node in self._pipeline.tree.sampling_nodes:
            if node.name in offline:
                continue
            batches = self._transport.collect(node.name)
            if not batches:
                continue
            if node.parent is None:
                total += sum(batch.estimated_sum for batch in batches)
            else:
                for batch in batches:
                    self._deliver(node.name, node.parent, batch)
        return total
