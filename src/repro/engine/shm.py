"""Zero-copy shared-memory shard transport — the sharded engine's IPC plane.

The worker-scaling benchmark showed sharded execution is IPC-bound on
small hosts: every window's root Theta round-trips through
``encode_weighted_batches`` → ``Pipe.send`` → ``decode_weighted_batches``,
serializing the very column buffers the columnar plane was built to
avoid copying — the pipe carries the payload *and* the kernel copies it
twice. This module removes the payload from the pipe: each shard owns
one ``multiprocessing.shared_memory`` segment into which it writes its
codec frames directly (whole column buffers, one ``memcpy``-class write
per column), and only a tiny ``(sequence, offset, length)`` descriptor
crosses the Pipe. The parent decodes straight off the segment — numpy
``frombuffer`` views over the shared pages, ``array('d')`` fallback —
so payload bytes never transit a pipe and are copied exactly once
(decode's copy-out into owned columns, which is what makes ring reuse
safe). This is the SimBricks-style design: fixed-size shared-memory
message queues, descriptors on the control channel, payloads in place.

A :class:`ShardSegment` is split into two regions:

* a **payload ring** the *shard* writes (its per-window Theta frames),
* a small **control region** the *parent* writes (the adaptive
  controller's broadcast :class:`~repro.system.adaptive.WindowObservation`
  rides here instead of being pickled through the pipe).

Synchronization needs no locks because the sharded protocol is strictly
round-based: the parent stashes control frames *before* sending a
``run`` request, the shard writes payload frames *while* serving it,
and the parent reads them *after* collecting the round's results — the
two sides never touch the segment concurrently. Each round carries a
sequence number; both sides reset their write cursors at round start
and every descriptor embeds the sequence, so a desynchronized clock is
detected loudly instead of decoding stale bytes.

A frame that does not fit the fixed-size ring falls back to the classic
pipe codec for that slot (the descriptor is simply the encoded bytes),
so the ring size bounds the fast path, never correctness. Hosts
without usable shared memory, and the ``spawn`` start method, degrade
to the pipe codec entirely with bit-identical results — see
:func:`resolve_shard_transport`.
"""

from __future__ import annotations

import pickle
import weakref

from repro.errors import PipelineError

try:  # pragma: no cover - trivially environment-dependent
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "CTRL_BYTES",
    "DEFAULT_RING_BYTES",
    "ShardSegment",
    "is_ctrl_frame",
    "resolve_shard_transport",
    "shm_available",
]

#: Default payload-ring capacity per shard. One round must hold every
#: requested window's Theta frames for one shard; at the benchmark's
#: Fig. 6 operating point a window frame is tens of kilobytes, so 4 MiB
#: covers hundreds of windows per round. Oversized rounds fall back to
#: the pipe codec per slot — the segment is virtual memory, and only
#: touched pages ever materialize.
DEFAULT_RING_BYTES = 4 * 1024 * 1024

#: Control-region capacity (parent → shard broadcasts). A pickled
#: :class:`~repro.system.adaptive.WindowObservation` is a few hundred
#: bytes per sub-stream; oversized values fall back to riding the pipe.
CTRL_BYTES = 64 * 1024

#: Tag distinguishing a stashed control frame from an inline value in a
#: request's observation list (observations are dataclasses, never
#: tuples, so the tagged tuple is unambiguous).
_CTRL_TAG = "ctrl"

_probed: bool | None = None


def shm_available() -> bool:
    """Whether this host can create and map POSIX shared memory.

    Probes once per process by actually creating (and immediately
    unlinking) a tiny segment, so an importable module with an
    unusable ``/dev/shm`` still reports ``False``.
    """
    global _probed
    if _probed is None:
        if _shared_memory is None:
            _probed = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
            except (OSError, ValueError):
                _probed = False
            else:
                probe.close()
                try:
                    probe.unlink()
                except FileNotFoundError:  # pragma: no cover - defensive
                    pass
                _probed = True
    return _probed


def resolve_shard_transport(requested: str, start_method: str) -> str:
    """The concrete shard transport a run will use.

    ``"pipe"`` is always honored. ``"shm"`` and ``"auto"`` resolve to
    shared memory only when the host can map segments *and* shards
    fork (a forked shard inherits the parent's resource tracker, so
    create/attach/unlink accounting stays balanced); ``spawn`` hosts
    and shm-unavailable hosts degrade to the pipe codec — results are
    bit-identical either way, only the IPC cost differs.
    """
    if requested == "pipe":
        return "pipe"
    if start_method != "fork" or not shm_available():
        return "pipe"
    return "shm"


def _release_owned(shm) -> None:
    """Finalizer for the creating side: detach and unlink the segment."""
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _release_attached(shm) -> None:
    """Finalizer for the attaching side: detach only (owner unlinks)."""
    shm.close()


class ShardSegment:
    """One shard's shared-memory IPC plane: control region + payload ring.

    Layout: ``[ctrl_bytes of parent-written control frames |
    ring_bytes of shard-written payload frames]``. The parent side
    :meth:`create`\\ s the segment (and is the side that unlinks it);
    the shard process :meth:`attach`\\ es by name. Both sides call
    :meth:`begin_round` with the round's sequence number, after which
    the writer for each region appends frames and hands out
    descriptors that the other side resolves against the same
    sequence.

    Every instance registers a :mod:`weakref` finalizer, so a segment
    abandoned without :meth:`release` (a crashed parent path, a
    garbage-collected runner) is still detached — and, on the owning
    side, unlinked — instead of leaking into ``/dev/shm``.
    """

    def __init__(self, shm, ring_bytes: int, ctrl_bytes: int, owner: bool) -> None:
        self._shm = shm
        self._ring_bytes = ring_bytes
        self._ctrl_bytes = ctrl_bytes
        self._owner = owner
        self._sequence = 0
        self._ring_cursor = 0
        self._ctrl_cursor = 0
        self._finalizer = weakref.finalize(
            self, _release_owned if owner else _release_attached, shm
        )

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        ring_bytes: int = DEFAULT_RING_BYTES,
        ctrl_bytes: int = CTRL_BYTES,
    ) -> "ShardSegment":
        """Create a fresh segment (parent side; this side unlinks it)."""
        if _shared_memory is None:  # pragma: no cover - import-gated
            raise PipelineError("shared memory is unavailable on this host")
        if ring_bytes <= 0 or ctrl_bytes <= 0:
            raise PipelineError(
                f"segment regions must be positive, got ring={ring_bytes} "
                f"ctrl={ctrl_bytes}"
            )
        shm = _shared_memory.SharedMemory(
            create=True, size=ring_bytes + ctrl_bytes
        )
        return cls(shm, ring_bytes, ctrl_bytes, owner=True)

    @classmethod
    def attach(cls, name: str, ring_bytes: int, ctrl_bytes: int) -> "ShardSegment":
        """Map an existing segment by name (shard side; never unlinks)."""
        if _shared_memory is None:  # pragma: no cover - import-gated
            raise PipelineError("shared memory is unavailable on this host")
        shm = _shared_memory.SharedMemory(name=name)
        return cls(shm, ring_bytes, ctrl_bytes, owner=False)

    @property
    def name(self) -> str:
        """The segment's system-wide name (attach key)."""
        return self._shm.name

    @property
    def spec(self) -> tuple[str, int, int]:
        """The ``(name, ring_bytes, ctrl_bytes)`` triple a shard attaches with."""
        return (self._shm.name, self._ring_bytes, self._ctrl_bytes)

    @property
    def ring_bytes(self) -> int:
        """Payload-ring capacity in bytes."""
        return self._ring_bytes

    def release(self) -> None:
        """Detach the mapping; the owning side also unlinks (idempotent)."""
        self._finalizer()

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def begin_round(self, sequence: int) -> None:
        """Reset both write cursors for one request/collect round.

        The parent calls this before stashing control frames for a
        request; the shard calls it with the sequence carried by that
        request before writing payload frames. Frames from a previous
        round become unreadable (their descriptors carry the old
        sequence), which is exactly the reuse guarantee: by the time a
        new round starts, the parent has decoded — and copied out of —
        everything the previous round wrote.
        """
        self._sequence = sequence
        self._ring_cursor = 0
        self._ctrl_cursor = 0

    def write_frame(self, chunks: list[bytes], total: int) -> tuple[int, int, int] | None:
        """Append one payload frame to the ring (shard side).

        ``chunks`` are the codec's byte chunks (column buffers and
        framing), copied into the ring in order without an intermediate
        join. Returns the ``(sequence, offset, length)`` descriptor to
        send over the pipe, or ``None`` when the ring cannot hold the
        frame — the caller falls back to the pipe codec for that slot.
        """
        if total > self._ring_bytes - self._ring_cursor:
            return None
        start = self._ctrl_bytes + self._ring_cursor
        buf = self._shm.buf
        position = start
        for chunk in chunks:
            length = len(chunk)
            buf[position : position + length] = chunk
            position += length
        descriptor = (self._sequence, self._ring_cursor, total)
        self._ring_cursor += total
        return descriptor

    def read_frame(self, descriptor: tuple[int, int, int]) -> memoryview:
        """A zero-copy view of one payload frame (parent side).

        Callers must release the view (or let it fall out of scope)
        before the segment is released — the codec's decode copies the
        columns out, so nothing outlives the view.

        A malformed descriptor — wrong arity, non-integer fields, a
        stale round sequence, or out-of-ring bounds — always raises
        :class:`PipelineError`, never an unclassified ``TypeError``:
        the shard supervisor keys its corrupted-descriptor recovery
        (replace the shard, degrade it to the pipe codec) on that
        diagnosis.
        """
        try:
            sequence, offset, length = descriptor
        except (TypeError, ValueError):
            raise PipelineError(
                f"malformed shared-memory descriptor {descriptor!r}"
            ) from None
        if not all(isinstance(f, int) for f in (sequence, offset, length)):
            raise PipelineError(
                f"malformed shared-memory descriptor {descriptor!r}"
            )
        if sequence != self._sequence:
            raise PipelineError(
                f"shared-memory frame from round {sequence} read in round "
                f"{self._sequence}; shard clocks are desynchronized — "
                f"create a fresh runner"
            )
        if offset < 0 or length < 0 or offset + length > self._ring_bytes:
            raise PipelineError(
                f"shared-memory descriptor (offset={offset}, "
                f"length={length}) exceeds the {self._ring_bytes}-byte ring"
            )
        start = self._ctrl_bytes + offset
        return self._shm.buf[start : start + length]

    def stash(self, value) -> tuple[str, int, int, int] | None:
        """Pickle a control value into the control region (parent side).

        The adaptive controller's broadcast observation rides here: the
        returned ``("ctrl", sequence, offset, length)`` frame replaces
        the value in the request message. Returns ``None`` when the
        region cannot hold it — the caller sends the value inline.
        """
        data = pickle.dumps(value)
        if len(data) > self._ctrl_bytes - self._ctrl_cursor:
            return None
        start = self._ctrl_cursor
        self._shm.buf[start : start + len(data)] = data
        self._ctrl_cursor += len(data)
        return (_CTRL_TAG, self._sequence, start, len(data))

    def unstash(self, frame: tuple[str, int, int, int]):
        """Load a control value stashed by the parent (shard side).

        Like :meth:`read_frame`, malformed frames raise
        :class:`PipelineError` rather than ``TypeError`` so the
        failure crosses the pipe as a diagnosable shard error.
        """
        try:
            tag, sequence, offset, length = frame
        except (TypeError, ValueError):
            raise PipelineError(
                f"malformed control frame {frame!r}"
            ) from None
        if not all(isinstance(f, int) for f in (sequence, offset, length)):
            raise PipelineError(f"malformed control frame {frame!r}")
        if tag != _CTRL_TAG or sequence != self._sequence:
            raise PipelineError(
                f"control frame {frame!r} does not belong to round "
                f"{self._sequence}; shard clocks are desynchronized"
            )
        if offset < 0 or length < 0 or offset + length > self._ctrl_bytes:
            raise PipelineError(
                f"control frame (offset={offset}, length={length}) exceeds "
                f"the {self._ctrl_bytes}-byte control region"
            )
        return pickle.loads(self._shm.buf[offset : offset + length])


def is_ctrl_frame(entry) -> bool:
    """Whether a request observation entry is a stashed control frame."""
    return isinstance(entry, tuple) and len(entry) == 4 and entry[0] == _CTRL_TAG
