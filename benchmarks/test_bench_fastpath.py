"""Benchmark: python vs numpy sampling backends on the Fig. 5 workload.

Measures the two hot-path kernels the fast path vectorizes — streaming
reservoir sampling and the full ``whsamp`` interval — over the same
Gaussian sub-stream mix Fig. 5 uses, and appends the throughput
comparison to ``benchmarks/results.txt``. The acceptance bar is a
>= 5x speedup for the numpy backend on batch reservoir sampling.
"""

from __future__ import annotations

import random
import time

import pytest

pytest.importorskip("numpy", reason="fastpath benchmark compares both backends")

from repro.core.fastpath import BACKEND_NUMPY, BACKEND_PYTHON, make_reservoir_sampler
from repro.core.whs import whsamp
from repro.experiments.base import ExperimentScale, gaussian_generators, uniform_schedule
from repro.metrics.report import Table

#: Interval length fed to the samplers; at bench scale (rate 0.25 x
#: 25k/s x 4 sub-streams) this materialises ~100k items, comfortably
#: above a production node's per-second interval volume.
INTERVAL_SECONDS = 4.0
SAMPLING_FRACTION = 0.1
TIMING_ROUNDS = 3


def fig5_interval(scale: ExperimentScale) -> list:
    """One interval of the Fig. 5 Gaussian workload, arrival-shuffled."""
    generators = gaussian_generators()
    schedule = uniform_schedule(scale.rate_scale)
    rng = random.Random(scale.seed)
    items = []
    for substream, rate in sorted(schedule.rates.items()):
        count = int(rate * INTERVAL_SECONDS)
        items.extend(generators[substream].generate(count, rng))
    rng.shuffle(items)
    return items


def best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    """Best wall-clock of ``rounds`` runs (discards warm-up jitter)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_fastpath_comparison(scale: ExperimentScale) -> tuple[str, dict[str, float]]:
    """Time both backends on both kernels; return (table text, speedups)."""
    items = fig5_interval(scale)
    capacity = max(1, int(len(items) * SAMPLING_FRACTION))

    def reservoir_run(backend: str):
        def run() -> None:
            sampler = make_reservoir_sampler(
                capacity, random.Random(scale.seed), backend=backend
            )
            sampler.extend(items)

        return run

    def whsamp_run(backend: str):
        def run() -> None:
            whsamp(
                items, capacity, rng=random.Random(scale.seed), backend=backend
            )

        return run

    timings = {
        "reservoir": {
            backend: best_of(reservoir_run(backend))
            for backend in (BACKEND_PYTHON, BACKEND_NUMPY)
        },
        "whsamp": {
            backend: best_of(whsamp_run(backend))
            for backend in (BACKEND_PYTHON, BACKEND_NUMPY)
        },
    }
    speedups = {
        kernel: by_backend[BACKEND_PYTHON] / by_backend[BACKEND_NUMPY]
        for kernel, by_backend in timings.items()
    }

    # Keep the title free of workload sizes: conftest refreshes tables
    # in results.txt by title, so the title must stay stable across
    # scale tuning.
    table = Table(
        "Fastpath: backend throughput on the Fig. 5 workload",
        ["kernel", "python items/s", "numpy items/s", "speedup"],
    )
    for kernel, by_backend in timings.items():
        table.add_row(
            f"{kernel} ({len(items)} items -> {capacity} slots)",
            f"{len(items) / by_backend[BACKEND_PYTHON]:,.0f}",
            f"{len(items) / by_backend[BACKEND_NUMPY]:,.0f}",
            f"{speedups[kernel]:.1f}x",
        )
    return table.render(), speedups


def test_bench_fastpath(benchmark, bench_scale, results_sink):
    """Numpy backend is >= 5x faster on batch reservoir sampling."""
    text, speedups = benchmark.pedantic(
        run_fastpath_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    assert speedups["reservoir"] >= 5.0, speedups
    # The full whsamp interval amortises grouping/allocation overhead
    # shared by both backends, so the bar is lower but must still win.
    assert speedups["whsamp"] > 1.0, speedups
