"""Unit tests for the scenario timeline engine (binding + per-window state)."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.catalog import BUILTIN_SCENARIOS, get_scenario
from repro.scenarios.engine import LinkState, ScenarioEngine
from repro.scenarios.events import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    SkewDrift,
)
from repro.scenarios.scenario import Scenario
from repro.topology.placement import PlacementSpec
from repro.topology.tree import paper_tree
from repro.workloads.rates import RateSchedule

SCHEDULE = RateSchedule(
    "engine-test", {"A": 100.0, "B": 100.0, "C": 100.0, "D": 100.0}
)


def bind(scenario):
    return ScenarioEngine(scenario, paper_tree(), SCHEDULE)


class TestValidation:
    def test_unknown_substream_fails_loudly(self):
        scenario = Scenario(
            "x", "d", windows=4,
            events=(RateBurst(0, 2, 2.0, substreams=("Z",)),),
        )
        with pytest.raises(ConfigurationError, match="unknown sub-streams"):
            bind(scenario)

    def test_unknown_drift_substream_fails_loudly(self):
        scenario = Scenario(
            "x", "d", windows=4, events=(SkewDrift(0, 2, {"Q": 1.0}),)
        )
        with pytest.raises(ConfigurationError, match="unknown sub-streams"):
            bind(scenario)

    def test_unknown_tree_node_fails_loudly(self):
        scenario = Scenario(
            "x", "d", windows=4, events=(NodeChurn(0, 2, ("l9-7",)),)
        )
        with pytest.raises(ConfigurationError, match="unknown tree nodes"):
            bind(scenario)

    def test_all_sources_offline_fails_loudly(self):
        every_source = tuple(f"source-{i}" for i in range(8))
        scenario = Scenario(
            "x", "d", windows=4, events=(NodeChurn(1, 2, every_source),)
        )
        with pytest.raises(ConfigurationError, match="every source offline"):
            bind(scenario)

    def test_builtins_all_bind_to_the_paper_setup(self):
        for name, scenario in BUILTIN_SCENARIOS.items():
            engine = bind(scenario)
            for window in range(scenario.windows):
                engine.state_for(window)  # compiles without error


class TestRates:
    def test_steady_rates_are_the_schedule(self):
        engine = bind(get_scenario("steady"))
        assert engine.state_for(0).rates == dict(SCHEDULE.rates)

    def test_burst_multiplies_targeted_substreams(self):
        scenario = Scenario(
            "x", "d", windows=4,
            events=(RateBurst(1, 3, 3.0, substreams=("A",)),),
        )
        state = bind(scenario).state_for(1)
        assert state.rates["A"] == pytest.approx(300.0)
        assert state.rates["B"] == pytest.approx(100.0)
        assert state.rate_multiplier(SCHEDULE) == pytest.approx(1.5)

    def test_overlapping_rate_events_multiply(self):
        scenario = Scenario(
            "x", "d", windows=4,
            events=(RateBurst(0, 4, 2.0), RateBurst(1, 2, 3.0)),
        )
        engine = bind(scenario)
        assert engine.state_for(0).rates["A"] == pytest.approx(200.0)
        assert engine.state_for(1).rates["A"] == pytest.approx(600.0)

    def test_drift_preserves_total_rate(self):
        scenario = Scenario(
            "x", "d", windows=8,
            events=(SkewDrift(0, 4, {"A": 0.7, "B": 0.1, "C": 0.1,
                                     "D": 0.1}),),
        )
        engine = bind(scenario)
        for window in range(8):
            state = engine.state_for(window)
            assert sum(state.rates.values()) == pytest.approx(
                SCHEDULE.total_rate
            )
        final = engine.state_for(7).rates
        assert final["A"] == pytest.approx(0.7 * SCHEDULE.total_rate)
        assert final["D"] == pytest.approx(0.1 * SCHEDULE.total_rate)

    def test_drift_holds_after_its_end(self):
        scenario = Scenario(
            "x", "d", windows=8,
            events=(SkewDrift(0, 2, {"A": 1.0, "B": 0.0, "C": 0.0,
                                     "D": 0.0}),),
        )
        state = bind(scenario).state_for(7)
        assert state.rates["A"] == pytest.approx(SCHEDULE.total_rate)
        assert state.rates["B"] == 0.0


class TestChurnState:
    def test_offline_set_follows_the_timeline(self):
        engine = bind(get_scenario("churn"))
        assert engine.state_for(0).offline == frozenset()
        assert engine.state_for(3).offline == {"l1-1"}
        assert engine.state_for(5).offline == {"l1-1", "source-5"}
        assert engine.state_for(11).offline == frozenset()

    def test_live_parent_walks_past_offline_ancestors(self):
        engine = bind(get_scenario("churn"))
        # l1-1's children re-parent to l2-0 while l1-1 is down...
        assert engine.live_parent("source-2", frozenset({"l1-1"})) == "l2-0"
        # ...and to the root if l2-0 is down too.
        assert (
            engine.live_parent("source-2", frozenset({"l1-1", "l2-0"}))
            == "root"
        )

    def test_steady_windows_are_marked_steady(self):
        engine = bind(get_scenario("churn"))
        assert engine.state_for(0).is_steady
        assert not engine.state_for(3).is_steady


class TestLinkStateComposition:
    def test_overlapping_degradations_compose(self):
        scenario = Scenario(
            "x", "d", windows=6,
            events=(
                LinkDegrade(0, 6, ("source-0",), loss=0.5),
                LinkDegrade(2, 4, ("source-0",), loss=0.5, delay_windows=1,
                            rtt_factor=2.0),
            ),
        )
        engine = bind(scenario)
        lone = engine.state_for(0).degraded["source-0"]
        assert lone.loss == pytest.approx(0.5)
        both = engine.state_for(2).degraded["source-0"]
        assert both.loss == pytest.approx(0.75)  # 1 - 0.5 * 0.5
        assert both.delay_windows == 1
        assert both.rtt_factor == pytest.approx(2.0)

    def test_none_targets_every_uplink(self):
        scenario = Scenario(
            "x", "d", windows=2, events=(LinkDegrade(0, 2, loss=0.1),)
        )
        state = bind(scenario).state_for(0)
        assert len(state.degraded) == len(paper_tree().nodes) - 1

    def test_compose_is_identity_free(self):
        state = LinkState()
        assert state.loss == 0.0 and state.delay_windows == 0


class TestNetemOverrides:
    def test_degraded_uplinks_map_to_shaped_configs(self):
        engine = bind(get_scenario("brownout"))
        spec = PlacementSpec.paper_defaults()
        overrides = engine.netem_overrides(4, spec)
        assert set(overrides) == {"source-6"}
        base = spec.uplink_configs[0]  # source layer boundary
        shaped = overrides["source-6"]
        assert shaped.delay_ms == pytest.approx(base.delay_ms * 4.0)
        assert shaped.rate_bps == pytest.approx(base.rate_bps * 0.25)
        assert shaped.loss == pytest.approx(0.2)

    def test_healthy_windows_have_no_overrides(self):
        engine = bind(get_scenario("brownout"))
        assert engine.netem_overrides(0) == {}

    def test_catalog_lookup_is_loud(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("apocalypse")
