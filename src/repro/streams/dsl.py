"""High-level Streams DSL on top of the Processor API.

Mirrors the shape of the Kafka Streams DSL the paper's computation
engine uses: a fluent :class:`StreamBuilder` producing ``map``,
``filter``, ``flat_map``, ``group_by_key`` and windowed aggregations,
all compiled down to the low-level topology of
:mod:`repro.streams.topology`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.streams.processor import Processor, ProcessorContext
from repro.streams.state import WindowStore
from repro.streams.topology import Topology
from repro.streams.windowing import TumblingWindow

__all__ = ["StreamBuilder", "KStream"]

_node_ids = itertools.count()


def _fresh(name: str) -> str:
    return f"{name}-{next(_node_ids)}"


class _WindowedAggregateProcessor(Processor):
    """Aggregates values per key per tumbling window.

    Emits ``(key, (window_start, aggregate))`` downstream whenever
    stream time passes a window boundary (punctuation-driven, so late
    records within the same run still land in their window).
    """

    def __init__(
        self,
        name: str,
        window: TumblingWindow,
        initializer: Callable[[], Any],
        aggregator: Callable[[Any, Any, Any], Any],
        retention: float | None = None,
    ) -> None:
        super().__init__(name)
        self._window = window
        self._initializer = initializer
        self._aggregator = aggregator
        self._store = WindowStore(
            f"{name}-store", retention or window.size * 100
        )
        self._emitted: set[tuple[Any, float]] = set()

    def process(self, key: Any, value: Any) -> None:
        timestamp = self.context.stream_time
        start, _end = self._window.window_for(timestamp)
        current = self._store.get(key, start)
        if current is None:
            current = self._initializer()
        self._store.put(key, start, self._aggregator(key, value, current))

    def punctuate(self, stream_time: float) -> None:
        """Emit every closed window not yet emitted."""
        for key, start, value in self._closed_windows(stream_time):
            self._emitted.add((key, start))
            self.context.forward(key, (start, value))
        self._store.expire_before(stream_time)

    def _closed_windows(self, stream_time: float):
        closed: list[tuple[Any, float, Any]] = []
        keys = {k for (k, _s) in self._store._data}
        for key in keys:
            for start, value in self._store.windows_for(key):
                is_closed = start + self._window.size <= stream_time
                if is_closed and (key, start) not in self._emitted:
                    closed.append((key, start, value))
        return sorted(closed, key=lambda row: (row[1], str(row[0])))


class KStream:
    """A fluent handle over a branch of the topology under construction."""

    def __init__(self, builder: "StreamBuilder", parent: str) -> None:
        self._builder = builder
        self._parent = parent

    def map_values(self, fn: Callable[[Any], Any]) -> "KStream":
        """Transform each value, keeping the key."""
        name = _fresh("map-values")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            ctx.forward(key, fn(value))

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def map(self, fn: Callable[[Any, Any], tuple[Any, Any]]) -> "KStream":
        """Transform key and value together."""
        name = _fresh("map")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            new_key, new_value = fn(key, value)
            ctx.forward(new_key, new_value)

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def filter(self, predicate: Callable[[Any, Any], bool]) -> "KStream":
        """Keep only records satisfying the predicate."""
        name = _fresh("filter")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            if predicate(key, value):
                ctx.forward(key, value)

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def flat_map_values(self, fn: Callable[[Any], list[Any]]) -> "KStream":
        """Expand each value into zero or more values."""
        name = _fresh("flat-map-values")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            for out in fn(value):
                ctx.forward(key, out)

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def select_key(self, fn: Callable[[Any, Any], Any]) -> "KStream":
        """Re-key the stream."""
        name = _fresh("select-key")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            ctx.forward(fn(key, value), value)

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def peek(self, fn: Callable[[Any, Any], None]) -> "KStream":
        """Observe records without modifying them."""
        name = _fresh("peek")

        def apply(key: Any, value: Any, ctx: ProcessorContext) -> None:
            fn(key, value)
            ctx.forward(key, value)

        self._builder.topology.add_processor(name, apply, [self._parent])
        return KStream(self._builder, name)

    def process_with(self, processor: Processor) -> "KStream":
        """Plug a low-level processor into the fluent chain.

        This is the integration point the paper uses for its sampling
        module: a user-defined processor inside the high-level DSL.
        """
        name = _fresh(processor.name or "processor")
        self._builder.topology.add_processor(name, processor, [self._parent])
        return KStream(self._builder, name)

    def windowed_aggregate(
        self,
        window: TumblingWindow,
        initializer: Callable[[], Any],
        aggregator: Callable[[Any, Any, Any], Any],
    ) -> "KStream":
        """Aggregate values per key per tumbling window."""
        name = _fresh("windowed-aggregate")
        node = _WindowedAggregateProcessor(name, window, initializer, aggregator)
        self._builder.topology.add_processor(name, node, [self._parent])
        return KStream(self._builder, name)

    def windowed_sum(
        self, window: TumblingWindow, value_of: Callable[[Any], float] = float
    ) -> "KStream":
        """Sum values per key per tumbling window."""
        return self.windowed_aggregate(
            window,
            initializer=lambda: 0.0,
            aggregator=lambda _key, value, acc: acc + value_of(value),
        )

    def windowed_count(self, window: TumblingWindow) -> "KStream":
        """Count records per key per tumbling window."""
        return self.windowed_aggregate(
            window,
            initializer=lambda: 0,
            aggregator=lambda _key, _value, acc: acc + 1,
        )

    def to(self, topic: str) -> None:
        """Terminate the branch into an output topic."""
        name = _fresh("sink")
        self._builder.topology.add_sink(name, topic, [self._parent])

    def for_each(self, fn: Callable[[Any, Any], None]) -> None:
        """Terminate the branch into a side-effecting consumer."""
        name = _fresh("for-each")

        def apply(key: Any, value: Any, _ctx: ProcessorContext) -> None:
            fn(key, value)

        self._builder.topology.add_processor(name, apply, [self._parent])


class StreamBuilder:
    """Entry point of the DSL; owns the topology being assembled."""

    def __init__(self) -> None:
        self.topology = Topology()

    def stream(self, *topics: str) -> KStream:
        """Open a stream over one or more input topics."""
        name = _fresh("source")
        self.topology.add_source(name, list(topics))
        return KStream(self, name)

    def build(self) -> Topology:
        """Finish construction and return the topology."""
        return self.topology
