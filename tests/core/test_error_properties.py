"""Property-based tests for the error-bound machinery."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error_bounds import (
    estimate_mean_with_error,
    estimate_sum_with_error,
    sample_variance,
)
from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch

batch_strategy = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.floats(min_value=1.0, max_value=100.0),
    st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
             min_size=1, max_size=30),
)


def build_theta(raw_batches):
    theta = ThetaStore()
    for substream, weight, values in raw_batches:
        theta.add(
            WeightedBatch(
                substream, weight,
                [StreamItem(substream, v) for v in values],
            )
        )
    return theta


@given(raw=st.lists(batch_strategy, min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_variance_and_error_never_negative(raw):
    theta = build_theta(raw)
    result = estimate_sum_with_error(theta)
    assert result.variance >= 0.0
    assert result.error >= 0.0
    assert not math.isnan(result.error)


@given(raw=st.lists(batch_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_error_monotone_in_confidence(raw):
    theta = build_theta(raw)
    errors = [
        estimate_sum_with_error(theta, confidence).error
        for confidence in (0.68, 0.95, 0.997)
    ]
    assert errors[0] <= errors[1] <= errors[2]


@given(raw=st.lists(batch_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_interval_always_contains_point_estimate(raw):
    theta = build_theta(raw)
    for estimator in (estimate_sum_with_error, estimate_mean_with_error):
        result = estimator(theta)
        assert result.lower <= result.value <= result.upper


@given(raw=st.lists(batch_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_unsampled_batches_have_zero_error(raw):
    """Weight-1 batches mean the sample IS the population: FPC -> 0."""
    theta = ThetaStore()
    for substream, _weight, values in raw:
        theta.add(
            WeightedBatch(
                substream, 1.0,
                [StreamItem(substream, v) for v in values],
            )
        )
    result = estimate_sum_with_error(theta)
    assert result.error <= 1e-6 * max(1.0, abs(result.value))


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), max_size=100))
def test_sample_variance_never_negative(values):
    assert sample_variance(values) >= 0.0


@given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                 allow_nan=False), min_size=2, max_size=50),
       shift=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
def test_sample_variance_shift_invariant(values, shift):
    original = sample_variance(values)
    shifted = sample_variance([v + shift for v in values])
    assert math.isclose(original, shifted, rel_tol=1e-6, abs_tol=1e-5)
