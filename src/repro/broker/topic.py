"""Topics: named collections of partition logs.

A topic shards records across a fixed number of partitions. Keyed
records hash to a stable partition (so per-key ordering holds, the
property ApproxIoT relies on to keep each sub-stream ordered); unkeyed
records round-robin for load spreading.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.broker.log import PartitionLog
from repro.broker.records import ConsumedRecord, Record
from repro.errors import ConfigurationError, UnknownPartitionError

__all__ = ["Topic"]


def _stable_hash(key: str) -> int:
    """Deterministic string hash (process-independent, unlike hash())."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


class Topic:
    """A named, partitioned, append-only stream of records."""

    def __init__(self, name: str, partitions: int = 1) -> None:
        if partitions <= 0:
            raise ConfigurationError(
                f"topic needs >= 1 partition, got {partitions}"
            )
        self.name = name
        self._logs = [PartitionLog(name, p) for p in range(partitions)]
        self._round_robin = 0

    @property
    def partition_count(self) -> int:
        """Number of partitions in this topic."""
        return len(self._logs)

    @property
    def total_records(self) -> int:
        """Records currently retained across all partitions."""
        return sum(len(log) for log in self._logs)

    def partition_for(self, key: str | None) -> int:
        """Partition a record with this key would go to.

        Keyed records use a stable hash; unkeyed records advance a
        round-robin counter (so calling this for ``None`` has a side
        effect, as in a real producer's default partitioner).
        """
        if key is not None:
            return _stable_hash(key) % len(self._logs)
        partition = self._round_robin
        self._round_robin = (self._round_robin + 1) % len(self._logs)
        return partition

    def log(self, partition: int) -> PartitionLog:
        """Access one partition's log."""
        if not 0 <= partition < len(self._logs):
            raise UnknownPartitionError(
                f"topic {self.name!r} has no partition {partition}"
            )
        return self._logs[partition]

    def append(self, record: Record, partition: int | None = None) -> tuple[int, int]:
        """Append a record; return its ``(partition, offset)``."""
        target = self.partition_for(record.key) if partition is None else partition
        log = self.log(target)
        offset = log.append(record)
        return target, offset

    def read(
        self, partition: int, offset: int, max_records: int | None = None
    ) -> list[ConsumedRecord]:
        """Read from one partition starting at an offset."""
        return self.log(partition).read(offset, max_records)

    def end_offsets(self) -> dict[int, int]:
        """High watermark per partition."""
        return {log.partition: log.end_offset for log in self._logs}

    def append_batch(
        self, records: Iterable[Record]
    ) -> list[tuple[int, int]]:
        """Append several records; return their positions."""
        return [self.append(record) for record in records]
