"""White-box tests for deployment simulator mechanics."""

import math

import pytest

from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.deployment import DeploymentSimulator
from repro.topology.placement import PlacementSpec
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "internals", {"A": 200.0, "B": 200.0, "C": 200.0, "D": 200.0}
)
PLACEMENT = PlacementSpec.paper_defaults(root_rate=500.0, edge_rate=2000.0)


def simulator(mode=ExecutionMode.APPROXIOT, fraction=0.2, window=1.0,
              n_windows=4):
    config = PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=window,
        mode=mode,
        placement=PLACEMENT,
        seed=17,
    )
    return DeploymentSimulator(config, SCHEDULE, GENS, n_windows=n_windows)


class TestBudgetSizing:
    def test_budget_scales_with_subtree(self):
        sim = simulator(fraction=0.1)
        # Each of the 4 sub-streams (200/s) is split across 2 of the 8
        # sources, so every source emits 100/s: l1 nodes see 200/s,
        # l2 nodes 400/s, the root 800/s.
        assert sim._states["l1-0"].budget == pytest.approx(0.1 * 200, abs=2)
        assert sim._states["l2-0"].budget == pytest.approx(0.1 * 400, abs=2)
        assert sim._states["root"].budget == pytest.approx(0.1 * 800, abs=2)

    def test_budget_scales_with_window(self):
        narrow = simulator(window=1.0)._states["root"].budget
        wide = simulator(window=2.0)._states["root"].budget
        assert wide == pytest.approx(2 * narrow, rel=0.05)


class TestEmissionChunking:
    def test_chunking_covers_whole_duration(self):
        sim = simulator(window=1.3, n_windows=3)
        duration = 1.3 * 3
        chunks = max(1, math.ceil(duration / sim.EMISSION_GRANULARITY))
        assert chunks * (duration / chunks) == pytest.approx(duration)

    def test_emitted_volume_independent_of_window(self):
        small = simulator(window=0.5, n_windows=8).run()
        large = simulator(window=2.0, n_windows=2).run()
        # Same total duration (4 s) -> same emitted volume.
        assert small.items_emitted == pytest.approx(
            large.items_emitted, rel=0.02
        )


class TestDrainCompleteness:
    def test_no_consumer_lag_after_run(self):
        sim = simulator()
        sim.run()
        assert not sim._has_lag()

    def test_all_sampled_items_accounted(self):
        sim = simulator(fraction=0.5)
        report = sim.run()
        # Every item the root ingested passed through L1 and L2 intact.
        l1_ingested = sum(
            sim._states[f"l1-{i}"].items_ingested for i in range(4)
        )
        assert l1_ingested == report.items_emitted
        assert report.items_at_root <= l1_ingested

    def test_latency_samples_only_from_root(self):
        sim = simulator()
        report = sim.run()
        assert sim.latency_recorder.count > 0
        assert report.mean_latency_seconds == pytest.approx(
            sim.latency_recorder.mean()
        )


class TestModeIsolation:
    def test_srs_and_native_skip_broker_setup(self):
        for mode in (ExecutionMode.SRS, ExecutionMode.NATIVE):
            sim = simulator(mode=mode)
            assert sim._states == {}

    def test_native_ignores_fraction(self):
        report = simulator(
            mode=ExecutionMode.NATIVE, fraction=0.1
        ).run()
        assert report.realized_fraction == 1.0
