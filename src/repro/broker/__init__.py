"""In-memory Kafka-model pub/sub substrate.

The paper's prototype pipelines sampled sub-streams between edge layers
through Apache Kafka topics. This subpackage provides the equivalent
abstractions — append-only partition logs, topics, a broker with
consumer-group coordination, buffering producers, polling consumers,
and a multi-broker cluster with leadership failover — implemented from
scratch so the reproduction has no external dependencies.
"""

from repro.broker.broker import Broker, GroupState
from repro.broker.cluster import BrokerCluster
from repro.broker.consumer import Consumer
from repro.broker.log import PartitionLog
from repro.broker.producer import Producer
from repro.broker.records import (
    JSON_SERDE,
    PICKLE_SERDE,
    ConsumedRecord,
    Record,
    Serde,
)
from repro.broker.topic import Topic

__all__ = [
    "Broker",
    "BrokerCluster",
    "ConsumedRecord",
    "Consumer",
    "GroupState",
    "JSON_SERDE",
    "PICKLE_SERDE",
    "PartitionLog",
    "Producer",
    "Record",
    "Serde",
    "Topic",
]
