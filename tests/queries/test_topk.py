"""Unit tests for the future-work queries (top-k, quantiles)."""

import random

import pytest

from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.core.whs import whsamp
from repro.errors import EstimationError
from repro.queries.topk import QuantileQuery, TopKQuery


def batch(substream, weight, values):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(v)) for v in values]
    )


def ranked_theta():
    theta = ThetaStore()
    theta.add(batch("small", 1.0, [1.0, 1.0]))
    theta.add(batch("mid", 2.0, [50.0, 60.0]))
    theta.add(batch("big", 3.0, [1000.0, 1200.0]))
    return theta


class TestTopK:
    def test_ranks_by_estimated_sum(self):
        ranked = TopKQuery(k=2).execute(ranked_theta())
        assert [r.substream for r in ranked] == ["big", "mid"]
        assert ranked[0].rank == 1
        assert ranked[0].estimated_sum == pytest.approx(3 * 2200.0)

    def test_k_larger_than_strata(self):
        ranked = TopKQuery(k=10).execute(ranked_theta())
        assert len(ranked) == 3

    def test_clearly_separated_ranks_are_stable(self):
        ranked = TopKQuery(k=3).execute(ranked_theta())
        assert all(r.stable for r in ranked)

    def test_overlapping_ranks_flagged_unstable(self):
        theta = ThetaStore()
        rng = random.Random(1)
        # Two strata with nearly equal totals and real sampling noise.
        items = [StreamItem("a", rng.gauss(100, 40)) for _ in range(1000)]
        items += [StreamItem("b", rng.gauss(101, 40)) for _ in range(1000)]
        result = whsamp(items, 100, rng=rng)
        theta.extend(result.batches)
        ranked = TopKQuery(k=2).execute(theta)
        assert ranked[0].stable is False

    def test_validation(self):
        with pytest.raises(EstimationError):
            TopKQuery(k=0)
        with pytest.raises(EstimationError):
            TopKQuery(k=1).execute(ThetaStore())

    def test_ranking_matches_truth_after_sampling(self):
        rng = random.Random(2)
        items = []
        truth = {}
        for substream, mu in (("x", 10.0), ("y", 100.0), ("z", 1000.0)):
            values = [rng.gauss(mu, mu * 0.1) for _ in range(2000)]
            truth[substream] = sum(values)
            items.extend(StreamItem(substream, v) for v in values)
        result = whsamp(items, 300, rng=rng)
        theta = ThetaStore()
        theta.extend(result.batches)
        ranked = TopKQuery(k=3).execute(theta)
        true_order = sorted(truth, key=truth.get, reverse=True)
        assert [r.substream for r in ranked] == true_order


class TestQuantile:
    def test_unweighted_median(self):
        theta = ThetaStore()
        theta.add(batch("s", 1.0, [1, 2, 3, 4, 5]))
        estimate = QuantileQuery(0.5).execute(theta)
        assert estimate.value == 3.0

    def test_weights_shift_the_quantile(self):
        theta = ThetaStore()
        # Value 10 represents 9x more mass than value 1.
        theta.add(batch("a", 1.0, [1.0]))
        theta.add(batch("b", 9.0, [10.0]))
        estimate = QuantileQuery(0.5).execute(theta)
        assert estimate.value == 10.0

    def test_band_contains_point_estimate(self):
        theta = ThetaStore()
        theta.add(batch("s", 2.0, list(range(100))))
        estimate = QuantileQuery(0.9).execute(theta)
        assert estimate.lower <= estimate.value <= estimate.upper

    def test_effective_sample_size_unweighted(self):
        theta = ThetaStore()
        theta.add(batch("s", 1.0, list(range(50))))
        estimate = QuantileQuery(0.5).execute(theta)
        assert estimate.effective_sample_size == pytest.approx(50.0)

    def test_quantile_accuracy_after_sampling(self):
        rng = random.Random(3)
        values = [rng.gauss(100, 15) for _ in range(20_000)]
        items = [StreamItem("s", v) for v in values]
        result = whsamp(items, 2_000, rng=rng)
        theta = ThetaStore()
        theta.extend(result.batches)
        estimate = QuantileQuery(0.5).execute(theta)
        exact = sorted(values)[10_000]
        assert estimate.value == pytest.approx(exact, rel=0.02)
        assert estimate.contains(exact)

    def test_validation(self):
        with pytest.raises(EstimationError):
            QuantileQuery(0.0)
        with pytest.raises(EstimationError):
            QuantileQuery(1.0)
        with pytest.raises(EstimationError):
            QuantileQuery(0.5).execute(ThetaStore())
