#!/usr/bin/env python3
"""Offline link-check for the project documentation.

Validates every markdown link in README.md and docs/**/*.md:

* relative file links must point at an existing file or directory;
* ``#anchor`` fragments (same-file or on a relative markdown target)
  must match a heading in the target document (GitHub slug rules,
  simplified);
* external ``http(s)``/``mailto`` links are reported but not fetched,
  keeping the check deterministic and network-free.

Exit status is non-zero if any link is broken, so CI can gate on it.

Usage: python scripts/check_docs_links.py [file-or-dir ...]
       (defaults to README.md and docs/)
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets are checked the same way. Nested parens are not used in our docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (simplified but sufficient)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    without_code = CODE_FENCE_RE.sub("", markdown)
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(without_code)}


def collect_files(arguments: list[str]) -> list[pathlib.Path]:
    roots = [pathlib.Path(argument) for argument in arguments]
    if not roots:
        roots = [REPO_ROOT / "README.md", REPO_ROOT / "docs"]
    files: list[pathlib.Path] = []
    for root in roots:
        path = root.resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {root}")
            raise SystemExit(2)
    return files


def check_file(source: pathlib.Path) -> list[str]:
    markdown = source.read_text()
    own_slugs = heading_slugs(markdown)
    errors: list[str] = []
    external = 0
    for match in LINK_RE.finditer(CODE_FENCE_RE.sub("", markdown)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            external += 1
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            if fragment and github_slug(fragment) not in own_slugs:
                errors.append(f"{source}: broken anchor #{fragment}")
            continue
        resolved = (source.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{source}: broken link {target}")
            continue
        if fragment:
            if resolved.suffix.lower() != ".md":
                errors.append(
                    f"{source}: anchor on non-markdown target {target}"
                )
            elif github_slug(fragment) not in heading_slugs(
                resolved.read_text()
            ):
                errors.append(f"{source}: broken anchor {target}")
    try:
        label: pathlib.Path | str = source.relative_to(REPO_ROOT)
    except ValueError:
        label = source
    print(f"checked {label} ({external} external links skipped)")
    return errors


def main(argv: list[str]) -> int:
    errors: list[str] = []
    for path in collect_files(argv):
        errors.extend(check_file(path))
    if errors:
        print("\n".join(["", *errors]))
        print(f"\n{len(errors)} broken link(s)")
        return 1
    print("all documentation links OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
