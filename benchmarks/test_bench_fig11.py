"""Benchmark: regenerate Fig. 11 (real-world case studies)."""

from repro.experiments import fig11


def test_bench_fig11(benchmark, bench_scale, results_sink):
    """Asserts the two-dataset accuracy ordering and throughput gain."""
    text = benchmark.pedantic(
        fig11.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    taxi = fig11.run_fig11_accuracy("taxi", [0.1, 0.4], bench_scale)
    pollution = fig11.run_fig11_accuracy("pollution", [0.1, 0.4], bench_scale)
    # Pollution values are more stable -> lower loss curve (paper §VI-B).
    assert pollution[0].approxiot_loss < taxi[0].approxiot_loss
    # Loss shrinks with the fraction on both datasets.
    assert taxi[1].approxiot_loss < taxi[0].approxiot_loss * 2.0

    throughput = fig11.run_fig11_throughput("taxi", [0.1], bench_scale)[0]
    # Paper: ~9-10x over native at the 10% fraction.
    assert throughput.throughput > 3.0 * throughput.native_throughput
