"""Statistics computation at the root node (§III-C).

The root node receives ``(W_out, I)`` pairs — :class:`WeightedBatch`
objects — accumulated in a store ``Theta``. From those it recreates the
original stream statistically:

* per-sub-stream SUM (Eq. 3): sum of each batch's weighted value sum;
* overall SUM* (Eq. 4): sum over sub-streams;
* per-sub-stream count ``c_i,b`` (Eq. 8): sum of ``|I| * W_out``, which
  is an exact (not just unbiased) recovery of the number of items the
  bottom node saw — the invariant the paper proves;
* MEAN* (Eq. 13): a count-weighted combination of per-stratum means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.columns import concat_value_chunks
from repro.core.items import WeightedBatch
from repro.errors import EstimationError

__all__ = ["ThetaStore", "SubstreamEstimate", "estimate_sum", "estimate_mean"]


@dataclass(slots=True)
class SubstreamEstimate:
    """Per-sub-stream quantities derived from the root's sample.

    Attributes:
        substream: The stratum identifier.
        estimated_sum: ``SUM_i`` of Eq. 3.
        estimated_count: ``c_i,b`` recovered through Eq. 8.
        sampled_count: ``zeta`` — number of physical items at the root.
        sampled_values: The raw sampled values (needed for variance) —
            a plain list on the object plane, a contiguous value
            column on the columnar plane.
    """

    substream: str
    estimated_sum: float
    estimated_count: float
    sampled_count: int
    sampled_values: Sequence[float]

    @property
    def estimated_mean(self) -> float:
        """``MEAN_i`` — the ratio estimator SUM_i / c_i,b."""
        if self.estimated_count == 0:
            raise EstimationError(
                f"sub-stream {self.substream!r} has zero estimated count"
            )
        return self.estimated_sum / self.estimated_count


class ThetaStore:
    """The root node's temporary store ``Theta`` of Algorithm 2.

    Collects ``(W_out, sample)`` pairs over one query window and exposes
    the per-sub-stream and global estimators. The store is cleared when
    the window closes (``runJob`` consumed it).
    """

    def __init__(self) -> None:
        self._batches: list[WeightedBatch] = []

    def add(self, batch: WeightedBatch) -> None:
        """Append one weighted batch (line 16 of Algorithm 2)."""
        self._batches.append(batch)

    def extend(self, batches: Iterable[WeightedBatch]) -> None:
        """Append a collection of weighted batches."""
        for batch in batches:
            self.add(batch)

    def merge(self, other: "ThetaStore") -> None:
        """Fold another store's pairs into this one (sharded root merge).

        Theta is mergeable by construction: it is a bag of ``(W_out,
        I)`` pairs and every estimator below is a sum over pairs, so
        the root of a sharded run simply extends its store with each
        worker shard's pairs — Eq. 8 holds per pair, hence for the
        union, and the merged estimates are exactly what a single
        process holding all pairs would compute.
        """
        self._batches.extend(other._batches)

    def clear(self) -> None:
        """Drop the stored pairs after the query consumed them."""
        self._batches.clear()

    @property
    def batches(self) -> list[WeightedBatch]:
        """Snapshot of the stored pairs."""
        return list(self._batches)

    @property
    def substreams(self) -> list[str]:
        """Sorted list of sub-streams present in the store."""
        return sorted({batch.substream for batch in self._batches})

    def __len__(self) -> int:
        return len(self._batches)

    def per_substream(self) -> dict[str, SubstreamEstimate]:
        """Compute :class:`SubstreamEstimate` for every stored stratum.

        Works on either data plane: object batches contribute their
        item values, columnar batches contribute their value columns
        directly (Eq. 3's weighted sums are one vector op each), and a
        stratum's sampled values stay columnar when its batches were.
        """
        sums: dict[str, float] = {}
        counts: dict[str, float] = {}
        chunks: dict[str, list] = {}
        for batch in self._batches:
            key = batch.substream
            sums[key] = sums.get(key, 0.0) + batch.estimated_sum
            counts[key] = counts.get(key, 0.0) + batch.estimated_count
            payload = batch.items
            chunk = (
                [item.value for item in payload]
                if isinstance(payload, list)
                else payload.values
            )
            chunks.setdefault(key, []).append(chunk)
        sampled = {key: concat_value_chunks(chunks[key]) for key in chunks}
        return {
            key: SubstreamEstimate(
                substream=key,
                estimated_sum=sums[key],
                estimated_count=counts[key],
                sampled_count=len(sampled[key]),
                sampled_values=sampled[key],
            )
            for key in sums
        }


def estimate_sum(theta: ThetaStore | Sequence[WeightedBatch]) -> float:
    """``SUM*`` of Eq. 4 — the approximate total over all sub-streams."""
    batches = theta.batches if isinstance(theta, ThetaStore) else list(theta)
    return sum(batch.estimated_sum for batch in batches)


def estimate_mean(theta: ThetaStore | Sequence[WeightedBatch]) -> float:
    """``MEAN*`` of Eq. 13 — count-weighted combination of stratum means.

    Algebraically equal to ``SUM* / sum_i c_i,b``; computed through the
    per-stratum decomposition so the same code path feeds the variance
    estimator.
    """
    store = theta if isinstance(theta, ThetaStore) else _as_store(theta)
    estimates = store.per_substream()
    if not estimates:
        raise EstimationError("cannot estimate a mean from an empty store")
    total_count = sum(est.estimated_count for est in estimates.values())
    if total_count == 0:
        raise EstimationError("all sub-streams have zero estimated count")
    return sum(est.estimated_sum for est in estimates.values()) / total_count


def _as_store(batches: Sequence[WeightedBatch]) -> ThetaStore:
    store = ThetaStore()
    store.extend(batches)
    return store
