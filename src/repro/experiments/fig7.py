"""Figure 7 — bandwidth-saving rate vs sampling fraction.

The paper's result: sampling at the edge saves inter-layer bandwidth
proportionally to the dropped fraction — at a 10 % sampling fraction
the system needs only ~10 % of the link capacity (≈90 % saving), for
both ApproxIoT and SRS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    PAPER_FRACTIONS,
    base_config,
    gaussian_generators,
    saturating_placement,
    uniform_schedule,
)
from repro.metrics.report import Table, format_percent
from repro.simnet.stats import bandwidth_saving
from repro.system.config import ExecutionMode
from repro.system.deployment import DeploymentSimulator

__all__ = ["Fig7Point", "run_fig7", "main"]


@dataclass(frozen=True, slots=True)
class Fig7Point:
    """Bandwidth saving of both sampled systems at one fraction.

    Savings are measured on the links *above* the first sampling layer
    (L1→L2 and L2→root) — the sources always ship everything to their
    first edge node, where sampling begins.
    """

    fraction: float
    approxiot_saving: float
    srs_saving: float


def _upper_boundary_bytes(report_bytes: list[int]) -> int:
    """Bytes on the boundaries downstream of the first sampling layer."""
    return sum(report_bytes[1:])


def run_fig7(
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    n_windows: int = 8,
) -> list[Fig7Point]:
    """Reproduce Fig. 7: savings relative to a native run."""
    fractions = fractions if fractions is not None else PAPER_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = gaussian_generators()
    schedule = uniform_schedule(scale.rate_scale)
    placement = saturating_placement(schedule)

    def boundary_bytes(mode: str, fraction: float) -> int:
        config = base_config(fraction, scale, mode=mode, placement=placement)
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=n_windows
        )
        return _upper_boundary_bytes(simulator.run().boundary_bytes)

    native_bytes = boundary_bytes(ExecutionMode.NATIVE, 1.0)
    points: list[Fig7Point] = []
    for fraction in fractions:
        points.append(
            Fig7Point(
                fraction=fraction,
                approxiot_saving=bandwidth_saving(
                    boundary_bytes(ExecutionMode.APPROXIOT, fraction),
                    native_bytes,
                ),
                srs_saving=bandwidth_saving(
                    boundary_bytes(ExecutionMode.SRS, fraction),
                    native_bytes,
                ),
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print the Fig. 7 table; return the text."""
    table = Table(
        "Fig. 7: bandwidth saving vs sampling fraction",
        ["fraction", "ApproxIoT saving", "SRS saving"],
    )
    for point in run_fig7(scale=scale):
        table.add_row(
            f"{point.fraction:.0%}",
            format_percent(point.approxiot_saving, 1),
            format_percent(point.srs_saving, 1),
        )
    text = table.render()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
