"""Unit tests for broker retention enforcement and consumer lag."""

import pytest

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.broker.producer import Producer
from repro.errors import ConfigurationError, OffsetOutOfRangeError


def loaded_broker(records=20, partitions=1):
    broker = Broker()
    broker.create_topic("t", partitions=partitions)
    producer = Producer(broker)
    for i in range(records):
        producer.send("t", i, key=None)
    return broker


class TestRetention:
    def test_trims_to_newest_records(self):
        broker = loaded_broker(records=20)
        dropped = broker.enforce_retention("t", 5)
        assert dropped == 15
        records = broker.fetch("t", 0, 15)
        assert [r.value for r in records] == [15, 16, 17, 18, 19]

    def test_noop_when_under_limit(self):
        broker = loaded_broker(records=3)
        assert broker.enforce_retention("t", 10) == 0

    def test_lagging_consumer_hits_out_of_range(self):
        broker = loaded_broker(records=20)
        consumer = Consumer(broker, "g", ["t"])
        broker.enforce_retention("t", 2)
        with pytest.raises(OffsetOutOfRangeError):
            consumer.poll()

    def test_validation(self):
        broker = loaded_broker()
        with pytest.raises(ConfigurationError):
            broker.enforce_retention("t", -1)


class TestConsumerLag:
    def test_full_lag_before_consuming(self):
        broker = loaded_broker(records=10)
        broker.join_group("g", "m", ["t"])
        assert broker.consumer_lag("g", "t") == {0: 10}

    def test_lag_shrinks_after_commit(self):
        broker = loaded_broker(records=10)
        consumer = Consumer(broker, "g", ["t"])
        consumer.poll()
        consumer.commit()
        assert broker.consumer_lag("g", "t") == {0: 0}

    def test_lag_grows_with_new_records(self):
        broker = loaded_broker(records=5)
        consumer = Consumer(broker, "g", ["t"])
        consumer.poll()
        consumer.commit()
        Producer(broker).send("t", 99)
        assert broker.consumer_lag("g", "t") == {0: 1}

    def test_multi_partition_lag(self):
        broker = loaded_broker(records=10, partitions=2)
        broker.join_group("g", "m", ["t"])
        lags = broker.consumer_lag("g", "t")
        assert sum(lags.values()) == 10
        assert set(lags) == {0, 1}
