"""Window definitions for stream aggregation.

Tumbling windows (the paper's per-interval computation: "the entire
process repeats for each time interval as the computation window
slides") and hopping/sliding windows for the more general DSL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["TumblingWindow", "HoppingWindow", "window_start"]


@dataclass(frozen=True, slots=True)
class TumblingWindow:
    """Fixed, non-overlapping windows of ``size`` seconds."""

    size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"window size must be positive, got {self.size}")

    def window_for(self, timestamp: float) -> tuple[float, float]:
        """The [start, end) window containing a timestamp."""
        start = (timestamp // self.size) * self.size
        return (start, start + self.size)

    def windows_for(self, timestamp: float) -> list[tuple[float, float]]:
        """Tumbling windows never overlap: exactly one window matches."""
        return [self.window_for(timestamp)]


@dataclass(frozen=True, slots=True)
class HoppingWindow:
    """Overlapping windows of ``size`` seconds advancing by ``hop``."""

    size: float
    hop: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"window size must be positive, got {self.size}")
        if not 0 < self.hop <= self.size:
            raise ConfigurationError(
                f"hop must be in (0, size], got hop={self.hop} size={self.size}"
            )

    def windows_for(self, timestamp: float) -> list[tuple[float, float]]:
        """All [start, end) windows containing a timestamp."""
        latest_start = (timestamp // self.hop) * self.hop
        windows: list[tuple[float, float]] = []
        start = latest_start
        while start + self.size > timestamp and start >= 0:
            if start <= timestamp:
                windows.append((start, start + self.size))
            start -= self.hop
        # Handle windows straddling zero for small timestamps.
        if not windows and timestamp >= 0:
            windows.append((0.0, self.size))
        return sorted(windows)


def window_start(timestamp: float, size: float) -> float:
    """Start of the tumbling window of width ``size`` containing ``timestamp``."""
    if size <= 0:
        raise ConfigurationError(f"window size must be positive, got {size}")
    return (timestamp // size) * size
