"""Unit tests for stratum budget allocation policies."""

import pytest

from repro.core.stratified import (
    allocate_equal,
    allocate_proportional,
    get_allocation_policy,
)
from repro.errors import SamplingError


class TestEqualAllocation:
    def test_even_split(self):
        alloc = allocate_equal(12, {"a": 100, "b": 100, "c": 100})
        assert alloc == {"a": 4, "b": 4, "c": 4}

    def test_remainder_goes_to_largest(self):
        alloc = allocate_equal(10, {"small": 10, "big": 1000, "mid": 100})
        assert sum(alloc.values()) == 10
        assert alloc["big"] == 4  # base 3 + remainder slot
        assert alloc["small"] == 3

    def test_minimum_one_slot_each(self):
        alloc = allocate_equal(2, {"a": 5, "b": 5, "c": 5})
        assert all(v >= 1 for v in alloc.values())

    def test_single_stratum_gets_everything(self):
        assert allocate_equal(7, {"only": 3}) == {"only": 7}

    def test_validation(self):
        with pytest.raises(SamplingError):
            allocate_equal(0, {"a": 1})
        with pytest.raises(SamplingError):
            allocate_equal(5, {})
        with pytest.raises(SamplingError):
            allocate_equal(5, {"a": -1})


class TestProportionalAllocation:
    def test_proportional_split(self):
        alloc = allocate_proportional(10, {"a": 900, "b": 100})
        assert sum(alloc.values()) == 10
        assert alloc["a"] == 9
        assert alloc["b"] == 1

    def test_floor_of_one(self):
        alloc = allocate_proportional(10, {"a": 10000, "b": 1})
        assert alloc["b"] >= 1

    def test_zero_counts_fall_back_to_equal(self):
        alloc = allocate_proportional(6, {"a": 0, "b": 0})
        assert alloc == {"a": 3, "b": 3}

    def test_total_not_below_budget_when_feasible(self):
        alloc = allocate_proportional(100, {"a": 10, "b": 20, "c": 70})
        assert sum(alloc.values()) >= 100


class TestPolicyRegistry:
    def test_lookup(self):
        assert get_allocation_policy("equal") is allocate_equal
        assert get_allocation_policy("proportional") is allocate_proportional

    def test_unknown_policy(self):
        with pytest.raises(SamplingError, match="unknown allocation policy"):
            get_allocation_policy("nope")
