"""Unit tests for the per-node drivers (Algorithm 2)."""

import random

import pytest

from repro.core.items import StreamItem, WeightedBatch
from repro.core.node import RootNode, SamplingNode
from repro.errors import PipelineError


def make_items(substream, values):
    return [StreamItem(substream, float(v)) for v in values]


class TestSamplingNode:
    def test_forwards_sampled_batches(self):
        outbox = []
        node = SamplingNode("edge", 10, outbox.append, rng=random.Random(1))
        node.receive_raw(make_items("a", range(100)))
        node.close_interval()
        assert len(outbox) == 1
        assert outbox[0].substream == "a"
        assert len(outbox[0]) == 10
        assert outbox[0].weight == pytest.approx(10.0)

    def test_multiple_substreams_forwarded_separately(self):
        outbox = []
        node = SamplingNode("edge", 10, outbox.append, rng=random.Random(2))
        node.receive_raw(make_items("a", range(50)) + make_items("b", range(50)))
        node.close_interval()
        assert {b.substream for b in outbox} == {"a", "b"}

    def test_weight_composition_through_receive(self):
        outbox = []
        node = SamplingNode("edge", 1, outbox.append, rng=random.Random(3))
        node.receive(WeightedBatch("s", 1.5, make_items("s", [5, 2])))
        node.close_interval()
        # Figure 3 node B: 2 items into reservoir 1, W_in 1.5 -> W_out 3.
        assert outbox[0].weight == pytest.approx(3.0)

    def test_stale_weight_used_next_interval(self):
        """Figure 3: items 3,4 arrive next interval with no weight."""
        outbox = []
        node = SamplingNode("edge", 1, outbox.append, rng=random.Random(4))
        node.receive(WeightedBatch("s", 1.5, make_items("s", [5, 2])))
        node.close_interval()  # weight becomes 3.0
        node.receive_raw([])
        node.receive(WeightedBatch("s", 3.0, make_items("s", [3, 4])))
        node.close_interval()
        assert outbox[-1].weight == pytest.approx(6.0)

    def test_empty_interval_forwards_nothing(self):
        outbox = []
        node = SamplingNode("edge", 10, outbox.append)
        node.close_interval()
        assert outbox == []
        assert node.intervals_processed == 1

    def test_pending_items_counter(self):
        node = SamplingNode("edge", 10, lambda b: None)
        node.receive_raw(make_items("a", range(7)))
        assert node.pending_items == 7
        node.close_interval()
        assert node.pending_items == 0

    def test_sample_size_setter_validation(self):
        node = SamplingNode("edge", 10, lambda b: None)
        node.sample_size = 3
        assert node.sample_size == 3
        with pytest.raises(PipelineError):
            node.sample_size = -1
        with pytest.raises(PipelineError):
            SamplingNode("edge", 0, lambda b: None)


class TestRootNode:
    def test_accumulates_into_theta(self):
        root = RootNode("root", 10, rng=random.Random(5))
        root.receive_raw(make_items("a", range(100)))
        root.close_interval()
        assert len(root.theta) == 1

    def test_query_result_structure(self):
        root = RootNode("root", 1000, rng=random.Random(6))
        root.receive_raw(make_items("a", [1, 2, 3, 4]))
        root.close_interval()
        result = root.run_query()
        assert result.sum.value == pytest.approx(10.0)
        assert result.mean.value == pytest.approx(2.5)
        assert result.sampled_items == 4
        assert result.estimated_items == pytest.approx(4.0)
        assert result.window_index == 1

    def test_query_clears_theta(self):
        root = RootNode("root", 10, rng=random.Random(7))
        root.receive_raw(make_items("a", range(20)))
        root.close_interval()
        root.run_query()
        assert len(root.theta) == 0
        with pytest.raises(PipelineError):
            root.run_query()

    def test_window_index_increments(self):
        root = RootNode("root", 10, rng=random.Random(8))
        for expected in (1, 2, 3):
            root.receive_raw(make_items("a", range(5)))
            root.close_interval()
            assert root.run_query().window_index == expected

    def test_estimate_recovers_total_sum_approximately(self):
        rng = random.Random(9)
        root = RootNode("root", 200, rng=rng)
        values = [rng.gauss(50, 5) for _ in range(5000)]
        root.receive_raw(make_items("a", values))
        root.close_interval()
        result = root.run_query()
        assert result.sum.value == pytest.approx(sum(values), rel=0.05)
        assert result.estimated_items == pytest.approx(5000.0)


class TestTwoLayerChain:
    def test_edge_to_root_end_to_end(self):
        """8 sources worth of data through edge -> root recovers counts."""
        rng = random.Random(10)
        root = RootNode("root", 50, rng=rng)
        edge = SamplingNode("edge", 100, root.receive, rng=rng)
        for substream in ("a", "b", "c", "d"):
            edge.receive_raw(make_items(substream, range(250)))
        edge.close_interval()
        root.close_interval()
        result = root.run_query()
        # 4 sub-streams x 250 items each.
        assert result.estimated_items == pytest.approx(1000.0)

    def test_three_layer_chain_preserves_counts(self):
        rng = random.Random(11)
        root = RootNode("root", 20, rng=rng)
        mid = SamplingNode("mid", 40, root.receive, rng=rng)
        leaf = SamplingNode("leaf", 80, mid.receive, rng=rng)
        leaf.receive_raw(make_items("s", range(640)))
        leaf.close_interval()
        mid.close_interval()
        root.close_interval()
        result = root.run_query()
        assert result.estimated_items == pytest.approx(640.0)
