"""Unit tests for the query layer and the data-parallel runner."""

import random

import pytest

from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.core.whs import whsamp
from repro.errors import EstimationError
from repro.queries.query import (
    CountQuery,
    MeanQuery,
    PerSubstreamSumQuery,
    SumQuery,
)
from repro.queries.runner import partition_theta, run_job


def batch(substream, weight, values):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(v)) for v in values]
    )


def sample_theta():
    theta = ThetaStore()
    theta.add(batch("a", 2.0, [1.0, 2.0, 3.0]))
    theta.add(batch("b", 3.0, [10.0, 20.0]))
    theta.add(batch("c", 1.0, [5.0]))
    return theta


class TestQueries:
    def test_sum_query(self):
        result = SumQuery().execute(sample_theta())
        assert result.value == pytest.approx(2 * 6 + 3 * 30 + 5)

    def test_mean_query(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [4.0, 6.0]))
        result = MeanQuery().execute(theta)
        assert result.value == pytest.approx(5.0)

    def test_count_query_exact(self):
        result = CountQuery().execute(sample_theta())
        assert result.value == pytest.approx(3 * 2 + 2 * 3 + 1)
        assert result.error == 0.0

    def test_count_query_matches_true_count_after_sampling(self):
        rng = random.Random(1)
        items = [StreamItem("s", rng.random()) for _ in range(500)]
        result = whsamp(items, 50, rng=rng)
        theta = ThetaStore()
        theta.extend(result.batches)
        count = CountQuery().execute(theta)
        assert count.value == pytest.approx(500.0)

    def test_per_substream_grouped(self):
        query = PerSubstreamSumQuery()
        grouped = query.execute_grouped(sample_theta())
        assert set(grouped) == {"a", "b", "c"}
        assert grouped["b"].value == pytest.approx(90.0)

    def test_empty_store_raises(self):
        with pytest.raises(EstimationError):
            CountQuery().execute(ThetaStore())
        with pytest.raises(EstimationError):
            PerSubstreamSumQuery().execute_grouped(ThetaStore())


class TestPartitioning:
    def test_partitions_preserve_batches(self):
        theta = sample_theta()
        shards = partition_theta(theta, 4)
        total = sum(len(shard) for shard in shards)
        assert total == len(theta)

    def test_substream_locality(self):
        """All batches of one sub-stream land in one partition."""
        theta = ThetaStore()
        for i in range(10):
            theta.add(batch("a", 1.0 + i, [float(i)]))
        shards = partition_theta(theta, 4)
        non_empty = [s for s in shards if len(s) > 0]
        assert len(non_empty) == 1
        assert len(non_empty[0]) == 10

    def test_partition_count_validated(self):
        with pytest.raises(EstimationError):
            partition_theta(sample_theta(), 0)


class TestRunJob:
    def test_parallel_sum_matches_direct(self):
        theta = sample_theta()
        direct = SumQuery().execute(theta)
        parallel = run_job(SumQuery(), theta, partitions=3)
        assert parallel.value == pytest.approx(direct.value)
        assert parallel.variance == pytest.approx(direct.variance)
        assert parallel.error == pytest.approx(direct.error)

    def test_parallel_count_matches_direct(self):
        theta = sample_theta()
        direct = CountQuery().execute(theta)
        parallel = run_job(CountQuery(), theta, partitions=2)
        assert parallel.value == pytest.approx(direct.value)

    def test_mean_falls_back_to_direct(self):
        theta = sample_theta()
        direct = MeanQuery().execute(theta)
        parallel = run_job(MeanQuery(), theta, partitions=3)
        assert parallel.value == pytest.approx(direct.value)

    def test_empty_store_raises(self):
        with pytest.raises(EstimationError):
            run_job(SumQuery(), ThetaStore())

    def test_single_partition_equivalence(self):
        theta = sample_theta()
        assert run_job(SumQuery(), theta, partitions=1).value == pytest.approx(
            SumQuery().execute(theta).value
        )
