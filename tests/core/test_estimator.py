"""Unit tests for the root-node estimators (§III-C)."""

import pytest

from repro.core.estimator import ThetaStore, estimate_mean, estimate_sum
from repro.core.items import StreamItem, WeightedBatch
from repro.errors import EstimationError


def batch(substream, weight, values):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(v)) for v in values]
    )


class TestThetaStore:
    def test_paper_figure3_example(self):
        """Theta = {(3, {5}), (3, {3})} -> SUM = 3*5 + 3*3 = 24."""
        theta = ThetaStore()
        theta.add(batch("s", 3.0, [5]))
        theta.add(batch("s", 3.0, [3]))
        assert estimate_sum(theta) == pytest.approx(24.0)

    def test_per_substream_aggregation(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1, 2]))
        theta.add(batch("a", 4.0, [3]))
        theta.add(batch("b", 1.0, [10]))
        per = theta.per_substream()
        assert per["a"].estimated_sum == pytest.approx(2 * 3 + 4 * 3)
        assert per["a"].estimated_count == pytest.approx(2 * 2 + 4 * 1)
        assert per["a"].sampled_count == 3
        assert per["b"].estimated_sum == pytest.approx(10.0)

    def test_substreams_sorted(self):
        theta = ThetaStore()
        theta.add(batch("z", 1.0, [1]))
        theta.add(batch("a", 1.0, [1]))
        assert theta.substreams == ["a", "z"]

    def test_clear(self):
        theta = ThetaStore()
        theta.add(batch("a", 1.0, [1]))
        theta.clear()
        assert len(theta) == 0

    def test_extend(self):
        theta = ThetaStore()
        theta.extend([batch("a", 1.0, [1]), batch("b", 1.0, [2])])
        assert len(theta) == 2


class TestEstimators:
    def test_sum_without_sampling_is_exact(self):
        theta = ThetaStore()
        theta.add(batch("a", 1.0, [1, 2, 3]))
        assert estimate_sum(theta) == pytest.approx(6.0)

    def test_sum_accepts_sequence(self):
        assert estimate_sum([batch("a", 2.0, [5])]) == pytest.approx(10.0)

    def test_mean_single_stratum(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1, 3]))  # sum=8, count=4 -> mean=2
        assert estimate_mean(theta) == pytest.approx(2.0)

    def test_mean_weighted_across_strata(self):
        theta = ThetaStore()
        theta.add(batch("a", 1.0, [0, 0]))       # count 2, sum 0
        theta.add(batch("b", 1.0, [10, 10]))     # count 2, sum 20
        assert estimate_mean(theta) == pytest.approx(5.0)

    def test_mean_equals_sum_over_count(self):
        theta = ThetaStore()
        theta.add(batch("a", 3.0, [2, 4, 6]))
        theta.add(batch("b", 2.0, [1, 1]))
        per = theta.per_substream()
        total_count = sum(e.estimated_count for e in per.values())
        assert estimate_mean(theta) == pytest.approx(
            estimate_sum(theta) / total_count
        )

    def test_mean_empty_store_raises(self):
        with pytest.raises(EstimationError):
            estimate_mean(ThetaStore())

    def test_substream_mean_property(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [3, 5]))
        est = theta.per_substream()["a"]
        assert est.estimated_mean == pytest.approx(4.0)

    def test_negative_weight_rejected_at_batch(self):
        with pytest.raises(ValueError):
            WeightedBatch("a", -1.0, [])


class TestMerge:
    def test_merged_store_equals_union_estimates(self):
        left = ThetaStore()
        left.add(batch("a", 2.0, [1.0, 2.0]))
        right = ThetaStore()
        right.add(batch("a", 3.0, [5.0]))
        right.add(batch("b", 1.0, [7.0]))
        union = ThetaStore()
        for source in (left, right):
            union.extend(source.batches)
        left.merge(right)
        assert estimate_sum(left) == estimate_sum(union)
        assert len(left) == 3
        assert left.substreams == ["a", "b"]
