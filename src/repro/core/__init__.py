"""Core algorithms of the ApproxIoT reproduction.

This subpackage contains the paper's primary contribution: weighted
hierarchical sampling (Algorithm 1), the per-node driver (Algorithm 2),
the SUM/MEAN estimators of §III-C, the error bounds of §III-D, and the
distributed-execution extension of §III-E, together with the sampling
primitives they build on (reservoir sampling, coin-flip SRS, stratum
budget allocation) and the budget cost functions.
"""

from repro.core.columns import (
    ColumnarBatch,
    group_payload,
    masked_sum,
    payload_timestamps,
)
from repro.core.cost import (
    AdaptiveErrorBudget,
    FractionBudget,
    ThroughputBudget,
    neyman_factors,
)
from repro.core.error_bounds import (
    ApproximateResult,
    confidence_multiplier,
    estimate_mean_with_error,
    estimate_sum_with_error,
    mean_variance,
    sample_variance,
    substream_sum_variance,
    sum_variance,
)
from repro.core.estimator import (
    SubstreamEstimate,
    ThetaStore,
    estimate_mean,
    estimate_sum,
)
from repro.core.fastpath import (
    BACKENDS,
    NumpyReservoirSampler,
    make_reservoir_sampler,
    numpy_available,
    resolve_backend,
)
from repro.core.items import StreamItem, WeightedBatch, group_by_substream
from repro.core.node import QueryResult, RootNode, SamplingNode
from repro.core.reservoir import (
    ReservoirSampler,
    SkipAheadReservoirSampler,
    reservoir_sample,
)
from repro.core.srs import CoinFlipSampler, horvitz_thompson_sum, srs_sample
from repro.core.stratified import (
    allocate_equal,
    allocate_fair_fill,
    allocate_proportional,
    allocate_weighted,
    get_allocation_policy,
)
from repro.core.weights import WeightMap, local_weight, output_weight
from repro.core.whs import WeightedHierarchicalSampler, WHSampResult, whsamp
from repro.core.worker import ParallelSamplingNode, SubstreamWorker, WorkerPool

__all__ = [
    "AdaptiveErrorBudget",
    "ApproximateResult",
    "BACKENDS",
    "CoinFlipSampler",
    "ColumnarBatch",
    "FractionBudget",
    "NumpyReservoirSampler",
    "ParallelSamplingNode",
    "QueryResult",
    "ReservoirSampler",
    "RootNode",
    "SamplingNode",
    "SkipAheadReservoirSampler",
    "StreamItem",
    "SubstreamEstimate",
    "SubstreamWorker",
    "ThetaStore",
    "ThroughputBudget",
    "WHSampResult",
    "WeightMap",
    "WeightedBatch",
    "WeightedHierarchicalSampler",
    "WorkerPool",
    "allocate_equal",
    "allocate_fair_fill",
    "allocate_proportional",
    "allocate_weighted",
    "confidence_multiplier",
    "estimate_mean",
    "estimate_mean_with_error",
    "estimate_sum",
    "estimate_sum_with_error",
    "get_allocation_policy",
    "group_by_substream",
    "group_payload",
    "masked_sum",
    "payload_timestamps",
    "horvitz_thompson_sum",
    "local_weight",
    "make_reservoir_sampler",
    "mean_variance",
    "neyman_factors",
    "numpy_available",
    "output_weight",
    "reservoir_sample",
    "resolve_backend",
    "sample_variance",
    "srs_sample",
    "substream_sum_variance",
    "sum_variance",
    "whsamp",
]
