"""Statistical pipeline runner — the accuracy experiments' engine.

Runs the full sampling tree *algorithmically* (no simulated network or
hosts): per window, sources emit batches which traverse the logical
tree bottom-up; every sampling node runs weighted hierarchical sampling
with its local budget; the root estimates SUM with error bounds. An
SRS baseline (coin-flip at the first edge layer, Horvitz-Thompson at
the root) and the exact ground truth are computed over the *same*
emitted items, so accuracy-loss comparisons are apples-to-apples.

This is the engine behind Figs. 5, 10 and 11(a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.cost import FractionBudget
from repro.core.error_bounds import ApproximateResult, estimate_sum_with_error
from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.core.srs import CoinFlipSampler
from repro.core.whs import whsamp_batches
from repro.errors import PipelineError
from repro.system.config import PipelineConfig
from repro.topology.tree import TreeNode
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator, Source

__all__ = ["WindowOutcome", "RunOutcome", "StatisticalRunner", "accuracy_loss"]


def accuracy_loss(approx: float, exact: float) -> float:
    """The paper's accuracy metric: ``|approx - exact| / exact`` (in %)."""
    if exact == 0:
        raise PipelineError("accuracy loss undefined for a zero exact value")
    return 100.0 * abs(approx - exact) / abs(exact)


@dataclass(frozen=True, slots=True)
class WindowOutcome:
    """Per-window results across the three systems.

    Attributes:
        window_index: Sequence number of the window.
        exact_sum: Ground-truth sum over every emitted item.
        approx_sum: ApproxIoT's estimate with error bounds.
        srs_sum: The SRS baseline's Horvitz-Thompson estimate.
        items_emitted: Ground-truth item count for the window.
        items_sampled: Items physically reaching the root (ApproxIoT).
    """

    window_index: int
    exact_sum: float
    approx_sum: ApproximateResult
    srs_sum: float
    items_emitted: int
    items_sampled: int

    @property
    def approxiot_loss(self) -> float:
        """ApproxIoT accuracy loss (%) for this window."""
        return accuracy_loss(self.approx_sum.value, self.exact_sum)

    @property
    def srs_loss(self) -> float:
        """SRS accuracy loss (%) for this window."""
        return accuracy_loss(self.srs_sum, self.exact_sum)


@dataclass
class RunOutcome:
    """All windows of one run plus aggregate accuracy."""

    windows: list[WindowOutcome] = field(default_factory=list)

    @property
    def mean_approxiot_loss(self) -> float:
        """Mean ApproxIoT accuracy loss (%) across windows."""
        if not self.windows:
            raise PipelineError("run produced no windows")
        return sum(w.approxiot_loss for w in self.windows) / len(self.windows)

    @property
    def mean_srs_loss(self) -> float:
        """Mean SRS accuracy loss (%) across windows."""
        if not self.windows:
            raise PipelineError("run produced no windows")
        return sum(w.srs_loss for w in self.windows) / len(self.windows)

    @property
    def realized_fraction(self) -> float:
        """Fraction of emitted items that physically reached the root."""
        emitted = sum(w.items_emitted for w in self.windows)
        sampled = sum(w.items_sampled for w in self.windows)
        if emitted == 0:
            raise PipelineError("run emitted no items")
        return sampled / emitted


class StatisticalRunner:
    """Drives the logical tree over windows of generated data."""

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
    ) -> None:
        self._config = config
        self._schedule = schedule
        self._tree = config.tree
        self._backend = config.resolved_backend
        self._rng = random.Random(config.seed)
        self._sources = self._build_sources(schedule, generators)
        self._source_rates = {
            source_node.name: self._sources[source_node.name].rate_per_second
            for source_node in self._tree.sources
        }
        self._windows_run = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_sources(
        self,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
    ) -> dict[str, Source]:
        """Assign sub-streams round-robin across the tree's sources.

        With 8 sources and 4 sub-streams each sub-stream is produced by
        2 sources; the schedule's per-sub-stream rate is split evenly
        among them.
        """
        substreams = sorted(schedule.rates)
        missing = [s for s in substreams if s not in generators]
        if missing:
            raise PipelineError(f"no generators for sub-streams: {missing}")
        source_nodes = self._tree.sources
        owners: dict[str, list[TreeNode]] = {s: [] for s in substreams}
        for index, node in enumerate(source_nodes):
            owners[substreams[index % len(substreams)]].append(node)
        sources: dict[str, Source] = {}
        for substream, nodes in owners.items():
            if not nodes:
                raise PipelineError(
                    f"tree has fewer sources than sub-streams; "
                    f"{substream!r} has no producer"
                )
            per_source_rate = schedule.rates[substream] / len(nodes)
            for node in nodes:
                sources[node.name] = Source(
                    node.name,
                    generators[substream],
                    per_source_rate,
                    rng=random.Random(self._rng.getrandbits(64)),
                )
        return sources

    def _node_budget(self, node_name: str) -> int:
        """A sampling node's per-interval budget (the cost function).

        Sized so the node passes on ``fraction`` of the *original*
        volume of its subtree. In steady state, layers above the first
        receive roughly their budget and pass items through (weight 1);
        under rate fluctuation they re-sample, which is where the
        hierarchy earns its keep.
        """
        subtree_rate = sum(
            self._source_rates[source.name]
            for source in self._tree.sources
            if node_name in self._tree.path_to_root(source.name)
        )
        budget = FractionBudget(self._config.sampling_fraction)
        return budget.sample_size(
            int(round(subtree_rate * self._config.window_seconds))
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_window(self) -> WindowOutcome:
        """Run one window through ApproxIoT, SRS and the exact path."""
        window_start = self._windows_run * self._config.window_seconds
        emitted: dict[str, list[StreamItem]] = {}
        all_items: list[StreamItem] = []
        for node in self._tree.sources:
            batch = self._sources[node.name].emit_interval(
                window_start, self._config.window_seconds
            )
            emitted[node.name] = batch
            all_items.extend(batch)
        if not all_items:
            raise PipelineError("sources emitted no items this window")

        exact_sum = sum(item.value for item in all_items)
        approx = self._run_approxiot(emitted)
        srs_sum = self._run_srs(emitted)
        self._windows_run += 1
        return WindowOutcome(
            window_index=self._windows_run,
            exact_sum=exact_sum,
            approx_sum=approx[0],
            srs_sum=srs_sum,
            items_emitted=len(all_items),
            items_sampled=approx[1],
        )

    def run(self, windows: int) -> RunOutcome:
        """Run several windows and collect the outcomes."""
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = RunOutcome()
        for _ in range(windows):
            outcome.windows.append(self.run_window())
        return outcome

    def _run_approxiot(
        self, emitted: dict[str, list[StreamItem]]
    ) -> tuple[ApproximateResult, int]:
        """Propagate one window bottom-up with WHSamp at every node."""
        # Inbox per node: weighted batches awaiting that node's interval.
        inbox: dict[str, list[WeightedBatch]] = {
            node.name: [] for node in self._tree.sampling_nodes
        }
        for source_node in self._tree.sources:
            batch_items = emitted[source_node.name]
            if not batch_items:
                continue
            parent = source_node.parent
            assert parent is not None
            by_substream: dict[str, list[StreamItem]] = {}
            for item in batch_items:
                by_substream.setdefault(item.substream, []).append(item)
            for substream, items in by_substream.items():
                inbox[parent].append(WeightedBatch(substream, 1.0, items))

        theta = ThetaStore()
        for node in self._tree.sampling_nodes:  # bottom-up, root last
            batches = inbox[node.name]
            if not batches:
                continue
            result = whsamp_batches(
                batches,
                self._node_budget(node.name),
                policy=self._config.allocation_policy,
                rng=self._rng,
                backend=self._backend,
            )
            if node.name == "root":
                theta.extend(result.batches)
            else:
                assert node.parent is not None
                inbox[node.parent].extend(result.batches)

        sampled = sum(len(batch) for batch in theta.batches)
        approx = estimate_sum_with_error(theta, self._config.confidence)
        return approx, sampled

    def _run_srs(self, emitted: dict[str, list[StreamItem]]) -> float:
        """The baseline: coin-flip at the first edge layer, HT at root."""
        fraction = self._config.sampling_fraction
        kept_values: list[float] = []
        for batch in emitted.values():
            sampler = CoinFlipSampler(
                fraction, random.Random(self._rng.getrandbits(64))
            )
            kept_values.extend(item.value for item in sampler.filter(batch))
        return sum(kept_values) / fraction
