"""Unit tests for the experiment scaffolding."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import (
    ExperimentScale,
    PAPER_FRACTIONS,
    gaussian_generators,
    poisson_generators,
    saturating_placement,
    uniform_schedule,
)


class TestScale:
    def test_quick_smaller_than_bench(self):
        assert ExperimentScale.quick().rate_scale < ExperimentScale.bench().rate_scale

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(rate_scale=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(windows=0)


class TestFactories:
    def test_paper_fractions(self):
        assert PAPER_FRACTIONS == [0.1, 0.2, 0.4, 0.6, 0.8, 0.9]

    def test_generator_maps_cover_abcd(self):
        assert set(gaussian_generators()) == {"A", "B", "C", "D"}
        assert set(poisson_generators()) == {"A", "B", "C", "D"}

    def test_uniform_schedule_scaling(self):
        schedule = uniform_schedule(0.1)
        assert schedule.rates["A"] == 2500.0
        assert schedule.total_rate == 10_000.0

    def test_saturating_placement_root_below_offered(self):
        schedule = uniform_schedule(0.1)
        spec = saturating_placement(schedule, headroom=10.0)
        root_rate = spec.layer_service_rates[-1]
        assert root_rate == pytest.approx(schedule.total_rate / 10.0)
        # Edges can absorb the whole offered load in aggregate (4 nodes).
        edge_rate = spec.layer_service_rates[1]
        assert 4 * edge_rate > schedule.total_rate

    def test_headroom_validated(self):
        with pytest.raises(ConfigurationError):
            saturating_placement(uniform_schedule(0.1), headroom=1.0)
