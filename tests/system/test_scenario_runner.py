"""Scenario determinism suite + ScenarioRunner quality/validation tests.

The contracts under test:

* a fixed ``(seed, scenario, workers)`` triple is bit-reproducible
  across repeats, on either data plane;
* inline shard execution equals real multi-process execution under
  churn (the scenario timeline is a pure function of the window
  index, recomputed identically in every process);
* the ``steady`` scenario is bit-for-bit the static (no-scenario) run;
* for every built-in scenario whose data stays *visible* to the
  estimator (everything except ``brownout``, which destroys and
  delays batches on the wire), mean accuracy loss stays within the
  mean reported §III-D error bound at quick scale;
* knob combinations that cannot work fail loudly, and worker shards
  are reaped cleanly even under churn.
"""

import multiprocessing

import pytest

from repro.engine.sharding import ShardedEngineRunner
from repro.errors import ConfigurationError, PipelineError
from repro.scenarios import (
    LinkDegrade,
    NodeChurn,
    Scenario,
    get_scenario,
    scenario_names,
)
from repro.system.config import PipelineConfig
from repro.system.scenarios import ScenarioRunner
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

SCHEDULE = RateSchedule(
    "scenario-test", {"A": 240.0, "B": 240.0, "C": 240.0, "D": 240.0}
)

#: Built-ins whose emitted data all reaches the estimator; ``brownout``
#: destroys/delays batches mid-flight, and no estimator can bound data
#: it never saw.
VISIBLE_DATA_SCENARIOS = [
    name for name in scenario_names() if name != "brownout"
]


def generators():
    return {g.name: g for g in paper_gaussian_substreams()}


def config_for(workers=1, plane="objects", seed=13, fraction=0.2,
               transport="auto"):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend="python",
        data_plane=plane,
        workers=workers,
        transport=transport,
    )


def window_tuple(w):
    return (
        w.window, w.items_emitted, w.items_sampled, w.items_dropped,
        w.exact_sum, w.approx_sum, w.error_bound, w.srs_loss,
    )


def run_scenario(name_or_scenario, **config_kwargs):
    scenario = (
        get_scenario(name_or_scenario)
        if isinstance(name_or_scenario, str) else name_or_scenario
    )
    with ScenarioRunner(
        config_for(**config_kwargs), SCHEDULE, generators(), scenario
    ) as runner:
        return runner.run()


class TestDeterminism:
    @pytest.mark.parametrize("plane", ["objects", "columnar"])
    def test_fixed_seed_scenario_is_bit_reproducible(self, plane):
        runs = [
            run_scenario("brownout", plane=plane, seed=13) for _ in range(2)
        ]
        assert [window_tuple(w) for w in runs[0].windows] == [
            window_tuple(w) for w in runs[1].windows
        ]

    def test_fixed_seed_scenario_workers_is_bit_reproducible(self):
        runs = [
            run_scenario("churn", workers=2, seed=13) for _ in range(2)
        ]
        assert [window_tuple(w) for w in runs[0].windows] == [
            window_tuple(w) for w in runs[1].windows
        ]

    def test_different_seeds_differ(self):
        a = run_scenario("flash-crowd", seed=13)
        b = run_scenario("flash-crowd", seed=14)
        assert [window_tuple(w) for w in a.windows] != [
            window_tuple(w) for w in b.windows
        ]

    def test_inline_equals_multiprocess_under_churn(self):
        scenario = get_scenario("churn")
        inline = ShardedEngineRunner(
            config_for(workers=2), SCHEDULE, generators(),
            scenario=scenario, inline=True,
        ).run(scenario.windows)
        with ShardedEngineRunner(
            config_for(workers=2), SCHEDULE, generators(), scenario=scenario
        ) as runner:
            processes = runner.run(scenario.windows)
        key = lambda w: (  # noqa: E731 - local comparison key
            w.window_index, w.items_emitted, w.items_sampled,
            w.items_dropped, w.exact_sum, w.srs_sum,
            w.approx_sum.value, w.approx_sum.error,
        )
        assert [key(w) for w in inline.windows] == [
            key(w) for w in processes.windows
        ]

    def test_steady_scenario_is_the_static_run_bitwise(self):
        with StatisticalRunner(
            config_for(), SCHEDULE, generators(),
            scenario=get_scenario("steady"),
        ) as with_scenario:
            a = with_scenario.run(6)
        with StatisticalRunner(config_for(), SCHEDULE, generators()) as static:
            b = static.run(6)
        key = lambda w: (  # noqa: E731 - local comparison key
            w.window_index, w.items_emitted, w.items_sampled,
            w.exact_sum, w.srs_sum, w.approx_sum.value, w.approx_sum.error,
        )
        assert [key(w) for w in a.windows] == [key(w) for w in b.windows]


class TestQualityOverTime:
    @pytest.mark.parametrize("name", VISIBLE_DATA_SCENARIOS)
    def test_mean_loss_within_mean_reported_bound(self, name):
        outcome = run_scenario(name, seed=13)
        assert len(outcome.windows) == get_scenario(name).windows
        assert outcome.mean_approxiot_loss <= outcome.mean_bound_pct, (
            f"{name}: mean loss {outcome.mean_approxiot_loss:.3f}% "
            f"exceeds mean bound {outcome.mean_bound_pct:.3f}%"
        )

    @pytest.mark.parametrize("name", ["flash-crowd", "churn"])
    def test_visible_scenarios_within_bound_under_sharding(self, name):
        outcome = run_scenario(name, workers=2, seed=13)
        assert outcome.mean_approxiot_loss <= outcome.mean_bound_pct

    def test_brownout_spikes_only_where_the_wire_is_degraded(self):
        outcome = run_scenario("brownout", seed=13)
        degraded_span = range(4, 9)  # 1-based windows 4..8 cover events 3..7
        clean = [
            w for w in outcome.windows if w.window not in degraded_span
        ]
        spikes = [w for w in outcome.windows if not w.within_bound]
        # The invisible-data windows are where the bound may break...
        assert all(w.window in degraded_span for w in spikes)
        # ...and it demonstrably does break somewhere in the brownout.
        assert spikes, "brownout produced no out-of-bound window"
        assert clean and all(w.within_bound for w in clean)

    def test_link_loss_destroys_items_and_is_counted(self):
        lossy = Scenario(
            "all-wires-burn", "d", windows=4,
            events=(LinkDegrade(0, 4, loss=0.9),),
        )
        outcome = run_scenario(lossy, seed=13)
        assert outcome.items_dropped > 0
        assert any(w.items_dropped > 0 for w in outcome.windows)

    def test_burst_saturates_the_root_budget(self):
        outcome = run_scenario("flash-crowd", seed=13)
        assert all(
            w.budget_utilisation == pytest.approx(1.0)
            for w in outcome.windows
        )


class TestChurnMechanics:
    def test_offline_node_receives_no_traffic(self):
        scenario = Scenario(
            "hole", "d", windows=3, events=(NodeChurn(0, 3, ("l1-0",)),)
        )
        config = config_for()
        with StatisticalRunner(
            config, SCHEDULE, generators(), scenario=scenario
        ) as runner:
            outcome = runner.run(3)
        # Traffic re-parented around the hole and nothing lingers in it.
        assert runner.engine.transport.collect("l1-0") == []
        assert not runner.engine.transport.has_pending()
        assert all(w.items_sampled > 0 for w in outcome.windows)

    def test_offline_source_volume_is_really_lost(self):
        healthy = run_scenario("steady", seed=13)
        scenario = Scenario(
            "dead-sensor", "d", windows=12,
            events=(NodeChurn(0, 12, ("source-0",)),),
        )
        wounded = run_scenario(scenario, seed=13)
        healthy_items = sum(w.items_emitted for w in healthy.windows)
        wounded_items = sum(w.items_emitted for w in wounded.windows)
        assert wounded_items == pytest.approx(healthy_items * 7 / 8, rel=0.01)


class TestValidationAndLifecycle:
    def test_simnet_transport_is_rejected_loudly(self):
        with pytest.raises(ConfigurationError, match="placement"):
            ScenarioRunner(
                config_for(transport="simnet"), SCHEDULE, generators(),
                get_scenario("churn"),
            )

    def test_simnet_with_workers_is_rejected_loudly(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunner(
                config_for(transport="simnet", workers=2), SCHEDULE,
                generators(), get_scenario("churn"),
            )

    def test_bad_event_targets_fail_before_any_shard_spawns(self):
        scenario = Scenario(
            "x", "d", windows=4, events=(NodeChurn(0, 2, ("l9-9",)),)
        )
        before = len(multiprocessing.active_children())
        with pytest.raises(ConfigurationError, match="unknown tree nodes"):
            ScenarioRunner(
                config_for(workers=2), SCHEDULE, generators(), scenario
            )
        assert len(multiprocessing.active_children()) == before

    def test_churn_with_workers_reaps_shards_cleanly(self):
        with ScenarioRunner(
            config_for(workers=2), SCHEDULE, generators(),
            get_scenario("churn"),
        ) as runner:
            outcome = runner.run()
            assert outcome.windows
        for child in multiprocessing.active_children():
            assert not child.name.startswith("repro-shard-"), (
                "worker shard outlived its scenario run"
            )

    def test_broker_transport_runs_scenarios(self):
        outcome = run_scenario("churn", transport="broker", seed=13)
        assert len(outcome.windows) == 12

    def test_rejects_nonpositive_window_count(self):
        runner = ScenarioRunner(
            config_for(), SCHEDULE, generators(), get_scenario("steady")
        )
        with pytest.raises(PipelineError):
            runner.run(0)

    def test_repeated_runs_continue_the_timeline(self):
        scenario = get_scenario("churn")
        with ScenarioRunner(
            config_for(), SCHEDULE, generators(), scenario
        ) as split:
            first = split.run(6)
            second = split.run(6)
        with ScenarioRunner(
            config_for(), SCHEDULE, generators(), scenario
        ) as whole:
            full = whole.run(12)
        assert [
            window_tuple(w) for w in first.windows + second.windows
        ] == [window_tuple(w) for w in full.windows]

    def test_report_renders_every_window(self):
        outcome = run_scenario("diurnal", seed=13)
        report = outcome.report()
        assert "quality over time" in report
        assert report.count("\n") >= 12
        assert "mean loss" in outcome.summary()
