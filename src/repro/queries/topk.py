"""Top-k and quantile queries over the weighted sample.

The paper supports only linear queries and names top-k among the
"more complex queries" left for future work (§VIII). This module
implements that extension on the same weighted-sample substrate:

* :class:`TopKQuery` ranks sub-streams by their estimated totals and
  returns the k largest with per-stratum error bounds, flagging ranks
  that are statistically unstable (confidence intervals overlap).
* :class:`QuantileQuery` estimates a value quantile from the weighted
  empirical distribution, with a normal-approximation confidence band
  on the rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.error_bounds import confidence_multiplier, substream_sum_variance
from repro.core.estimator import ThetaStore
from repro.errors import EstimationError

__all__ = ["RankedSubstream", "TopKQuery", "QuantileEstimate", "QuantileQuery"]


@dataclass(frozen=True, slots=True)
class RankedSubstream:
    """One entry of a top-k answer.

    Attributes:
        rank: 1-based position in the ranking.
        substream: The stratum name.
        estimated_sum: Its estimated total.
        error: Half-width of the stratum's confidence interval.
        stable: Whether this entry's interval is disjoint from the next
            entry's (a rank swap is outside the confidence level).
    """

    rank: int
    substream: str
    estimated_sum: float
    error: float
    stable: bool


class TopKQuery:
    """``SELECT substream, SUM(value) ... ORDER BY 2 DESC LIMIT k``."""

    def __init__(self, k: int, confidence: float = 0.95) -> None:
        if k <= 0:
            raise EstimationError(f"k must be >= 1, got {k}")
        self.name = "top-k"
        self.k = k
        self.confidence = confidence

    def execute(self, theta: ThetaStore) -> list[RankedSubstream]:
        """Rank sub-streams by estimated total over one window."""
        estimates = theta.per_substream()
        if not estimates:
            raise EstimationError("cannot rank over an empty store")
        multiplier = confidence_multiplier(self.confidence)
        scored = []
        for substream, est in estimates.items():
            variance = substream_sum_variance(est)
            scored.append(
                (est.estimated_sum, multiplier * math.sqrt(variance), substream)
            )
        scored.sort(reverse=True)
        top = scored[: self.k]
        ranked: list[RankedSubstream] = []
        for index, (total, error, substream) in enumerate(top):
            if index + 1 < len(scored):
                next_total, next_error, _ = scored[index + 1]
                stable = total - error > next_total + next_error
            else:
                stable = True
            ranked.append(
                RankedSubstream(
                    rank=index + 1,
                    substream=substream,
                    estimated_sum=total,
                    error=error,
                    stable=stable,
                )
            )
        return ranked


@dataclass(frozen=True, slots=True)
class QuantileEstimate:
    """A quantile answer with a confidence band.

    Attributes:
        q: The requested quantile in (0, 1).
        value: The weighted empirical quantile.
        lower: Value at the lower end of the rank confidence band.
        upper: Value at the upper end of the rank confidence band.
        effective_sample_size: Kish effective n of the weighted sample.
    """

    q: float
    value: float
    lower: float
    upper: float
    effective_sample_size: float

    def contains(self, exact: float) -> bool:
        """Whether the band covers a given exact quantile value."""
        return self.lower <= exact <= self.upper


class QuantileQuery:
    """Weighted quantile over the window's sampled values.

    Each sampled value represents ``W_out`` original items, so the
    empirical CDF weighs values by their batch weights. The confidence
    band perturbs the target rank by ``z * sqrt(q(1-q)/n_eff)`` where
    ``n_eff`` is the Kish effective sample size — the classic normal
    approximation for sample quantiles, adapted to unequal weights.
    """

    def __init__(self, q: float, confidence: float = 0.95) -> None:
        if not 0.0 < q < 1.0:
            raise EstimationError(f"quantile must be in (0, 1), got {q}")
        self.name = "quantile"
        self.q = q
        self.confidence = confidence

    def execute(self, theta: ThetaStore) -> QuantileEstimate:
        """Estimate the quantile over one window's Theta store."""
        weighted: list[tuple[float, float]] = []
        for batch in theta.batches:
            for item in batch.items:
                weighted.append((item.value, batch.weight))
        if not weighted:
            raise EstimationError("cannot estimate a quantile from no items")
        weighted.sort()
        total_weight = sum(weight for _value, weight in weighted)
        sum_sq = sum(weight * weight for _value, weight in weighted)
        n_eff = total_weight * total_weight / sum_sq

        z = confidence_multiplier(self.confidence)
        band = z * math.sqrt(self.q * (1.0 - self.q) / n_eff)
        lo_rank = max(0.0, self.q - band)
        hi_rank = min(1.0, self.q + band)

        return QuantileEstimate(
            q=self.q,
            value=self._value_at(weighted, total_weight, self.q),
            lower=self._value_at(weighted, total_weight, lo_rank),
            upper=self._value_at(weighted, total_weight, hi_rank),
            effective_sample_size=n_eff,
        )

    @staticmethod
    def _value_at(
        weighted: list[tuple[float, float]], total_weight: float, rank: float
    ) -> float:
        """Value at a cumulative-weight rank in the sorted sample."""
        target = rank * total_weight
        cumulative = 0.0
        for value, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return value
        return weighted[-1][0]
