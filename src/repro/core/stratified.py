"""Reservoir allocation across strata (``getSampleSize`` policies).

Algorithm 1 line 7 calls ``getSampleSize(sampleSize, S)`` to split a
node's total sample budget across the sub-streams seen in the current
interval. The paper leaves the policy open ("the core design is
agnostic to the ways of choosing the sample size"), so we implement the
two natural policies and make them pluggable:

* **equal** — every sub-stream gets ``sampleSize / |S|`` slots. This is
  the fairness policy stratification is about: a tiny sub-stream gets
  the same reservoir as a huge one, so it is never drowned out.
* **proportional** — slots proportional to each sub-stream's arrival
  count in the interval, mimicking what plain SRS does in aggregate.
  Included as an ablation of the design choice.

Both policies guarantee every sub-stream receives at least one slot as
long as the budget covers the stratum count; otherwise the allocation
degrades gracefully (largest-remainder rounding, minimum of 1).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import SamplingError

__all__ = [
    "AllocationPolicy",
    "allocate_equal",
    "allocate_fair_fill",
    "allocate_proportional",
    "allocate_weighted",
    "get_allocation_policy",
]

AllocationPolicy = Callable[[int, Mapping[str, int]], dict[str, int]]


def _validate(sample_size: int, stratum_counts: Mapping[str, int]) -> None:
    if sample_size <= 0:
        raise SamplingError(f"sample size must be positive, got {sample_size}")
    if not stratum_counts:
        raise SamplingError("cannot allocate a budget over zero sub-streams")
    for substream, count in stratum_counts.items():
        if count < 0:
            raise SamplingError(
                f"sub-stream {substream!r} has negative count {count}"
            )


def allocate_equal(sample_size: int, stratum_counts: Mapping[str, int]) -> dict[str, int]:
    """Split the budget evenly across sub-streams (min 1 slot each).

    Remainder slots go to the sub-streams with the largest arrival
    counts, which minimises the chance of overflow where pressure is
    highest while preserving fairness for the small strata.
    """
    _validate(sample_size, stratum_counts)
    n = len(stratum_counts)
    base = max(1, sample_size // n)
    allocation = {substream: base for substream in stratum_counts}
    remainder = sample_size - base * n
    if remainder > 0:
        by_pressure = sorted(
            stratum_counts, key=lambda s: stratum_counts[s], reverse=True
        )
        for substream in by_pressure[:remainder]:
            allocation[substream] += 1
    return allocation


def allocate_proportional(
    sample_size: int, stratum_counts: Mapping[str, int]
) -> dict[str, int]:
    """Split the budget proportionally to per-stratum arrival counts.

    Uses largest-remainder rounding so the totals add up to the budget
    when it is feasible, with a floor of one slot per sub-stream (a
    reservoir of size zero is meaningless).
    """
    _validate(sample_size, stratum_counts)
    total = sum(stratum_counts.values())
    if total == 0:
        return allocate_equal(sample_size, stratum_counts)
    shares = {
        substream: sample_size * count / total
        for substream, count in stratum_counts.items()
    }
    allocation = {substream: max(1, int(share)) for substream, share in shares.items()}
    assigned = sum(allocation.values())
    leftovers = sample_size - assigned
    if leftovers > 0:
        by_fraction = sorted(
            shares, key=lambda s: shares[s] - int(shares[s]), reverse=True
        )
        index = 0
        while leftovers > 0 and by_fraction:
            allocation[by_fraction[index % len(by_fraction)]] += 1
            leftovers -= 1
            index += 1
    else:
        # The min-1 floor can push the total past the budget when many
        # strata have near-zero shares; shave the overshoot off the
        # largest reservoirs so totals conserve whenever the budget
        # covers the stratum count (the floor itself is never shaved).
        overshoot = -leftovers
        while overshoot > 0:
            largest = max(allocation, key=lambda s: (allocation[s], s))
            if allocation[largest] <= 1:
                break
            allocation[largest] -= 1
            overshoot -= 1
    return allocation


def allocate_fair_fill(
    sample_size: int, stratum_counts: Mapping[str, int]
) -> dict[str, int]:
    """Fair share first, then redistribute unused budget (the default).

    Small sub-streams whose arrival count fits under the equal share
    keep *all* their items (a reservoir at least as big as the stratum),
    and the slots they did not need flow to the overflowing strata.
    Iterating until no stratum sits under its share yields the max-min
    fair allocation: rare strata are fully represented (the property
    Fig. 10(c) depends on) while no budget is wasted on reservoirs that
    cannot fill (which would silently shrink the realized sampling
    fraction and inflate variance for the big strata).
    """
    _validate(sample_size, stratum_counts)
    allocation: dict[str, int] = {}
    active = {
        substream: max(1, count) for substream, count in stratum_counts.items()
    }
    remaining = sample_size
    while active:
        share = remaining // len(active)
        if share <= 0:
            # Budget smaller than the stratum count: one slot each.
            for substream in active:
                allocation[substream] = 1
            break
        satisfied = {
            substream: count
            for substream, count in active.items()
            if count <= share
        }
        if not satisfied:
            # Everyone overflows: split the remainder evenly, largest
            # arrival counts absorbing the leftover slots.
            base = remaining // len(active)
            for substream in active:
                allocation[substream] = base
            leftover = remaining - base * len(active)
            by_pressure = sorted(active, key=active.get, reverse=True)
            for substream in by_pressure[:leftover]:
                allocation[substream] += 1
            break
        for substream, count in satisfied.items():
            allocation[substream] = count
            remaining -= count
            del active[substream]
    return allocation


def allocate_weighted(
    sample_size: int,
    stratum_counts: Mapping[str, int],
    weights: Mapping[str, float],
) -> dict[str, int]:
    """Water-fill the budget by external weights, capped at the counts.

    The weight-generalized form of :func:`allocate_fair_fill`: each
    stratum's share of the remaining budget is proportional to its
    weight instead of flat, strata whose arrival count fits under their
    share keep everything, and the unused slots flow back into the pool
    for the heavier strata. This is the ``getSampleSize`` shape Neyman
    allocation needs — weight a stratum by ``c_i * s_i`` and the split
    approaches the variance-minimizing allocation while still never
    wasting budget on reservoirs that cannot fill.

    Weights must be non-negative; missing strata default to 1 and an
    all-zero map degrades to the unweighted fair fill. Every stratum
    keeps the one-slot floor, and totals conserve exactly whenever the
    budget covers the stratum count (``sum(alloc) == min(sample_size,
    sum(max(1, count_i)))``).
    """
    _validate(sample_size, stratum_counts)
    for substream, weight in weights.items():
        if weight < 0:
            raise SamplingError(
                f"stratum {substream!r} has negative weight {weight}"
            )
    weight_of = {
        substream: float(weights.get(substream, 1.0))
        for substream in stratum_counts
    }
    if all(weight == 0.0 for weight in weight_of.values()):
        weight_of = {substream: 1.0 for substream in weight_of}
    allocation: dict[str, int] = {}
    active = {
        substream: max(1, count) for substream, count in stratum_counts.items()
    }
    remaining = sample_size
    while active:
        if remaining < len(active):
            # Budget smaller than the stratum count: one slot each.
            for substream in active:
                allocation[substream] = 1
            break
        total_weight = sum(weight_of[s] for s in active)
        shares = {
            substream: (
                remaining * weight_of[substream] / total_weight
                if total_weight > 0 else remaining / len(active)
            )
            for substream in active
        }
        satisfied = {
            substream: count
            for substream, count in active.items()
            if count <= shares[substream]
        }
        if satisfied:
            progressed = False
            for substream in sorted(satisfied):
                count = satisfied[substream]
                # A near-zero-weight stratum's share can round below
                # its one-slot floor; satisfying the heavy strata in
                # full would then spend the floors' budget and
                # over-allocate. Only satisfy while every still-active
                # stratum's floor stays fundable — the rounding branch
                # below shaves the rest to conserve exactly.
                if count > remaining - (len(active) - 1):
                    continue
                allocation[substream] = count
                remaining -= count
                del active[substream]
                progressed = True
            if progressed:
                continue
        # Every cap exceeds its weighted share: integerize the shares
        # (min 1 slot), largest fractional remainders absorbing the
        # leftover — each rounded share stays under its cap because
        # the cap is an integer strictly above the share.
        base = {
            substream: max(1, int(shares[substream])) for substream in active
        }
        leftover = remaining - sum(base.values())
        by_fraction = sorted(
            active,
            key=lambda s: (shares[s] - int(shares[s]), s),
            reverse=True,
        )
        index = 0
        while leftover > 0:
            candidate = by_fraction[index % len(by_fraction)]
            if base[candidate] < active[candidate]:
                base[candidate] += 1
                leftover -= 1
            index += 1
        while leftover < 0:
            largest = max(base, key=lambda s: (base[s], s))
            if base[largest] <= 1:  # pragma: no cover - defensive
                break
            base[largest] -= 1
            leftover += 1
        allocation.update(base)
        break
    return allocation


_POLICIES: dict[str, AllocationPolicy] = {
    "equal": allocate_equal,
    "fair_fill": allocate_fair_fill,
    "proportional": allocate_proportional,
}


def get_allocation_policy(name: str) -> AllocationPolicy:
    """Look up an allocation policy by name (``equal`` / ``proportional``)."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise SamplingError(
            f"unknown allocation policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
