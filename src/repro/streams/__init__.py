"""Kafka-Streams-model processing engine.

Provides the two API levels the paper's prototype uses: the low-level
Processor API (the integration point for the user-defined sampling
processor) and a high-level DSL (map/filter/windowed aggregation) that
compiles onto it, plus state stores, window definitions and a runtime
that drives a topology from broker topics.
"""

from repro.streams.dsl import KStream, StreamBuilder
from repro.streams.processor import FunctionProcessor, Processor, ProcessorContext
from repro.streams.runtime import StreamsRuntime
from repro.streams.state import KeyValueStore, WindowStore
from repro.streams.topology import SinkNode, SourceNode, Topology
from repro.streams.windowing import HoppingWindow, TumblingWindow, window_start

__all__ = [
    "FunctionProcessor",
    "HoppingWindow",
    "KStream",
    "KeyValueStore",
    "Processor",
    "ProcessorContext",
    "SinkNode",
    "SourceNode",
    "StreamBuilder",
    "StreamsRuntime",
    "Topology",
    "TumblingWindow",
    "WindowStore",
    "window_start",
]
