"""Unit tests for weighted hierarchical sampling (Algorithm 1)."""

import random

import pytest

from repro.core.items import StreamItem
from repro.core.stratified import allocate_proportional
from repro.core.weights import WeightMap
from repro.core.whs import WeightedHierarchicalSampler, whsamp
from repro.errors import SamplingError


def make_items(substream, values, emitted_at=0.0):
    return [StreamItem(substream, float(v), emitted_at) for v in values]


class TestWhsamp:
    def test_empty_input_returns_empty_result(self):
        result = whsamp([], 10)
        assert result.batches == []
        assert result.sampled_count == 0

    def test_single_substream_overflow(self):
        items = make_items("a", range(100))
        result = whsamp(items, 10, rng=random.Random(1))
        assert result.sampled_count == 10
        assert result.weights.get("a") == pytest.approx(10.0)
        assert result.seen == {"a": 100}

    def test_single_substream_underflow_weight_one(self):
        items = make_items("a", range(5))
        result = whsamp(items, 10, rng=random.Random(2))
        assert result.sampled_count == 5
        assert result.weights.get("a") == 1.0

    def test_count_invariant_equation8(self):
        """W_out * sampled == W_in * seen for every sub-stream."""
        items = make_items("a", range(97)) + make_items("b", range(13))
        result = whsamp(items, 10, rng=random.Random(3))
        for batch in result.batches:
            assert batch.estimated_count == pytest.approx(
                result.seen[batch.substream]
            )

    def test_input_weights_compose(self):
        items = make_items("a", range(20))
        result = whsamp(items, 10, {"a": 2.5}, rng=random.Random(4))
        # c=20, N=10 -> w=2, W_out = 2.5 * 2 = 5.0
        assert result.weights.get("a") == pytest.approx(5.0)
        # Estimated count recovers W_in * c = 2.5 * 20 = 50 original items.
        assert result.batches[0].estimated_count == pytest.approx(50.0)

    def test_every_substream_represented(self):
        """Stratification: even a 2-item stratum appears in the sample."""
        items = make_items("big", range(10000)) + make_items("tiny", [1, 2])
        result = whsamp(items, 20, rng=random.Random(5))
        substreams = {batch.substream for batch in result.batches}
        assert substreams == {"big", "tiny"}

    def test_allocation_recorded(self):
        items = make_items("a", range(50)) + make_items("b", range(50))
        result = whsamp(items, 10, rng=random.Random(6))
        assert sum(result.allocation.values()) == 10

    def test_weightmap_input_not_mutated(self):
        wm = WeightMap({"a": 2.0})
        whsamp(make_items("a", range(100)), 10, wm, rng=random.Random(7))
        assert wm.get("a") == 2.0

    def test_invalid_sample_size(self):
        with pytest.raises(SamplingError):
            whsamp(make_items("a", [1]), 0)

    def test_proportional_policy_pluggable(self):
        items = make_items("a", range(90)) + make_items("b", range(10))
        result = whsamp(
            items, 10, policy=allocate_proportional, rng=random.Random(8)
        )
        assert result.allocation["a"] == 9
        assert result.allocation["b"] == 1

    def test_unsaturated_substream_passes_all_items(self):
        items = make_items("a", [7.0, 8.0])
        result = whsamp(items, 10, rng=random.Random(9))
        values = sorted(i.value for i in result.batches[0].items)
        assert values == [7.0, 8.0]


class TestStatefulSampler:
    def test_stale_received_weight_applies_next_interval(self):
        """Figure 3 at node B: the *received* w=1.5 applies again.

        The node's own output weight (3.0 after interval v) must NOT
        feed back as the next interval's input weight — only weights
        received from downstream do.
        """
        sampler = WeightedHierarchicalSampler(1, rng=random.Random(10))
        sampler.observe_weights({"s": 1.5})
        # Interval v: items 5, 2 arrive; reservoir 1 -> w = 1.5 * 2 = 3.
        r1 = sampler.process_interval(make_items("s", [5, 2]))
        assert r1.weights.get("s") == pytest.approx(3.0)
        # Interval v+1: items 3, 4 arrive with no weight metadata. The
        # stale *received* weight 1.5 applies: w = 1.5 * 2 = 3.0.
        r2 = sampler.process_interval(make_items("s", [3, 4]))
        assert r2.weights.get("s") == pytest.approx(3.0)

    def test_outputs_do_not_compound_across_intervals(self):
        """Raw items at a bottom node keep weight ~1/fraction forever."""
        sampler = WeightedHierarchicalSampler(10, rng=random.Random(12))
        for _ in range(20):
            result = sampler.process_interval(make_items("s", range(100)))
            assert result.weights.get("s") == pytest.approx(10.0)

    def test_sample_size_mutable(self):
        sampler = WeightedHierarchicalSampler(5)
        sampler.sample_size = 20
        assert sampler.sample_size == 20
        with pytest.raises(SamplingError):
            sampler.sample_size = 0

    def test_invalid_construction(self):
        with pytest.raises(SamplingError):
            WeightedHierarchicalSampler(0)

    def test_count_invariant_end_to_end_two_layers(self):
        """Chain two nodes; root estimate recovers the bottom count."""
        rng = random.Random(11)
        bottom = WeightedHierarchicalSampler(10, rng=rng)
        top = WeightedHierarchicalSampler(5, rng=rng)
        original = make_items("s", range(200))
        r_bottom = bottom.process_interval(original)
        top.observe_weights(r_bottom.weights.as_dict())
        forwarded = [i for b in r_bottom.batches for i in b.items]
        r_top = top.process_interval(forwarded)
        assert r_top.batches[0].estimated_count == pytest.approx(200.0)


class TestMergeResults:
    """merge_results: the cross-shard union respects Eq. 8."""

    @staticmethod
    def run_shard(substream, values, budget, seed, weight=1.0):
        from repro.core.items import WeightedBatch
        from repro.core.whs import whsamp_batches

        return whsamp_batches(
            [WeightedBatch(substream, weight, make_items(substream, values))],
            budget,
            rng=random.Random(seed),
        )

    def test_union_preserves_count_recovery(self):
        from repro.core.whs import merge_results

        shards = [
            self.run_shard("s", range(40), 4, seed=1),
            self.run_shard("s", range(100, 160), 4, seed=2),
        ]
        merged = merge_results(shards)
        assert merged.seen == {"s": 100}
        assert merged.allocation == {"s": 8}
        recovered = sum(b.estimated_count for b in merged.batches)
        assert recovered == pytest.approx(100.0)

    def test_batches_concatenate_in_shard_order(self):
        from repro.core.whs import merge_results

        first = self.run_shard("s", range(10), 3, seed=3)
        second = self.run_shard("t", range(10), 3, seed=4)
        merged = merge_results([first, second])
        assert [b.substream for b in merged.batches] == ["s", "t"]
        assert merged.sampled_count == first.sampled_count + second.sampled_count

    def test_dominant_shard_wins_the_weight_map(self):
        from repro.core.whs import merge_results

        small = self.run_shard("s", range(8), 4, seed=5)    # weight 2.0
        large = self.run_shard("s", range(40), 4, seed=6)   # weight 10.0
        merged = merge_results([small, large])
        assert merged.weights.get("s") == large.weights.get("s")
        flipped = merge_results([large, small])
        assert flipped.weights.get("s") == large.weights.get("s")

    def test_empty_merge_is_empty(self):
        from repro.core.whs import merge_results

        merged = merge_results([])
        assert merged.batches == [] and merged.seen == {}
