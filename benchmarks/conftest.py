"""Shared fixtures for the figure benchmarks.

Every benchmark regenerates one figure of the paper's evaluation at
bench scale, asserts the paper's qualitative shape, and appends the
rendered paper-style table to ``benchmarks/results.txt`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
series on disk.

``REPRO_BENCH_SCALE=quick`` shrinks every benchmark to the unit-test
sizing — CI's smoke job uses it so the harness and the fastpath
kernels cannot rot between perf PRs. Quick sessions never touch
``results.txt``: only bench-scale numbers are published.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.base import ExperimentScale

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS_PATH = BENCH_DIR / "results.txt"

#: Benchmark modules whose tests actually reached their call phase this
#: session. Collection-time snapshots are useless here: -k/-m
#: deselection happens after conftest collection hooks, and an
#: interrupted session never reports the missing modules at all.
_RAN_BENCH_MODULES: set[str] = set()


def pytest_runtest_logreport(report):
    if report.when == "call":
        name = pathlib.Path(str(report.fspath)).name
        if name.startswith("test_bench_"):
            _RAN_BENCH_MODULES.add(name)


_SCALES = {
    "quick": ExperimentScale.quick,
    "bench": ExperimentScale.bench,
}


def _scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name not in _SCALES:
        raise pytest.UsageError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, "
            f"got {name!r}"
        )
    return name


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The sizing every figure benchmark runs at."""
    return _SCALES[_scale_name()]()


def _split_tables(text: str) -> list[str]:
    """Rendered tables as blocks (they are separated by blank lines)."""
    return [block for block in text.split("\n\n") if block.strip()]


def _merge_tables(existing: str, fresh: list[str]) -> str:
    """Update same-titled tables in place, append new ones at the end.

    A table's identity is its title (first line), so a selective run —
    ``pytest benchmarks/test_bench_fig5.py`` — refreshes only the
    tables it regenerated and leaves every other published table
    untouched.
    """
    by_title = {block.splitlines()[0]: block for block in fresh}
    merged = [
        by_title.pop(block.splitlines()[0], block)
        for block in _split_tables(existing)
    ]
    merged.extend(by_title.values())
    return "\n\n".join(merged) + "\n\n"


@pytest.fixture(scope="session")
def results_sink(request):
    """Append rendered tables to the session's results file.

    Tables accumulate in a scratch file next to the target and
    ``results.txt`` is swapped atomically at session end, so an
    interrupted session never truncates the previously published
    tables. A complete, green benchmark session publishes exactly its
    own tables (pruning tables whose benchmark was renamed or
    removed); a partial or failing session merges by table title,
    refreshing only what it regenerated.
    """
    scratch = RESULTS_PATH.with_name(RESULTS_PATH.name + ".tmp")
    scratch.write_text("")

    def sink(text: str) -> None:
        with scratch.open("a") as handle:
            handle.write(text + "\n\n")

    yield sink

    if _scale_name() != "bench":  # smoke runs publish nothing
        scratch.unlink()
        return
    fresh = _split_tables(scratch.read_text())
    if not fresh:
        scratch.unlink()
        return
    all_modules = {path.name for path in BENCH_DIR.glob("test_bench_*.py")}
    complete = _RAN_BENCH_MODULES >= all_modules
    if not (complete and request.session.testsfailed == 0):
        existing = RESULTS_PATH.read_text() if RESULTS_PATH.exists() else ""
        scratch.write_text(_merge_tables(existing, fresh))
    os.replace(scratch, RESULTS_PATH)
