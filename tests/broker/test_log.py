"""Unit tests for the append-only partition log."""

import pytest

from repro.broker.log import PartitionLog
from repro.broker.records import Record
from repro.errors import OffsetOutOfRangeError


def rec(value):
    return Record(key=None, value=value)


class TestAppend:
    def test_offsets_are_sequential(self):
        log = PartitionLog("t", 0)
        assert [log.append(rec(i)) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_end_offset_tracks_appends(self):
        log = PartitionLog("t", 0)
        assert log.end_offset == 0
        log.append(rec("a"))
        assert log.end_offset == 1

    def test_append_batch(self):
        log = PartitionLog("t", 0)
        assert log.append_batch([rec(1), rec(2), rec(3)]) == [0, 1, 2]


class TestRead:
    def test_read_returns_positions(self):
        log = PartitionLog("topic", 3)
        log.append_batch([rec("a"), rec("b")])
        out = log.read(0)
        assert [r.value for r in out] == ["a", "b"]
        assert out[0].position == ("topic", 3, 0)
        assert out[1].offset == 1

    def test_read_from_middle(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(10)])
        assert [r.value for r in log.read(7)] == [7, 8, 9]

    def test_read_at_end_is_empty(self):
        log = PartitionLog("t", 0)
        log.append(rec("a"))
        assert log.read(1) == []

    def test_read_beyond_end_raises(self):
        log = PartitionLog("t", 0)
        with pytest.raises(OffsetOutOfRangeError):
            log.read(1)

    def test_max_records_limits(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(10)])
        assert len(log.read(0, max_records=4)) == 4


class TestTruncation:
    def test_truncate_preserves_offsets(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(10)])
        dropped = log.truncate_before(6)
        assert dropped == 6
        assert log.start_offset == 6
        assert [r.value for r in log.read(6)] == [6, 7, 8, 9]

    def test_read_below_start_raises(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(10)])
        log.truncate_before(5)
        with pytest.raises(OffsetOutOfRangeError):
            log.read(3)

    def test_truncate_beyond_end_clamps(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(3)])
        assert log.truncate_before(100) == 3
        assert log.end_offset == 3
        assert len(log) == 0

    def test_truncate_noop_below_start(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(3)])
        log.truncate_before(2)
        assert log.truncate_before(1) == 0

    def test_appends_continue_after_truncation(self):
        log = PartitionLog("t", 0)
        log.append_batch([rec(i) for i in range(3)])
        log.truncate_before(3)
        assert log.append(rec("x")) == 3
        assert [r.value for r in log.read(3)] == ["x"]
