"""Reservoir sampling primitives.

Implements the classic Algorithm R (Vitter 1985) used by the paper's
``RS(S_i, N_i)`` call in Algorithm 1, plus Vitter's skip-ahead
optimisation (Algorithm X style geometric skipping) that avoids drawing
one random number per item once the stream is much longer than the
reservoir. Both produce a uniform random sample without replacement of
at most ``capacity`` items from a stream of unknown length.
"""

from __future__ import annotations


import random
from typing import Generic, Iterable, Sequence, TypeVar

from repro.errors import SamplingError

__all__ = ["ReservoirSampler", "SkipAheadReservoirSampler", "reservoir_sample"]

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Uniform reservoir sampler (Algorithm R).

    Keeps the first ``capacity`` items, then replaces a random slot with
    probability ``capacity / i`` for the ``i``-th item. Every item of the
    stream ends up in the reservoir with equal probability
    ``min(1, capacity / n)`` where ``n`` is the stream length so far.

    The sampler is restartable: :meth:`reset` clears it for the next
    time interval while keeping the configured capacity.
    """

    def __init__(self, capacity: int, rng: random.Random | None = None) -> None:
        if capacity <= 0:
            raise SamplingError(f"reservoir capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._rng = rng if rng is not None else random.Random()
        self._reservoir: list[T] = []
        self._seen = 0

    @property
    def capacity(self) -> int:
        """Maximum number of items the reservoir holds."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of items offered since the last reset (``c_i``)."""
        return self._seen

    @property
    def is_saturated(self) -> bool:
        """Whether more items were offered than fit in the reservoir."""
        return self._seen > self._capacity

    def offer(self, item: T) -> None:
        """Offer one item to the reservoir."""
        self._seen += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self._capacity:
            self._reservoir[slot] = item

    def extend(self, items: Iterable[T]) -> None:
        """Offer each item of an iterable in order."""
        for item in items:
            self.offer(item)

    def sample(self) -> list[T]:
        """Return a copy of the current reservoir contents."""
        return list(self._reservoir)

    def merge_from(self, other: "ReservoirSampler[T]") -> None:
        """Absorb a reservoir sampled from a *disjoint* stream (§III-E).

        After the merge this sampler holds a uniform random sample of
        size ``min(capacity, seen_a + seen_b)`` of the union of the two
        underlying streams, and ``seen`` counts both streams — exactly
        the state a single reservoir fed the concatenated stream would
        have (distribution-wise). This is the mergeable-state primitive
        for sharded execution: worker shards sample independently and
        the root folds their reservoirs together without replaying
        items.

        Correctness: a uniform ``k``-subset of the union is drawn by
        first deciding, one slot at a time, *which* stream each of the
        ``k`` union picks comes from (sampling without replacement over
        stream identities — the sequential form of a hypergeometric
        draw), then taking that many uniform picks from the
        corresponding reservoir. A uniform subset of a uniform subset
        is uniform, and the per-stream draw count can never exceed the
        items that stream's reservoir actually holds.

        Both samplers must share the same capacity; entropy comes from
        *this* sampler's rng, so seeded merges are reproducible.
        """
        if other._capacity != self._capacity:
            raise SamplingError(
                f"cannot merge reservoirs of different capacities "
                f"({self._capacity} vs {other._capacity})"
            )
        if other._seen == 0:
            return
        if self._seen == 0:
            self._reservoir = list(other._reservoir)
            self._seen = other._seen
            return
        remaining_a, remaining_b = self._seen, other._seen
        take_a = 0
        for _ in range(min(self._capacity, remaining_a + remaining_b)):
            if self._rng.random() * (remaining_a + remaining_b) < remaining_a:
                take_a += 1
                remaining_a -= 1
            else:
                remaining_b -= 1
        take_b = min(self._capacity, self._seen + other._seen) - take_a
        merged = self._rng.sample(self._reservoir, take_a)
        merged.extend(self._rng.sample(other._reservoir, take_b))
        self._reservoir = merged
        self._seen += other._seen

    def reset(self) -> None:
        """Clear the reservoir and the seen counter for a new interval."""
        self._reservoir.clear()
        self._seen = 0

    def __len__(self) -> int:
        return len(self._reservoir)


class SkipAheadReservoirSampler(ReservoirSampler[T]):
    """Reservoir sampler with geometric skip-ahead.

    Once the reservoir is full, instead of flipping a coin per item, the
    sampler draws the number of items to *skip* before the next
    replacement from the correct distribution. The marginal inclusion
    probabilities are identical to Algorithm R; only the number of RNG
    calls drops from O(n) to O(capacity * log(n / capacity)).

    This exists to ablate the CPU cost of sampling at edge nodes (the
    paper claims the sampling overhead is negligible; the skip-ahead
    variant makes the per-item cost of the hot path measurable).
    """

    def __init__(self, capacity: int, rng: random.Random | None = None) -> None:
        super().__init__(capacity, rng)
        self._skip = 0

    def offer(self, item: T) -> None:
        """Offer one item, spending rng only on accepted candidates.

        Identical inclusion probabilities to Algorithm R's per-item
        coin, but rejected items burn a counter decrement instead of
        an rng draw (see :meth:`_draw_skip`).
        """
        if len(self._reservoir) < self._capacity:
            self._seen += 1
            self._reservoir.append(item)
            if len(self._reservoir) == self._capacity:
                self._draw_skip()
            return
        self._seen += 1
        if self._skip > 0:
            self._skip -= 1
            return
        slot = self._rng.randrange(self._capacity)
        self._reservoir[slot] = item
        self._draw_skip()

    def _draw_skip(self) -> None:
        """Draw how many upcoming items to pass over before replacing.

        Exact inverse-CDF of Algorithm R's gap distribution: after
        seeing ``t`` items, the probability that the next ``s``
        candidates are all rejected is ``prod_{j=1..s} (1 - k/(t+j))``.
        We draw one uniform ``u`` and walk the product until it drops
        below ``1 - u`` (Vitter's Algorithm X). The marginal inclusion
        probabilities are therefore identical to per-item Algorithm R,
        but only one RNG call is spent per *accepted* item.
        """
        t = self._seen
        k = self._capacity
        threshold = 1.0 - self._rng.random()
        survival = 1.0
        skip = 0
        while True:
            survival *= 1.0 - k / (t + skip + 1)
            if survival <= threshold or survival <= 0.0:
                break
            skip += 1
        self._skip = skip

    def reset(self) -> None:
        """Clear the reservoir and the pending skip-ahead counter."""
        super().reset()
        self._skip = 0


def reservoir_sample(
    items: Sequence[T],
    capacity: int,
    rng: random.Random | None = None,
    *,
    backend: str = "python",
) -> list[T]:
    """One-shot reservoir sample of ``capacity`` items from a sequence.

    Convenience wrapper used by Algorithm 1's ``RS(S_i, N_i)`` call when
    the per-interval sub-stream is already materialised. ``backend``
    selects the sampling implementation (see
    :mod:`repro.core.fastpath`); the default stays pure Python so seeded
    callers keep bit-for-bit reproducibility with older revisions.
    """
    # Imported lazily: fastpath imports ReservoirSampler from this module.
    from repro.core.fastpath import make_reservoir_sampler

    sampler: ReservoirSampler[T] = make_reservoir_sampler(
        capacity, rng, backend=backend
    )
    sampler.extend(items)
    return sampler.sample()


def expected_inclusion_probability(stream_length: int, capacity: int) -> float:
    """Probability that any single item lands in the reservoir.

    Useful in tests: for a uniform reservoir sample this is exactly
    ``min(1, capacity / stream_length)``.
    """
    if stream_length <= 0:
        raise SamplingError("stream_length must be positive")
    if capacity <= 0:
        raise SamplingError("capacity must be positive")
    return min(1.0, capacity / stream_length)


def gap_distribution_mean(seen: int, capacity: int) -> float:
    """Expected number of items skipped between reservoir replacements.

    After ``seen`` items with a full reservoir of size ``capacity``, the
    expected gap before the next accepted item is approximately
    ``seen / capacity`` (follows from the acceptance probability
    ``capacity / i`` decreasing harmonically). Exposed for the
    skip-ahead sampler's statistical tests.
    """
    if capacity <= 0:
        raise SamplingError("capacity must be positive")
    return max(1.0, seen / capacity)
