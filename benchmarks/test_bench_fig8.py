"""Benchmark: regenerate Fig. 8 (latency vs sampling fraction)."""

from repro.experiments import fig8


def test_bench_fig8(benchmark, bench_scale, results_sink):
    """Asserts native saturation latency vs sampled low latency."""
    text = benchmark.pedantic(
        fig8.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    point = fig8.run_fig8([0.1], bench_scale)[0]
    # Paper: ~6x latency speedup over native at the 10% fraction.
    assert point.speedup_over_native > 2.0
    assert point.native > point.srs
