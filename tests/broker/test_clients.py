"""Unit tests for producer/consumer clients and the cluster."""

import pytest

from repro.broker.broker import Broker
from repro.broker.cluster import BrokerCluster
from repro.broker.consumer import Consumer
from repro.broker.producer import Producer
from repro.errors import (
    BrokerError,
    ConfigurationError,
    ConsumerGroupError,
    UnknownTopicError,
)


class TestProducer:
    def test_unbatched_send_is_immediate(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker)
        producer.send("t", "hello")
        assert broker.fetch("t", 0, 0)[0].value == "hello"

    def test_batching_defers_until_full(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker, batch_size=3)
        producer.send("t", 1)
        producer.send("t", 2)
        assert broker.end_offsets("t")[0] == 0
        producer.send("t", 3)
        assert broker.end_offsets("t")[0] == 3

    def test_flush_delivers_partial_batches(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker, batch_size=100)
        producer.send("t", "x")
        assert producer.pending == 1
        producer.flush()
        assert producer.pending == 0
        assert broker.end_offsets("t")[0] == 1

    def test_byte_accounting_hook(self):
        broker = Broker()
        broker.create_topic("t")
        observed = []
        producer = Producer(
            broker, on_send=lambda topic, batch, size: observed.append(size)
        )
        producer.send("t", "payload")
        assert observed and observed[0] > 0
        assert producer.bytes_sent == observed[0]
        assert producer.records_sent == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            Producer(Broker(), batch_size=0)


class TestConsumer:
    def test_poll_reads_from_assignment(self):
        broker = Broker()
        broker.create_topic("t", partitions=2)
        producer = Producer(broker)
        for i in range(10):
            producer.send("t", i, key=f"k{i}")
        consumer = Consumer(broker, "g", ["t"])
        values = sorted(r.value for r in consumer.poll())
        assert values == list(range(10))

    def test_poll_resumes_after_position(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker)
        producer.send("t", "a")
        consumer = Consumer(broker, "g", ["t"])
        assert [r.value for r in consumer.poll()] == ["a"]
        assert consumer.poll() == []
        producer.send("t", "b")
        assert [r.value for r in consumer.poll()] == ["b"]

    def test_commit_restores_position_for_new_member(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker)
        for i in range(5):
            producer.send("t", i)
        first = Consumer(broker, "g", ["t"], member_id="m1")
        first.poll()
        first.close()  # commits offset 5 and leaves
        producer.send("t", 99)
        second = Consumer(broker, "g", ["t"], member_id="m2")
        assert [r.value for r in second.poll()] == [99]

    def test_two_members_split_partitions(self):
        broker = Broker()
        broker.create_topic("t", partitions=4)
        c1 = Consumer(broker, "g", ["t"], member_id="a")
        c2 = Consumer(broker, "g", ["t"], member_id="b")
        assert len(c1.assignment) == 2
        assert len(c2.assignment) == 2
        assert set(c1.assignment).isdisjoint(c2.assignment)

    def test_seek(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker)
        for i in range(5):
            producer.send("t", i)
        consumer = Consumer(broker, "g", ["t"])
        consumer.poll()
        consumer.seek("t", 0, 2)
        assert [r.value for r in consumer.poll()] == [2, 3, 4]

    def test_closed_consumer_rejects_poll(self):
        broker = Broker()
        broker.create_topic("t")
        consumer = Consumer(broker, "g", ["t"])
        consumer.close()
        with pytest.raises(ConsumerGroupError):
            consumer.poll()

    def test_context_manager(self):
        broker = Broker()
        broker.create_topic("t")
        with Consumer(broker, "g", ["t"]) as consumer:
            assert consumer.poll() == []
        assert "g" in [g for g in (broker.group("g"),)][0].group_id
        assert broker.group("g").members == []

    def test_max_poll_records(self):
        broker = Broker()
        broker.create_topic("t")
        producer = Producer(broker)
        for i in range(10):
            producer.send("t", i)
        consumer = Consumer(broker, "g", ["t"], max_poll_records=4)
        assert len(consumer.poll()) == 4
        assert len(consumer.poll()) == 4
        assert len(consumer.poll()) == 2


class TestCluster:
    def test_leadership_round_robin(self):
        cluster = BrokerCluster(broker_count=3, replication_factor=2)
        cluster.create_topic("t", partitions=3)
        leaders = {cluster.leader("t", p) for p in range(3)}
        assert len(leaders) == 3

    def test_failover_to_replica(self):
        cluster = BrokerCluster(broker_count=3, replication_factor=2)
        cluster.create_topic("t", partitions=1)
        original = cluster.leader("t", 0)
        cluster.kill_broker(original)
        replacement = cluster.leader("t", 0)
        assert replacement != original
        assert replacement in cluster.replicas("t", 0)

    def test_unavailable_when_all_replicas_dead(self):
        cluster = BrokerCluster(broker_count=2, replication_factor=2)
        cluster.create_topic("t", partitions=1)
        for broker_id in cluster.replicas("t", 0):
            cluster.kill_broker(broker_id)
        with pytest.raises(BrokerError):
            cluster.leader("t", 0)

    def test_restart_restores_leadership_eligibility(self):
        cluster = BrokerCluster(broker_count=2, replication_factor=2)
        cluster.create_topic("t", partitions=1)
        original = cluster.leader("t", 0)
        cluster.kill_broker(original)
        cluster.restart_broker(original)
        assert cluster.leader("t", 0) == original

    def test_route_returns_data_plane(self):
        cluster = BrokerCluster()
        cluster.create_topic("t")
        assert cluster.route("t", 0) is cluster.data_plane

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BrokerCluster(broker_count=0)
        with pytest.raises(ConfigurationError):
            BrokerCluster(broker_count=2, replication_factor=3)
        cluster = BrokerCluster()
        with pytest.raises(BrokerError):
            cluster.kill_broker("ghost")
        with pytest.raises(UnknownTopicError):
            cluster.leader("missing", 0)
