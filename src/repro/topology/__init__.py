"""Logical tree topology and placement onto the simulated network."""

from repro.topology.placement import PlacementSpec, place_tree
from repro.topology.tree import LogicalTree, TreeNode, paper_tree

__all__ = [
    "LogicalTree",
    "PlacementSpec",
    "TreeNode",
    "paper_tree",
    "place_tree",
]
