"""System assembly: configs, runners and the adaptive feedback loop.

Two runner facades share one configuration surface and one execution
engine (:mod:`repro.engine` — pipeline assembly, the windowed run loop
and the pluggable transports):

* :class:`~repro.system.statistical.StatisticalRunner` runs the
  sampling tree algorithmically for the accuracy experiments;
* :class:`~repro.system.deployment.DeploymentSimulator` runs the whole
  deployment (broker + WAN + finite hosts) for the throughput, latency
  and bandwidth experiments.

A third facade, :class:`~repro.system.scenarios.ScenarioRunner`,
drives the statistical engine through a declarative
:class:`~repro.scenarios.scenario.Scenario` timeline (rate bursts,
skew drift, node churn, degraded links) and reports per-window
quality-over-time metrics.

The §IV-B feedback loop lives in :mod:`repro.system.adaptive`: the
per-window :class:`~repro.system.adaptive.BudgetController` the engine
runs in-loop (``config.budget_controller``), with
:class:`~repro.system.feedback.FeedbackDriver` as the paper-literal
between-runs facade over the same machinery.
"""

from repro.system.adaptive import (
    AdaptiveFractionController,
    BudgetController,
    StaticBudgetController,
    SubstreamObservation,
    VarianceAwareController,
    WindowObservation,
    make_budget_controller,
    observe_window,
)
from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.deployment import DeploymentReport, DeploymentSimulator
from repro.system.feedback import FeedbackDriver, FeedbackOutcome
from repro.system.scenarios import (
    ScenarioOutcome,
    ScenarioRunner,
    ScenarioWindow,
)
from repro.system.statistical import (
    RunOutcome,
    StatisticalRunner,
    WindowOutcome,
    accuracy_loss,
)
from repro.system.windowed import WindowedRoot, WindowResult

__all__ = [
    "AdaptiveFractionController",
    "BudgetController",
    "DeploymentReport",
    "DeploymentSimulator",
    "ExecutionMode",
    "FeedbackDriver",
    "FeedbackOutcome",
    "PipelineConfig",
    "RunOutcome",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioWindow",
    "StaticBudgetController",
    "StatisticalRunner",
    "SubstreamObservation",
    "VarianceAwareController",
    "WindowObservation",
    "WindowOutcome",
    "WindowResult",
    "WindowedRoot",
    "accuracy_loss",
    "make_budget_controller",
    "observe_window",
]
