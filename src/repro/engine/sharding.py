"""Sharded multi-core execution: process-parallel worker shards (§III-E).

The paper argues a sub-stream can be handled by ``w`` coordination-free
workers: each samples an equal portion of the items with a
proportionally smaller reservoir, and the per-worker ``(W_out, I)``
pairs are simply concatenated upstream — Eq. 8 holds per worker, hence
for the union. :mod:`repro.core.worker` models that statistically
inside one process; this module makes it *physical*: the windowed
engine loop runs in ``N`` OS processes at once, each over an equal
share of every sub-stream, and the root merges per-shard Theta state
before estimating.

How a sharded run decomposes:

* :func:`plan_shards` splits the rate schedule into ``N`` equal
  per-shard schedules (``RateSchedule.split``) and derives one shard
  seed per worker from the run seed, so a fixed ``(seed, workers)``
  pair fully determines every shard's entropy. A one-worker plan *is*
  the original run — same seed, same schedule — which is what makes
  ``workers=1`` sharded execution bit-for-bit the in-process engine.
* Each shard builds its own full :class:`~repro.engine.pipeline.Pipeline`
  (every tree node, budgets sized from the shard's share of the rates)
  and drives an :class:`~repro.engine.runner.EngineRunner` over the
  same window schedule. Shards never communicate: the §III-E
  assumption is exactly that workers need no coordination.
* Per window, a shard ships back its window outcome fields plus its
  root Theta contribution encoded with the compact binary batch codec
  (:func:`~repro.broker.records.encode_weighted_batches`) — whole
  column buffers cross the process boundary, never a pickle graph of
  per-record objects. *How* the codec frame crosses is the shard
  transport (``config.shard_transport``): on the ``"shm"`` plane
  (:mod:`repro.engine.shm`; the default where fork + shared memory
  are available) the shard writes the frame into its own
  shared-memory segment and only a ``(sequence, offset, length)``
  descriptor rides the Pipe — payload bytes never transit the pipe —
  while the ``"pipe"`` plane sends the joined frame bytes themselves.
  Both planes decode to identical batches, so a run is bit-for-bit
  the same on either; :attr:`ShardedEngineRunner.ipc_stats` accounts
  encoded bytes, pipe bytes and serde wall time so the difference is
  measurable, not vibes.
* The parent merges positionally: exact sums, SRS Horvitz-Thompson
  estimates and item counts add across shards; Theta batches
  concatenate in shard order into one
  :class:`~repro.core.estimator.ThetaStore` (weights untouched — Eq. 2
  was applied per shard against per-shard reservoir sizes, and
  rescaling them would break the Eq. 8 count recovery); the root
  estimate with error bounds is computed once over the union.
* Under an adaptive budget controller
  (``config.budget_controller != "static"``) the run goes
  window-by-window: the parent distills each window's *merged* root
  Theta into one :class:`~repro.system.adaptive.WindowObservation` and
  broadcasts it with the next window's request. Every shard feeds the
  same global evidence to its own controller copy, so all shards
  recompute the identical decision — shards still never talk to each
  other, and the codec's bit-exact round trip keeps the broadcast
  observation equal to what an unsharded engine observes locally.

Shard processes are persistent: they spawn on first use, keep their
window clock and rng streams across :meth:`ShardedEngineRunner.run`
calls (so ``run(2); run(3)`` equals ``run(5)``), and exit on
:meth:`~ShardedEngineRunner.close`. The start method prefers ``fork``
(cheap, Linux default) and falls back to ``spawn``; results are
identical under either — and under ``inline=True``, which runs the
shards sequentially in-process for debugging and for parity tests —
because every shard rebuilds its state from the plan alone (the
caller's generators are deep-copied per shard, never mutated).

Shard processes are also *supervised*. Each request/collect round runs
under a watchdog (``config.shard_timeout``; a hung shard raises
:class:`~repro.errors.ShardTimeoutError` instead of blocking forever)
and a crashed, hung or corrupt-framed shard is recovered by
**respawn-and-replay**: because a shard is a pure function of its
:class:`ShardPlan` plus the sequence of ``(windows, observations)``
requests it has served, the supervisor can spawn a replacement from
the same plan, fast-forward it through every completed window
(rebroadcasting the recorded per-window observations on adaptive
runs), and retry the failed round — the recovered run is bit-for-bit
identical to an unfaulted one. When a shard exhausts its
``config.max_shard_restarts`` budget the run either aborts loudly
(default) or, under ``on_shard_loss="degrade"``, continues on the
surviving shards with honest accounting (see
:meth:`ShardedEngineRunner` and ``WindowOutcome.shards_lost``). The
deterministic fault-injection harness in :mod:`repro.engine.faults`
exercises every one of these paths.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import random
import time
import traceback
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.broker.records import (
    decode_weighted_batches,
    encode_weighted_batches_chunks,
)
from repro.core.error_bounds import estimate_sum_with_error
from repro.core.estimator import ThetaStore
from repro.engine import faults as fault_injection
from repro.engine import shm
from repro.engine.pipeline import build_pipeline
from repro.engine.runner import (
    EngineRunner,
    RunOutcome,
    WindowOutcome,
    _estimate_window,
)
from repro.engine.transport import make_statistical_transport
from repro.errors import ConfigurationError, PipelineError, ShardTimeoutError
from repro.workloads.rates import RateSchedule

if TYPE_CHECKING:
    from repro.scenarios.scenario import Scenario
    from repro.system.config import PipelineConfig
    from repro.workloads.source import ItemGenerator

__all__ = ["ShardIpcStats", "ShardPlan", "ShardedEngineRunner", "plan_shards"]


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """One worker shard's share of a run.

    Attributes:
        index: Shard position (0-based); merge order follows it.
        workers: Total shard count of the plan this shard belongs to.
        seed: The shard's derived seed — drives its pipeline rng and,
            through it, every source rng and sampling decision.
        schedule: The shard's share of the arrival rates (every
            sub-stream at ``rate / workers``).
    """

    index: int
    workers: int
    seed: int
    schedule: RateSchedule


def plan_shards(
    config: "PipelineConfig", schedule: RateSchedule
) -> list[ShardPlan]:
    """Partition a run into ``config.workers`` deterministic shards.

    Shard seeds are drawn from ``random.Random(config.seed)`` in shard
    order, so the full plan is a pure function of ``(seed, workers)``
    — the determinism contract of sharded execution. The single-shard
    plan keeps the run seed itself (not a derived one): a one-worker
    sharded run is *defined* as the in-process run, bit for bit.
    """
    workers = config.workers
    if workers == 1:
        return [ShardPlan(0, 1, config.seed, schedule)]
    seed_rng = random.Random(config.seed)
    seeds = [seed_rng.getrandbits(64) for _ in range(workers)]
    return [
        ShardPlan(index, workers, seeds[index], shard_schedule)
        for index, shard_schedule in enumerate(schedule.split(workers))
    ]


#: One window slot's result as it crosses the process boundary:
#: ``(items_emitted, exact_sum, srs_sum, items_sampled, items_dropped,
#: theta_frame, sample_budget, theta_bytes, encode_seconds)``.
#: ``theta_frame`` carries the codec-encoded Theta batches — ``None``
#: for an empty window, the joined frame ``bytes`` on the pipe
#: transport (and as the ring-overflow fallback), or a
#: ``(sequence, offset, length)`` shared-memory descriptor on the shm
#: transport, where the frame bytes live in the shard's segment and
#: never transit the pipe. ``theta_bytes``/``encode_seconds`` are the
#: shard-side serde accounting (frame size and encode wall time);
#: ``sample_budget`` is the shard root's budget in effect for the slot
#: (the shard's budget controller decision). Plain tuple of primitives
#: + bytes on purpose — the pipe never pickles a record object.
_SlotResult = tuple[
    int, float, float, int, int,
    "bytes | tuple[int, int, int] | None", int, int, float,
]


class _ShardState:
    """A shard's private engine, rebuilt identically anywhere it runs.

    ``scenario`` (a :class:`~repro.scenarios.scenario.Scenario`, pure
    data) is bound to the shard's own tree and schedule here: scenario
    state is a pure function of the window index, so every shard
    recomputes the identical timeline with no coordination — churn
    takes the same nodes offline in every shard, rate events scale
    every shard's (already 1/N) rates by the same multipliers.
    """

    def __init__(
        self,
        plan: ShardPlan,
        config: "PipelineConfig",
        generators: "dict[str, ItemGenerator]",
        scenario: "Scenario | None" = None,
        segment: "shm.ShardSegment | None" = None,
        armed_faults: "tuple[fault_injection.FaultSpec, ...]" = (),
    ) -> None:
        #: The shard's shared-memory segment (``None`` on the pipe
        #: transport and in inline execution): Theta frames are written
        #: into it directly and only descriptors cross the pipe.
        self._segment = segment
        #: Injected faults still armed for this shard, keyed by the
        #: absolute window slot they fire at. The supervisor passes a
        #: respawned shard only the faults targeting windows *after*
        #: the recovered round, so replay never re-detonates.
        self._armed_faults = {spec.window: spec for spec in armed_faults}
        #: Absolute window slots this engine has run (replay included) —
        #: the coordinate injected faults are targeted at.
        self._slots_done = 0
        # The child's engine must not re-validate (or re-arm) the fault
        # plan: faults are delivered explicitly via ``armed_faults``.
        shard_config = replace(
            config, seed=plan.seed, workers=1, fault_plan=None
        )
        # Deep-copied so stateful generators (AR(1) levels, staging
        # buffers) evolve per shard and the caller's objects are never
        # mutated — inline and multi-process execution then agree.
        pipeline = build_pipeline(
            shard_config, plan.schedule, copy.deepcopy(generators)
        )
        engine = None
        if scenario is not None:
            from repro.scenarios.engine import ScenarioEngine

            engine = ScenarioEngine(scenario, pipeline.tree, plan.schedule)
        # Shards never observe their own (shard-local) Theta: under an
        # adaptive controller the parent merges every shard's root
        # state and broadcasts one global observation per window, so
        # all shards replay the identical controller decision.
        self._runner = EngineRunner(
            pipeline,
            make_statistical_transport(config.transport),
            scenario=engine,
            observe_locally=False,
        )

    def run_slots(
        self, windows: int, observations: "list | None" = None
    ) -> list[_SlotResult]:
        """Advance the shard through ``windows`` window slots.

        ``observations`` (when given) carries one broadcast
        :class:`~repro.system.adaptive.WindowObservation` (or ``None``
        = hold) per slot, applied to the shard's controller *before*
        the slot runs — the same observe-then-begin ordering the
        in-process engine follows between consecutive windows.
        """
        results: list[_SlotResult] = []
        for slot in range(windows):
            fault = self._armed_faults.pop(self._slots_done, None)
            self._slots_done += 1
            if (
                fault is not None
                and fault.kind != fault_injection.CORRUPT_DESCRIPTOR
            ):
                fault_injection.fire(fault)  # crash/hang never return
            if observations is not None and observations[slot] is not None:
                self._runner.apply_observation(observations[slot])
            outcome, theta = self._runner.run_window_with_theta()
            if outcome is None:
                # Budget still reported: a mixed slot (this shard idle,
                # others emitting) must sum the live decision exactly.
                pipeline = self._runner.pipeline
                budget = pipeline.budget(pipeline.tree.root.name)
                results.append((0, 0.0, 0.0, 0, 0, None, budget, 0, 0.0))
            else:
                started = time.perf_counter()
                chunks = encode_weighted_batches_chunks(theta.batches)
                theta_bytes = sum(len(chunk) for chunk in chunks)
                frame: "bytes | tuple[int, int, int] | None" = None
                if self._segment is not None:
                    # The zero-copy path: column buffers land in the
                    # shared segment, the pipe carries a descriptor.
                    frame = self._segment.write_frame(chunks, theta_bytes)
                if frame is None:  # pipe transport, or ring overflow
                    frame = b"".join(chunks)
                if fault is not None:  # corrupt-descriptor fault
                    frame = fault_injection.corrupt_frame(frame)
                encode_seconds = time.perf_counter() - started
                results.append(
                    (
                        outcome.items_emitted,
                        outcome.exact_sum,
                        outcome.srs_sum,
                        outcome.items_sampled,
                        outcome.items_dropped,
                        frame,
                        outcome.sample_budget,
                        theta_bytes,
                        encode_seconds,
                    )
                )
        return results


def _report_error(conn) -> None:
    """Best-effort error send: a vanished parent must not mask cleanup."""
    try:
        conn.send(("error", traceback.format_exc()))
    except (BrokenPipeError, OSError):  # parent already gone
        pass


def _shard_main(
    conn, plan, config, generators, scenario=None, segment_spec=None,
    armed_faults=(),
) -> None:
    """Entry point of one shard process: serve run requests until close.

    ``segment_spec`` (``None`` on the pipe transport) names the
    shared-memory segment the parent created for this shard; the child
    attaches it by name and detaches on exit — the parent side owns the
    unlink. ``armed_faults`` are the injected
    :class:`~repro.engine.faults.FaultSpec`\\ s still live for this
    shard (the supervisor disarms recovered ones before a respawn).

    The serve loop runs under ``try/finally`` so the child always
    detaches its pipe end and segment on the way out — even when the
    error report itself fails because the parent is already gone. (A
    SIGKILLed child never gets here at all; that is fine, because the
    parent side owns the segment unlink.)
    """
    segment = None
    try:
        try:
            if segment_spec is not None:
                segment = shm.ShardSegment.attach(*segment_spec)
            state = _ShardState(
                plan, config, generators, scenario, segment, armed_faults
            )
        except BaseException:  # noqa: BLE001 - must cross the pipe
            _report_error(conn)
            return
        while True:
            try:
                message = conn.recv()
            except EOFError:  # parent vanished without a close handshake
                break
            if message[0] == "close":
                break
            try:
                _tag, windows, observations, sequence = message
                if segment is not None:
                    segment.begin_round(sequence)
                    if observations is not None:
                        # Broadcast observations ride the control region;
                        # oversized ones arrive inline as a fallback.
                        observations = [
                            segment.unstash(entry)
                            if shm.is_ctrl_frame(entry)
                            else entry
                            for entry in observations
                        ]
                conn.send(("ok", state.run_slots(windows, observations)))
            except BaseException:  # noqa: BLE001 - must cross the pipe
                _report_error(conn)
                break
    finally:
        try:
            conn.close()
        finally:
            if segment is not None:
                segment.release()


class _ProcessShard:
    """Parent-side handle to one persistent shard process.

    ``segment`` (``None`` on the pipe transport) is the shard's
    shared-memory segment, created by the parent before the fork: the
    parent stashes broadcast observations into its control region at
    request time, resolves the shard's payload descriptors against it
    at collect time, and unlinks it on :meth:`close` — including after
    a mid-run shard failure, so no segment survives the runner.
    """

    def __init__(
        self, context, plan, config, generators, scenario=None, *,
        segment: "shm.ShardSegment | None" = None,
        armed_faults: "tuple[fault_injection.FaultSpec, ...]" = (),
    ) -> None:
        self.index = plan.index
        self.segment = segment
        self._sequence = 0
        self._closed = False
        self._conn, child = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_shard_main,
            args=(
                child, plan, config, generators, scenario,
                segment.spec if segment is not None else None,
                armed_faults,
            ),
            name=f"repro-shard-{plan.index}",
            daemon=True,
        )
        self._process.start()
        child.close()

    def request(
        self, windows: int, observations: "list | None" = None
    ) -> int:
        """Dispatch one round; returns how many broadcasts rode the ring."""
        self._sequence += 1
        stashed = 0
        if self.segment is not None:
            self.segment.begin_round(self._sequence)
            if observations is not None:
                resolved = []
                for entry in observations:
                    frame = (
                        self.segment.stash(entry)
                        if entry is not None
                        else None
                    )
                    if frame is not None:
                        stashed += 1
                    resolved.append(frame if frame is not None else entry)
                observations = resolved
        try:
            self._conn.send(("run", windows, observations, self._sequence))
        except (BrokenPipeError, OSError):
            raise PipelineError(
                f"worker shard {self.index} is gone (did a previous "
                f"window fail?); create a fresh runner"
            ) from None
        return stashed

    def collect(self, timeout: float | None = None) -> list[_SlotResult]:
        """Receive one round's slot results (raises on a dead shard).

        ``timeout`` (seconds; ``None`` blocks forever) is the watchdog
        deadline: a shard that has neither answered nor died within it
        raises :class:`~repro.errors.ShardTimeoutError` — ``poll``
        also wakes on EOF, so a crashed shard is diagnosed as dead (not
        as hung) no matter the deadline.
        """
        if timeout is not None and not self._conn.poll(timeout):
            raise ShardTimeoutError(
                f"worker shard {self.index} missed its {timeout:.3g}s "
                f"watchdog deadline (hung or stalled)"
            )
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise PipelineError(
                f"worker shard {self.index} died without a result"
            ) from None
        if status != "ok":
            raise PipelineError(
                f"worker shard {self.index} failed:\n{payload}"
            )
        return payload

    def _reap_process(self, handshake: bool) -> None:
        """Shared teardown: pipe, process (escalating), then segment.

        Escalation order ``join → terminate → kill``: a healthy child
        exits on the close handshake, a wedged one is SIGTERMed, and a
        child that survives even that (blocked in uninterruptible I/O)
        is SIGKILLed rather than abandoned alive as a zombie-to-be.
        """
        if self._closed:
            return
        self._closed = True
        if handshake:
            try:
                self._conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if handshake:
            self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck child
            self._process.kill()
            self._process.join(timeout=5.0)
        if self.segment is not None:
            self.segment.release()
            self.segment = None

    def close(self) -> None:
        """Stop the process and unlink the shard's segment (idempotent)."""
        self._reap_process(handshake=True)

    def reap(self) -> None:
        """Hard teardown of a failed shard: no handshake, straight to
        terminate/kill (a crashed or hung shard cannot answer one)."""
        self._reap_process(handshake=False)


class _InlineShard:
    """Same protocol as :class:`_ProcessShard`, run in the caller.

    Inline shards never cross a process boundary, so they carry no
    shared-memory segment; Theta frames stay on the bytes path (the
    codec round trip is kept for parity with process execution).
    """

    #: Inline shards have no shared-memory segment.
    segment = None

    def __init__(self, plan, config, generators, scenario=None) -> None:
        self.index = plan.index
        self._state = _ShardState(plan, config, generators, scenario)
        self._pending: list[_SlotResult] | None = None

    def request(
        self, windows: int, observations: "list | None" = None
    ) -> int:
        """Run the round eagerly in-process (no broadcasts ride a ring)."""
        self._pending = self._state.run_slots(windows, observations)
        return 0

    def collect(self, timeout: float | None = None) -> list[_SlotResult]:
        """Hand back the eagerly computed round.

        ``timeout`` is accepted for protocol parity and ignored: the
        round already ran to completion inside :meth:`request`, so an
        inline shard can never be caught hung.
        """
        assert self._pending is not None
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        """Drop any uncollected round."""
        self._pending = None

    #: Inline shards have no process to escalate on; reap == close.
    reap = close


def _mp_context():
    """The cheapest start method available, as ``(context, name)``.

    Fork where the OS has it (cheap, Linux default), spawn otherwise.
    The name feeds shard-transport resolution: shared memory engages
    only under fork (see :func:`repro.engine.shm.resolve_shard_transport`).
    """
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(method), method


@dataclass
class ShardIpcStats:
    """Per-window IPC accounting for the shard transport.

    Counters cover the Theta payload direction (shard → parent) plus
    the adaptive broadcast direction (parent → shard), accumulated
    across every window slot the runner has merged — so transport wins
    are attributable numbers, not vibes. Inline execution counts its
    codec frames as pipe bytes (what a process run would have sent).

    Attributes:
        transport: The resolved shard transport (``"pipe"``/``"shm"``).
        windows: Window slots merged so far.
        theta_bytes_encoded: Codec frame bytes produced by the shards
            (the payload volume, wherever it physically travelled).
        bytes_through_pipe: Bytes that actually crossed the Pipe for
            Theta payloads — whole frames on the pipe transport,
            pickled descriptors only on the shm transport.
        encode_seconds: Shard-side serde wall time (encode + ring write).
        decode_seconds: Parent-side serde wall time (decode).
        ring_overflows: Slots whose frame outgrew the shared ring and
            fell back to the pipe codec (shm transport only).
        ring_broadcasts: Adaptive observations broadcast through the
            control region instead of the pipe.
        restarts: Shard processes respawned by the supervisor after a
            crash, hang or corrupt frame (0 in a healthy run).
        timeouts: Rounds a shard missed its watchdog deadline
            (``config.shard_timeout``) on — each such miss is treated
            like a crash and drives a restart.
        replayed_windows: Window slots fast-forwarded through on
            respawned shards to rebuild their deterministic state —
            the recovery work amplification, measurable not vibes.
    """

    transport: str
    windows: int = 0
    theta_bytes_encoded: int = 0
    bytes_through_pipe: int = 0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    ring_overflows: int = 0
    ring_broadcasts: int = 0
    restarts: int = 0
    timeouts: int = 0
    replayed_windows: int = 0

    @property
    def serde_seconds(self) -> float:
        """Total serde wall time (shard-side encode + parent-side decode)."""
        return self.encode_seconds + self.decode_seconds

    @property
    def theta_bytes_per_window(self) -> float:
        """Mean codec payload bytes per merged window slot."""
        return self.theta_bytes_encoded / self.windows if self.windows else 0.0

    @property
    def pipe_bytes_per_window(self) -> float:
        """Mean bytes through the Pipe per merged window slot."""
        return self.bytes_through_pipe / self.windows if self.windows else 0.0


class ShardedEngineRunner:
    """Drives ``config.workers`` engine shards and merges at the root.

    A drop-in for :class:`~repro.engine.runner.EngineRunner`'s
    ``run``/``run_window`` surface. Shard processes start lazily on
    the first window and persist across calls; call :meth:`close`
    (or use the runner as a context manager) to reap them — they are
    daemons, so an unclosed runner still cannot outlive the parent.

    ``inline=True`` executes the same shard states sequentially in
    the calling process: identical results (the plan alone determines
    each shard's entropy), no parallelism — the debugging and
    parity-testing mode.

    The runner is also the shard *supervisor* (process mode only;
    inline shards cannot crash apart from the caller). Per round it
    classifies failures — watchdog timeout, process death, corrupt
    frame — and recovers by respawn-and-replay within
    ``config.max_shard_restarts`` per shard; a shard whose frames
    decoded corrupt is respawned *without* a shared-memory segment
    (degraded to the pipe codec), so a poisoned ring is never trusted
    again. Exhausted budgets follow ``config.on_shard_loss``: abort
    loudly, or degrade onto the surviving shards with per-window loss
    accounting. ``backoff_seconds`` scales the exponential backoff
    between respawn attempts (a test seam; the delay for attempt ``k``
    is ``min(2.0, backoff_seconds * 2**k)``).
    """

    def __init__(
        self,
        config: "PipelineConfig",
        schedule: RateSchedule,
        generators: "dict[str, ItemGenerator]",
        *,
        inline: bool = False,
        scenario: "Scenario | None" = None,
        ring_bytes: int | None = None,
        backoff_seconds: float = 0.05,
    ) -> None:
        if config.transport == "simnet":
            raise ConfigurationError(
                "sharded execution drives the statistical engine; the "
                "'simnet' transport requires the deployment simulator"
            )
        self._config = config
        self._plans = plan_shards(config, schedule)
        self._inline = inline or config.workers == 1
        fault_plan: "fault_injection.FaultPlan | None" = config.fault_plan
        if fault_plan is not None and fault_plan:
            if self._inline:
                raise ConfigurationError(
                    "fault injection targets worker shard processes; "
                    "inline and single-worker execution have no process "
                    "to kill — use workers > 1 without inline=True"
                )
            if fault_plan.max_shard() >= config.workers:
                raise ConfigurationError(
                    f"fault plan targets shard {fault_plan.max_shard()} "
                    f"but the run only has {config.workers} workers"
                )
            if fault_plan.needs_watchdog and config.shard_timeout is None:
                raise ConfigurationError(
                    "the fault plan injects a hang, which only the "
                    "watchdog can detect; set config.shard_timeout "
                    "(--shard-timeout)"
                )
        self._ring_bytes = (
            ring_bytes if ring_bytes is not None else shm.DEFAULT_RING_BYTES
        )
        if self._inline:
            # Inline shards share the caller's address space: there is
            # no pipe to bypass, so the codec stays on the bytes path.
            self._context = None
            self._shard_transport = "pipe"
        else:
            self._context, start_method = _mp_context()
            self._shard_transport = shm.resolve_shard_transport(
                config.shard_transport, start_method
            )
        self._ipc = ShardIpcStats(transport=self._shard_transport)
        self._schedule = schedule
        self._generators = generators
        self._scenario = scenario
        if scenario is not None:
            # Validate loudly in the parent before any shard spawns: a
            # bad event target must fail here, not inside N child
            # processes. Shards rebuild their own bound engines from
            # their (1/N-rate) schedules.
            from repro.scenarios.engine import ScenarioEngine

            ScenarioEngine(scenario, config.tree, schedule)
        self._shards: "list[_ProcessShard | _InlineShard] | None" = None
        self._windows_run = 0
        self._failed = False
        #: Adaptive runs go window-by-window: the merged-root
        #: observation of window N is broadcast to every shard before
        #: window N+1, persisting across run() calls like shard clocks.
        self._adaptive = config.budget_controller != "static"
        self._pending_observation = None
        # --- supervision state -----------------------------------------
        self._backoff_seconds = backoff_seconds
        #: Respawns consumed per shard (bounded by max_shard_restarts).
        self._restart_counts = [0] * len(self._plans)
        #: First still-armed fault window per shard: respawns receive
        #: only faults at windows >= this, so a recovered round's fault
        #: never re-detonates in the replacement.
        self._armed_from = [0] * len(self._plans)
        #: Shards declared lost under on_shard_loss="degrade"; their
        #: slots are skipped by every later round and accounted in the
        #: merge (items_dropped, shards_lost).
        self._lost: set[int] = set()
        #: Shards degraded to the pipe codec after a corrupt frame —
        #: their replacements never get a shared-memory segment again.
        self._pipe_degraded: set[int] = set()
        #: Steady-state items each shard contributes per window — the
        #: honest stand-in for a lost shard's unobservable emissions.
        self._expected_items = [
            int(round(plan.schedule.total_rate * config.window_seconds))
            for plan in self._plans
        ]
        #: Per-completed-window broadcast observations (adaptive runs
        #: only): the replay tape a respawned shard is fast-forwarded
        #: with. Entry i is what every shard applied before slot i.
        self._observation_log: list = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker shards this runner drives."""
        return len(self._plans)

    @property
    def shard_transport(self) -> str:
        """The resolved shard transport (``"pipe"`` or ``"shm"``)."""
        return self._shard_transport

    @property
    def ipc_stats(self) -> ShardIpcStats:
        """A snapshot of the runner's IPC accounting so far."""
        return replace(self._ipc)

    @property
    def shm_segment_names(self) -> list[str]:
        """Names of the live shared-memory segments (empty on pipe)."""
        if self._shards is None:
            return []
        return [
            shard.segment.name
            for shard in self._shards
            if shard.segment is not None
        ]

    def _ensure_shards(self) -> "list[_ProcessShard | _InlineShard]":
        if self._failed:
            raise PipelineError(
                "this sharded runner failed a previous round and its "
                "shard clocks are desynchronized; create a fresh runner"
            )
        if self._shards is None:
            if self._inline:
                self._shards = [
                    _InlineShard(
                        plan, self._config, self._generators, self._scenario
                    )
                    for plan in self._plans
                ]
            else:
                segments: "list[shm.ShardSegment | None]"
                if self._shard_transport == "shm":
                    # One segment per shard, created before the fork so
                    # the child inherits the mapping's name; released
                    # on close() (or, worst case, by their finalizers).
                    segments = []
                    try:
                        for _ in self._plans:
                            segments.append(
                                shm.ShardSegment.create(
                                    ring_bytes=self._ring_bytes
                                )
                            )
                    except BaseException:
                        for segment in segments:
                            segment.release()
                        raise
                else:
                    segments = [None] * len(self._plans)
                self._shards = [
                    _ProcessShard(
                        self._context, plan, self._config, self._generators,
                        self._scenario, segment=segment,
                        armed_faults=self._armed_faults(plan.index),
                    )
                    for plan, segment in zip(self._plans, segments)
                ]
        return self._shards

    def _armed_faults(
        self, index: int
    ) -> "tuple[fault_injection.FaultSpec, ...]":
        """The injected faults still live for one shard (window order)."""
        plan: "fault_injection.FaultPlan | None" = self._config.fault_plan
        if plan is None:
            return ()
        start = self._armed_from[index]
        return tuple(
            spec for spec in plan.for_shard(index) if spec.window >= start
        )

    def close(self) -> None:
        """Stop the shard processes (idempotent)."""
        if self._shards is not None:
            for shard in self._shards:
                shard.close()
            self._shards = None

    def __enter__(self) -> "ShardedEngineRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_slots(self, windows: int) -> list[WindowOutcome | None]:
        if self._adaptive:
            # Feedback closes the loop between consecutive windows, so
            # the shards cannot run a whole batch ahead: each window's
            # merged-root observation must reach every shard before
            # the next window samples. One request/collect round per
            # window, the broadcast riding the request.
            return [self._run_adaptive_slot() for _ in range(windows)]
        per_shard = self._run_round(windows, None)
        return [
            self._merge_slot(
                [
                    results[slot]
                    for results in per_shard
                    if results is not None
                ]
            )
            for slot in range(windows)
        ]

    def _run_adaptive_slot(self) -> WindowOutcome | None:
        """One window under feedback: broadcast, run, merge, observe."""
        # Record the broadcast *before* the round: entry i of the log
        # is what every shard applied before slot i, which is exactly
        # the replay tape a respawned shard must be fed.
        self._observation_log.append(self._pending_observation)
        per_shard = self._run_round(1, [self._pending_observation])
        return self._merge_slot(
            [results[0] for results in per_shard if results is not None]
        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _round_timeout(self, windows: int) -> float | None:
        """The watchdog deadline for one round (``None`` = no watchdog).

        ``config.shard_timeout`` is *per window slot*; a static round
        batches many slots into one request, so the round deadline
        scales with the request size.
        """
        if self._config.shard_timeout is None:
            return None
        return self._config.shard_timeout * max(1, windows)

    def _run_round(
        self, windows: int, observations: "list | None"
    ) -> "list[list | None]":
        """One supervised request/collect round across all live shards.

        Returns one decoded slot-result list per shard, positionally;
        ``None`` marks a shard lost (this round or earlier) under the
        degrade policy. Failures are classified per shard — watchdog
        ``"timeout"``, process ``"crash"`` (EOF, shard-reported error,
        failed dispatch), ``"corrupt"`` frame (decode failure) — and
        recovered by :meth:`_recover_shard`; surviving shards' results
        are kept, so one bad shard never discards its peers' round.
        """
        shards = self._ensure_shards()
        if self._inline:
            # Inline shards run in the caller's process: there is no
            # process to watch, kill or respawn, so failure keeps the
            # fail-stop contract — reap everything and refuse reuse,
            # so a retry fails loudly instead of merging skewed state.
            try:
                for shard in shards:
                    self._ipc.ring_broadcasts += shard.request(
                        windows, observations
                    )
                return [
                    [
                        self._decode_slot_payload(shard, result)
                        for result in shard.collect()
                    ]
                    for shard in shards
                ]
            except PipelineError:
                self._failed = True
                self.close()
                raise
        timeout = self._round_timeout(windows)
        per_shard: "list[list | None]" = [None] * len(shards)
        failed: dict[int, str] = {}
        for index, shard in enumerate(shards):  # dispatch to all live...
            if index in self._lost:
                continue
            try:
                self._ipc.ring_broadcasts += shard.request(
                    windows, observations
                )
            except PipelineError:
                failed[index] = "crash"
        for index, shard in enumerate(shards):  # ...then sync each.
            if index in self._lost or index in failed:
                continue
            try:
                raw = shard.collect(timeout)
            except ShardTimeoutError:
                self._ipc.timeouts += 1
                failed[index] = "timeout"
                continue
            except PipelineError:
                failed[index] = "crash"
                continue
            try:
                # Frames are decoded (copied out of the shared rings)
                # here, before any next round could reset the ring
                # cursors underneath the descriptors.
                per_shard[index] = [
                    self._decode_slot_payload(shard, result)
                    for result in raw
                ]
            except Exception:  # noqa: BLE001 - any decode failure
                failed[index] = "corrupt"
        for index in sorted(failed):
            per_shard[index] = self._recover_shard(
                index, failed[index], windows, observations, timeout
            )
        if all(results is None for results in per_shard):
            # Unreachable through _handle_shard_loss (it raises on the
            # last survivor), kept as a loud guard against merging
            # nothing at all.
            self._fail_round("every worker shard was lost in one round")
        return per_shard

    def _recover_shard(
        self,
        index: int,
        reason: str,
        windows: int,
        observations: "list | None",
        timeout: float | None,
    ) -> "list | None":
        """Respawn-and-replay one failed shard, bounded by the budget.

        Each attempt reaps the dead process, spawns a replacement from
        the same :class:`ShardPlan`, fast-forwards it through every
        completed window (:meth:`_replay` — deterministic, so the
        replacement's state is bit-identical to the lost shard's), and
        re-runs the failed round. Attempts back off exponentially.
        Returns the round's decoded slot results, or ``None`` when the
        budget is exhausted and the degrade policy drops the shard.
        """
        while self._restart_counts[index] < self._config.max_shard_restarts:
            attempt = self._restart_counts[index]
            self._restart_counts[index] += 1
            self._ipc.restarts += 1
            time.sleep(min(2.0, self._backoff_seconds * (2 ** attempt)))
            # Disarm the whole failed round's faults for this shard:
            # the fault already "served" its window, and neither replay
            # nor the retry may re-detonate it.
            self._armed_from[index] = self._windows_run + windows
            if reason == "corrupt":
                # A corrupt frame means the shard's ring (or its codec
                # stream) can no longer be trusted: degrade this shard
                # to the pipe codec for good — a poisoned ring must
                # never poison another round.
                self._pipe_degraded.add(index)
            shard = self._respawn(index)
            try:
                self._replay(shard)
                self._ipc.ring_broadcasts += shard.request(
                    windows, observations
                )
                raw = shard.collect(timeout)
                return [
                    self._decode_slot_payload(shard, result)
                    for result in raw
                ]
            except ShardTimeoutError:
                self._ipc.timeouts += 1
                reason = "timeout"
            except PipelineError:
                reason = "crash"
            except Exception:  # noqa: BLE001 - any decode failure
                reason = "corrupt"
        return self._handle_shard_loss(index, reason)

    def _respawn(self, index: int) -> _ProcessShard:
        """Replace one failed shard process from its original plan."""
        shards = self._shards
        assert shards is not None
        shards[index].reap()
        segment = None
        if (
            self._shard_transport == "shm"
            and index not in self._pipe_degraded
        ):
            # A fresh segment, never the old one: the dead shard may
            # have left the ring mid-write, and descriptors must only
            # ever resolve against bytes their own process wrote.
            segment = shm.ShardSegment.create(ring_bytes=self._ring_bytes)
        shard = _ProcessShard(
            self._context, self._plans[index], self._config,
            self._generators, self._scenario, segment=segment,
            armed_faults=self._armed_faults(index),
        )
        shards[index] = shard
        return shard

    def _replay(self, shard: _ProcessShard) -> None:
        """Fast-forward a fresh shard through every completed window.

        A shard is a pure function of its plan and its request tape, so
        one batched request over the completed slots — rebroadcasting
        the recorded per-window observations on adaptive runs — leaves
        the replacement's window clock, rng streams and controller
        state bit-identical to the lost shard's at the failed round.
        The replayed results are drained and discarded (the parent
        already merged those windows).
        """
        if self._windows_run == 0:
            return
        observations = None
        if self._adaptive:
            observations = list(self._observation_log[: self._windows_run])
        shard.request(self._windows_run, observations)
        shard.collect(self._round_timeout(self._windows_run))
        self._ipc.replayed_windows += self._windows_run

    def _handle_shard_loss(self, index: int, reason: str) -> None:
        """Apply ``on_shard_loss`` to a shard out of restart budget."""
        budget = self._config.max_shard_restarts
        shards = self._shards
        assert shards is not None
        shards[index].reap()
        if self._config.on_shard_loss != "degrade":
            self._fail_round(
                f"worker shard {index} lost ({reason}) after {budget} "
                f"restart(s); aborting under on_shard_loss='abort' — set "
                f"on_shard_loss='degrade' to continue on the surviving "
                f"shards with loss accounting"
            )
        self._lost.add(index)
        if len(self._lost) == len(self._plans):
            self._fail_round(
                f"worker shard {index} lost ({reason}) after {budget} "
                f"restart(s) and no shards survive; nothing to degrade "
                f"onto"
            )
        return None

    def _fail_round(self, message: str) -> None:
        """Poison the runner and raise: reap shards, refuse reuse."""
        self._failed = True
        self.close()
        raise PipelineError(message)

    def _decode_slot_payload(
        self, shard: "_ProcessShard | _InlineShard", result: _SlotResult
    ) -> "tuple[_SlotResult, list | None]":
        """Decode one slot's Theta frame, accounting the IPC cost.

        Shared-memory descriptors resolve to a zero-copy view over the
        shard's segment (the codec copies the columns out, so nothing
        aliases the ring after decode); bytes frames are either the
        pipe transport or a ring-overflow fallback. Returns the result
        paired with its decoded batches (``None`` for an empty slot).
        """
        frame = result[5]
        self._ipc.theta_bytes_encoded += result[7]
        self._ipc.encode_seconds += result[8]
        if frame is None:
            return (result, None)
        started = time.perf_counter()
        if isinstance(frame, tuple):
            # Only the pickled descriptor crossed the pipe.
            self._ipc.bytes_through_pipe += len(pickle.dumps(frame))
            view = shard.segment.read_frame(frame)
            try:
                batches = decode_weighted_batches(view)
            finally:
                view.release()
        else:
            self._ipc.bytes_through_pipe += len(frame)
            if shard.segment is not None:  # shm shard fell back: overflow
                self._ipc.ring_overflows += 1
            batches = decode_weighted_batches(frame)
        self._ipc.decode_seconds += time.perf_counter() - started
        return (result, batches)

    def _merge_slot(
        self, slot_results: "list[tuple[_SlotResult, list | None]]"
    ) -> WindowOutcome | None:
        """Combine one window slot's per-shard results at the root.

        ``slot_results`` covers the *surviving* shards only. Lost
        shards (degrade policy) are accounted honestly rather than
        silently absorbed: their steady-state expected items go into
        ``items_dropped``, the estimate and its error bound come from
        the surviving Theta alone, and ``shards_lost`` surfaces the
        loss on the outcome.
        """
        self._windows_run += 1
        self._ipc.windows += 1
        lost_items = sum(self._expected_items[i] for i in self._lost)
        items_emitted = sum(result[0] for result, _ in slot_results)
        if items_emitted == 0:
            if self._adaptive:
                self._pending_observation = None  # empty window: hold
            return None
        theta = ThetaStore()
        for _result, batches in slot_results:  # shard order == plan order
            if batches is not None:
                theta.extend(batches)
        if self._scenario is not None:
            # A scenario's degraded links can destroy every shard's
            # root-bound batches, leaving a non-empty window with an
            # empty merged Theta; static runs keep the loud error.
            approx = _estimate_window(theta, self._config.confidence)
        else:
            approx = estimate_sum_with_error(theta, self._config.confidence)
        if self._adaptive:
            # The merged root state is the observation — identical to
            # what an unsharded engine would observe, because the
            # codec round-trips every weight and value bit-for-bit.
            from repro.system.adaptive import observe_window

            self._pending_observation = observe_window(
                self._windows_run - 1, theta, approx
            )
        return WindowOutcome(
            window_index=self._windows_run,
            exact_sum=sum(result[1] for result, _ in slot_results),
            approx_sum=approx,
            srs_sum=sum(result[2] for result, _ in slot_results),
            items_emitted=items_emitted,
            items_sampled=sum(result[3] for result, _ in slot_results),
            items_dropped=(
                sum(result[4] for result, _ in slot_results) + lost_items
            ),
            sample_budget=sum(result[6] for result, _ in slot_results),
            shards_lost=len(self._lost),
        )

    def run_window(self) -> WindowOutcome | None:
        """Run one window across all shards; ``None`` if nothing emitted."""
        return self._run_slots(1)[0]

    def run(self, windows: int) -> RunOutcome:
        """Run several windows and collect the merged outcomes.

        Same contract as :meth:`EngineRunner.run`: empty windows
        contribute no outcome, and an entirely-empty run raises.
        """
        if windows <= 0:
            raise PipelineError(f"window count must be >= 1, got {windows}")
        outcome = RunOutcome()
        for window in self._run_slots(windows):
            if window is not None:
                outcome.windows.append(window)
        if not outcome.windows:
            raise PipelineError(
                "sources emitted no items in any window of the run; "
                "increase the source rates or the window size"
            )
        return outcome
