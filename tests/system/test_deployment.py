"""Integration tests for the deployment simulator."""

import pytest

from repro.errors import PipelineError
from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.deployment import DeploymentSimulator
from repro.topology.placement import PlacementSpec
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "test", {"A": 300.0, "B": 300.0, "C": 300.0, "D": 300.0}
)
#: Root saturates in native (aggregate 1200 vs root 150), edges have room.
PLACEMENT = PlacementSpec.paper_defaults(root_rate=150.0, edge_rate=1200.0)


def run_sim(mode, fraction=0.1, window=1.0, n_windows=6, seed=2):
    config = PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=window,
        mode=mode,
        placement=PLACEMENT,
        seed=seed,
    )
    simulator = DeploymentSimulator(config, SCHEDULE, GENS, n_windows=n_windows)
    return simulator.run()


class TestNative:
    def test_everything_reaches_root(self):
        report = run_sim(ExecutionMode.NATIVE, fraction=1.0)
        assert report.items_at_root == report.items_emitted
        assert report.realized_fraction == 1.0

    def test_root_saturation_caps_throughput(self):
        report = run_sim(ExecutionMode.NATIVE, fraction=1.0, n_windows=8)
        # Offered 1200/s vs root capacity 150/s: sustained ~150/s.
        assert report.throughput_items_per_second < 300.0

    def test_full_bytes_on_all_boundaries(self):
        report = run_sim(ExecutionMode.NATIVE, fraction=1.0)
        source_bytes, l1_bytes, l2_bytes = report.boundary_bytes
        assert source_bytes == l1_bytes == l2_bytes


class TestApproxIoT:
    def test_realized_fraction_tracks_config(self):
        report = run_sim(ExecutionMode.APPROXIOT, fraction=0.1, n_windows=8)
        assert report.realized_fraction == pytest.approx(0.1, rel=0.2)

    def test_upper_boundaries_carry_fraction_of_bytes(self):
        report = run_sim(ExecutionMode.APPROXIOT, fraction=0.1, n_windows=8)
        source_bytes, l1_bytes, l2_bytes = report.boundary_bytes
        assert l1_bytes == pytest.approx(source_bytes * 0.1, rel=0.25)
        assert l2_bytes == pytest.approx(source_bytes * 0.1, rel=0.25)

    def test_throughput_beats_native_at_low_fraction(self):
        approx = run_sim(ExecutionMode.APPROXIOT, fraction=0.1, n_windows=8)
        native = run_sim(ExecutionMode.NATIVE, fraction=1.0, n_windows=8)
        assert (
            approx.throughput_items_per_second
            > 2 * native.throughput_items_per_second
        )

    def test_latency_beats_native_at_low_fraction(self):
        approx = run_sim(ExecutionMode.APPROXIOT, fraction=0.1, n_windows=8)
        native = run_sim(ExecutionMode.NATIVE, fraction=1.0, n_windows=8)
        assert approx.mean_latency_seconds < native.mean_latency_seconds

    def test_latency_grows_with_window_size(self):
        small = run_sim(ExecutionMode.APPROXIOT, window=0.5, n_windows=8)
        large = run_sim(ExecutionMode.APPROXIOT, window=2.0, n_windows=8)
        assert large.mean_latency_seconds > small.mean_latency_seconds

    def test_no_items_stranded(self):
        """Every emitted item is either dropped by sampling or processed."""
        report = run_sim(ExecutionMode.APPROXIOT, fraction=0.5, n_windows=4)
        assert 0 < report.items_at_root <= report.items_emitted


class TestSRS:
    def test_latency_flat_across_window_sizes(self):
        """SRS needs no sampling window (Fig. 9's flat line)."""
        small = run_sim(ExecutionMode.SRS, window=0.5, n_windows=8)
        large = run_sim(ExecutionMode.SRS, window=3.0, n_windows=8)
        assert large.mean_latency_seconds == pytest.approx(
            small.mean_latency_seconds, rel=0.25
        )

    def test_latency_below_approxiot(self):
        srs = run_sim(ExecutionMode.SRS, window=2.0, n_windows=6)
        approxiot = run_sim(ExecutionMode.APPROXIOT, window=2.0, n_windows=6)
        assert srs.mean_latency_seconds < approxiot.mean_latency_seconds

    def test_realized_fraction_near_configured(self):
        report = run_sim(ExecutionMode.SRS, fraction=0.2, n_windows=8)
        assert report.realized_fraction == pytest.approx(0.2, rel=0.25)

    def test_throughput_similar_to_approxiot(self):
        srs = run_sim(ExecutionMode.SRS, fraction=0.1, n_windows=8)
        approxiot = run_sim(ExecutionMode.APPROXIOT, fraction=0.1, n_windows=8)
        assert srs.throughput_items_per_second == pytest.approx(
            approxiot.throughput_items_per_second, rel=0.5
        )


class TestReportValidation:
    def test_n_windows_validated(self):
        config = PipelineConfig(placement=PLACEMENT)
        with pytest.raises(PipelineError):
            DeploymentSimulator(config, SCHEDULE, GENS, n_windows=0)

    def test_missing_generators(self):
        config = PipelineConfig(placement=PLACEMENT)
        schedule = RateSchedule("s", {"Z": 10.0})
        with pytest.raises(PipelineError):
            DeploymentSimulator(config, schedule, GENS, n_windows=1)

    def test_report_fields_consistent(self):
        report = run_sim(ExecutionMode.APPROXIOT, n_windows=4)
        assert report.mode == ExecutionMode.APPROXIOT
        assert report.sampling_fraction == 0.1
        assert report.window_seconds == 1.0
        assert report.makespan_seconds > 0
        assert len(report.boundary_bytes) == 3
