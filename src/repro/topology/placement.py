"""Placement: map a logical tree onto simulated hosts and WAN links.

Builds a :class:`~repro.simnet.network.Network` with one host per tree
node and one upstream link per child-parent edge, shaped with the
paper's per-layer ``tc`` settings (20 ms RTT sources→L1, 40 ms L1→L2,
80 ms L2→root, 1 Gbps everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TreeError
from repro.simnet.clock import Clock
from repro.simnet.netem import NetemConfig
from repro.simnet.network import Network
from repro.topology.tree import LogicalTree

__all__ = ["PlacementSpec", "place_tree"]


@dataclass
class PlacementSpec:
    """Service rates and link shaping for each layer.

    Attributes:
        layer_service_rates: items/second per host, one entry per layer
            (sources first). Sources are usually given a very high rate
            since generation is not the bottleneck under study.
        uplink_configs: shaping of the link from layer ``i`` to layer
            ``i+1``; one entry per layer boundary.
    """

    layer_service_rates: list[float]
    uplink_configs: list[NetemConfig]

    @classmethod
    def paper_defaults(cls, root_rate: float = 12_000.0,
                       edge_rate: float = 40_000.0) -> "PlacementSpec":
        """Rates/shaping mirroring the paper's 4-layer testbed.

        The root service rate is chosen so the native execution
        saturates near the paper's ~11k items/s; edge nodes are
        provisioned higher, so sampling shifts the bottleneck away from
        the datacenter exactly as in Fig. 6.
        """
        return cls(
            layer_service_rates=[1e12, edge_rate, edge_rate, root_rate],
            uplink_configs=[
                NetemConfig.from_rtt(20.0, 1e9),
                NetemConfig.from_rtt(40.0, 1e9),
                NetemConfig.from_rtt(80.0, 1e9),
            ],
        )


def place_tree(
    tree: LogicalTree,
    spec: PlacementSpec,
    clock: Clock | None = None,
) -> Network:
    """Instantiate hosts and uplinks for every tree node and edge."""
    if len(spec.layer_service_rates) != tree.depth:
        raise TreeError(
            f"need one service rate per layer: got "
            f"{len(spec.layer_service_rates)} for depth {tree.depth}"
        )
    if len(spec.uplink_configs) != tree.depth - 1:
        raise TreeError(
            f"need one uplink config per layer boundary: got "
            f"{len(spec.uplink_configs)} for depth {tree.depth}"
        )
    network = Network(clock)
    for layer in range(tree.depth):
        for node in tree.layer(layer):
            network.add_host(node.name, spec.layer_service_rates[layer])
    for layer in range(tree.depth - 1):
        for node in tree.layer(layer):
            assert node.parent is not None
            network.add_link(node.name, node.parent, spec.uplink_configs[layer])
    return network
