"""Integration tests for the adaptive feedback driver."""

import math

import pytest

from repro.core.cost import AdaptiveErrorBudget
from repro.errors import PipelineError
from repro.system.config import PipelineConfig
from repro.system.feedback import FeedbackDriver
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import GaussianSubstream, paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "test", {"A": 400.0, "B": 400.0, "C": 400.0, "D": 400.0}
)


def make_driver(target, initial):
    config = PipelineConfig(sampling_fraction=initial, seed=11)
    controller = AdaptiveErrorBudget(
        target, initial_fraction=initial, min_fraction=0.01
    )
    return FeedbackDriver(config, SCHEDULE, GENS, controller), controller


class TestFeedback:
    def test_fraction_grows_under_tight_target(self):
        driver, controller = make_driver(target=1e-6, initial=0.05)
        outcome = driver.run(6)
        assert outcome.final_fraction > 0.05
        assert controller.fraction == outcome.fractions[-1] or (
            controller.fraction == controller.history[-1]
        )

    def test_fraction_shrinks_under_loose_target(self):
        driver, _ = make_driver(target=0.5, initial=0.8)
        outcome = driver.run(6)
        assert outcome.final_fraction < 0.8

    def test_trace_lengths_match(self):
        driver, _ = make_driver(target=0.01, initial=0.1)
        outcome = driver.run(4)
        assert len(outcome.windows) == 4
        assert len(outcome.fractions) == 4
        assert len(outcome.relative_errors) == 4

    def test_errors_tighten_as_fraction_grows(self):
        driver, _ = make_driver(target=1e-9, initial=0.02)
        outcome = driver.run(10)
        early = sum(outcome.relative_errors[:3]) / 3
        late = sum(outcome.relative_errors[-3:]) / 3
        assert late < early

    def test_zero_estimate_windows_hold_the_fraction(self):
        """Regression: a zero estimate must not read as a perfect one.

        Every window of an all-zero workload yields estimate 0, which
        has no relative error. The driver used to record it as
        ``relative_error = 0.0`` — "the estimate was perfect" — and
        shrink the budget exactly when the system was blind. Now the
        controller holds its fraction and the trace records ``nan``.
        """
        config = PipelineConfig(sampling_fraction=0.1, seed=11)
        controller = AdaptiveErrorBudget(
            0.05, initial_fraction=0.1, min_fraction=0.01
        )
        zero_gens = {
            name: GaussianSubstream(name, mu=0.0, sigma=0.0)
            for name in ("A", "B", "C", "D")
        }
        driver = FeedbackDriver(config, SCHEDULE, zero_gens, controller)
        outcome = driver.run(5)
        assert controller.fraction == 0.1
        assert outcome.fractions == [0.1] * 5
        assert len(outcome.relative_errors) == 5
        assert all(math.isnan(e) for e in outcome.relative_errors)

    def test_zero_windows_rejected(self):
        driver, _ = make_driver(target=0.1, initial=0.1)
        with pytest.raises(PipelineError):
            driver.run(0)

    def test_empty_outcome_final_fraction_raises(self):
        from repro.system.feedback import FeedbackOutcome

        with pytest.raises(PipelineError):
            FeedbackOutcome().final_fraction
