"""Unit tests for netem-style packet loss on links."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simnet.clock import Clock
from repro.simnet.link import Link
from repro.simnet.netem import NetemConfig


class TestLossConfig:
    def test_default_lossless(self):
        assert NetemConfig(1.0, 1e9).loss == 0.0

    def test_from_rtt_carries_loss(self):
        config = NetemConfig.from_rtt(20.0, 1e9, loss=0.05)
        assert config.loss == 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetemConfig(1.0, 1e9, loss=-0.1)
        with pytest.raises(ConfigurationError):
            NetemConfig(1.0, 1e9, loss=1.0)


class TestLossyLink:
    def test_lossless_link_delivers_everything(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(1.0, 1e9), random.Random(1))
        delivered = []
        for i in range(100):
            link.transfer(10, i, delivered.append)
        clock.run()
        assert len(delivered) == 100
        assert link.messages_dropped == 0

    def test_loss_rate_approximates_config(self):
        clock = Clock()
        link = Link(
            "l", clock, NetemConfig(1.0, 1e9, loss=0.3), random.Random(2)
        )
        delivered = []
        for i in range(5000):
            link.transfer(10, i, delivered.append)
        clock.run()
        drop_rate = link.messages_dropped / 5000
        assert drop_rate == pytest.approx(0.3, abs=0.05)
        assert len(delivered) + link.messages_dropped == 5000

    def test_dropped_transfer_returns_none(self):
        clock = Clock()
        link = Link(
            "l", clock, NetemConfig(1.0, 1e9, loss=0.999), random.Random(3)
        )
        outcomes = [link.transfer(10, i, lambda m: None) for i in range(50)]
        assert any(outcome is None for outcome in outcomes)

    def test_drops_still_burn_wire_time(self):
        """A lost packet occupied the wire before it vanished."""
        clock = Clock()
        link = Link(
            "l", clock,
            NetemConfig(delay_ms=0.0, rate_bps=8_000.0, loss=0.999),
            random.Random(4),
        )
        for i in range(3):
            link.transfer(1000, i, lambda m: None)  # 1s serialization each
        delivered_at = link.transfer(1000, "x", lambda m: None)
        # Even if this one survives, it queued behind the lost ones.
        if delivered_at is not None:
            assert delivered_at >= 4.0
        assert link.bytes_sent == 4000

    def test_reset_clears_drop_counter(self):
        clock = Clock()
        link = Link(
            "l", clock, NetemConfig(1.0, 1e9, loss=0.5), random.Random(5)
        )
        for i in range(100):
            link.transfer(10, i, lambda m: None)
        link.reset_counters()
        assert link.messages_dropped == 0
