"""Per-node drivers for Algorithm 2.

Two roles exist in the logical tree:

* :class:`SamplingNode` — an edge computing node. Per time interval it
  runs weighted hierarchical sampling over everything that arrived and
  forwards the ``(W_out, sample)`` pairs to its parent.
* :class:`RootNode` — the datacenter node. It samples like any other
  node, but instead of forwarding it accumulates batches in a
  :class:`~repro.core.estimator.ThetaStore` and, when the window
  closes, runs the query and attaches error bounds.

Both roles consume :class:`~repro.core.items.WeightedBatch` objects so
a node can ingest either raw source data (weight 1) or the output of a
downstream node. This mirrors the paper's store ``Psi`` of
``(W_in, items)`` pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.error_bounds import (
    ApproximateResult,
    estimate_mean_with_error,
    estimate_sum_with_error,
)
from repro.core.estimator import ThetaStore
from repro.core.fastpath import BACKEND_AUTO, resolve_backend
from repro.core.items import StreamItem, WeightedBatch
from repro.core.stratified import AllocationPolicy, allocate_fair_fill
from repro.core.whs import WHSampResult, whsamp_batches
from repro.core.weights import WeightMap
from repro.errors import PipelineError

__all__ = ["SamplingNode", "RootNode", "QueryResult"]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Output of one query window at the root: ``result ± error``.

    Attributes:
        window_index: Which window (interval sequence number) this is.
        sum: The approximate SUM* with its error bound.
        mean: The approximate MEAN* with its error bound.
        sampled_items: Number of physical items the window used.
        estimated_items: Recovered total item count (Eq. 8 per stratum).
    """

    window_index: int
    sum: ApproximateResult
    mean: ApproximateResult
    sampled_items: int
    estimated_items: float


class _NodeBase:
    """State shared by sampling and root nodes: Psi, weights, sampler."""

    def __init__(
        self,
        name: str,
        sample_size: int,
        *,
        policy: AllocationPolicy = allocate_fair_fill,
        rng: random.Random | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        if sample_size <= 0:
            raise PipelineError(f"sample size must be positive, got {sample_size}")
        self.name = name
        self._sample_size = int(sample_size)
        self._policy = policy
        self._rng = rng if rng is not None else random.Random()
        self._backend = resolve_backend(backend)
        self._weights = WeightMap()
        self._psi: list[WeightedBatch] = []
        self.intervals_processed = 0

    @property
    def sample_size(self) -> int:
        """Per-interval sample budget (line 3 of Algorithm 2)."""
        return self._sample_size

    @sample_size.setter
    def sample_size(self, value: int) -> None:
        if value <= 0:
            raise PipelineError(f"sample size must be positive, got {value}")
        self._sample_size = int(value)

    @property
    def backend(self) -> str:
        """Resolved sampling backend (``"python"`` or ``"numpy"``)."""
        return self._backend

    @property
    def weights(self) -> WeightMap:
        """The node's current weight map (stale weights persist)."""
        return self._weights

    @property
    def pending_items(self) -> int:
        """Items buffered for the current interval."""
        return sum(len(batch) for batch in self._psi)

    def receive(self, batch: WeightedBatch) -> None:
        """Buffer one ``(W_in, items)`` pair into Psi for this interval."""
        self._weights.update(batch.substream, batch.weight)
        self._psi.append(batch)

    def receive_raw(self, items: Iterable[StreamItem]) -> None:
        """Buffer items that arrived without weight metadata.

        Figure 3's stale-weight rule applies: each stratum takes the
        node's most recent weight for it, which is the default 1.0 for
        items fresh from a data source.
        """
        by_stream: dict[str, list[StreamItem]] = {}
        for item in items:
            by_stream.setdefault(item.substream, []).append(item)
        for substream, sub_items in by_stream.items():
            self._psi.append(
                WeightedBatch(substream, self._weights.get(substream), sub_items)
            )

    def _drain_interval(self) -> WHSampResult:
        """Consume Psi: run WHSamp over every buffered pair (lines 5-19).

        Pairs are sampled per ``(sub-stream, weight)`` group — merging
        pairs with different input weights under one reservoir would
        break the count invariant (Eq. 8).
        """
        pairs = list(self._psi)
        self._psi.clear()
        result = whsamp_batches(
            pairs,
            self._sample_size,
            policy=self._policy,
            rng=self._rng,
            backend=self._backend,
        )
        # The node's weight map tracks *received* weights only (updated
        # in receive()); its own output weights never feed back, per
        # Figure 3's stale-weight rule.
        self.intervals_processed += 1
        return result


class SamplingNode(_NodeBase):
    """An edge node: sample each interval and forward to the parent.

    The ``forward`` callable abstracts the transport (in-process list,
    pub/sub topic, or simulated WAN link); Algorithm 2 line 13 is
    ``Send(parent, W_out, sample)``.
    """

    def __init__(
        self,
        name: str,
        sample_size: int,
        forward: Callable[[WeightedBatch], None],
        *,
        policy: AllocationPolicy = allocate_fair_fill,
        rng: random.Random | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        super().__init__(name, sample_size, policy=policy, rng=rng, backend=backend)
        self._forward = forward

    def close_interval(self) -> WHSampResult:
        """End the current interval: sample and forward the batches."""
        result = self._drain_interval()
        for batch in result.batches:
            self._forward(batch)
        return result


class RootNode(_NodeBase):
    """The datacenter node: sample, accumulate Theta, run the query."""

    def __init__(
        self,
        name: str,
        sample_size: int,
        *,
        confidence: float = 0.95,
        policy: AllocationPolicy = allocate_fair_fill,
        rng: random.Random | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        super().__init__(name, sample_size, policy=policy, rng=rng, backend=backend)
        self._confidence = confidence
        self._theta = ThetaStore()
        self._windows_closed = 0

    @property
    def theta(self) -> ThetaStore:
        """The accumulating store of ``(W_out, sample)`` pairs."""
        return self._theta

    def close_interval(self) -> WHSampResult:
        """End the interval: sample and stash batches into Theta."""
        result = self._drain_interval()
        self._theta.extend(result.batches)
        return result

    def run_query(self) -> QueryResult:
        """Execute the window query over Theta (lines 20-25).

        Computes SUM* and MEAN* with error bounds, clears Theta and
        returns the ``result ± error`` record.
        """
        if len(self._theta) == 0:
            raise PipelineError("no data accumulated for this window")
        estimates = self._theta.per_substream()
        approx_sum = estimate_sum_with_error(self._theta, self._confidence)
        approx_mean = estimate_mean_with_error(self._theta, self._confidence)
        sampled = sum(est.sampled_count for est in estimates.values())
        estimated = sum(est.estimated_count for est in estimates.values())
        self._theta.clear()
        self._windows_closed += 1
        return QueryResult(
            window_index=self._windows_closed,
            sum=approx_sum,
            mean=approx_mean,
            sampled_items=sampled,
            estimated_items=estimated,
        )
