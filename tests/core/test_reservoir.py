"""Unit tests for reservoir sampling primitives."""

import random
from collections import Counter

import pytest

from repro.core.reservoir import (
    ReservoirSampler,
    SkipAheadReservoirSampler,
    expected_inclusion_probability,
    gap_distribution_mean,
    reservoir_sample,
)
from repro.errors import SamplingError


class TestReservoirSampler:
    def test_keeps_everything_below_capacity(self):
        sampler = ReservoirSampler(10, random.Random(1))
        sampler.extend(range(7))
        assert sorted(sampler.sample()) == list(range(7))
        assert not sampler.is_saturated

    def test_never_exceeds_capacity(self):
        sampler = ReservoirSampler(5, random.Random(2))
        sampler.extend(range(1000))
        assert len(sampler) == 5
        assert sampler.is_saturated

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(8, random.Random(3))
        stream = list(range(200))
        sampler.extend(stream)
        assert set(sampler.sample()) <= set(stream)

    def test_seen_counts_offers(self):
        sampler = ReservoirSampler(3, random.Random(4))
        sampler.extend(range(42))
        assert sampler.seen == 42

    def test_reset_clears_state(self):
        sampler = ReservoirSampler(3, random.Random(5))
        sampler.extend(range(10))
        sampler.reset()
        assert sampler.seen == 0
        assert len(sampler) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(0)
        with pytest.raises(SamplingError):
            ReservoirSampler(-3)

    def test_uniformity_chi_square_like(self):
        """Every item should land in the reservoir ~equally often."""
        capacity, stream_len, trials = 5, 25, 4000
        counts = Counter()
        rng = random.Random(6)
        for _ in range(trials):
            counts.update(reservoir_sample(list(range(stream_len)), capacity, rng))
        expected = trials * capacity / stream_len
        for item in range(stream_len):
            assert counts[item] == pytest.approx(expected, rel=0.15)

    def test_sample_returns_copy(self):
        sampler = ReservoirSampler(3, random.Random(7))
        sampler.extend(range(3))
        snapshot = sampler.sample()
        snapshot.append(99)
        assert len(sampler.sample()) == 3


class TestSkipAheadReservoirSampler:
    def test_never_exceeds_capacity(self):
        sampler = SkipAheadReservoirSampler(7, random.Random(8))
        sampler.extend(range(5000))
        assert len(sampler) == 7
        assert sampler.seen == 5000

    def test_keeps_everything_below_capacity(self):
        sampler = SkipAheadReservoirSampler(10, random.Random(9))
        sampler.extend(range(4))
        assert sorted(sampler.sample()) == [0, 1, 2, 3]

    def test_reset_clears_skip_state(self):
        sampler = SkipAheadReservoirSampler(4, random.Random(10))
        sampler.extend(range(100))
        sampler.reset()
        sampler.extend(range(4))
        assert sorted(sampler.sample()) == [0, 1, 2, 3]

    def test_approximate_uniformity(self):
        """Skip-ahead must match Algorithm R's marginal probabilities."""
        capacity, stream_len, trials = 4, 40, 6000
        counts = Counter()
        rng = random.Random(11)
        for _ in range(trials):
            sampler = SkipAheadReservoirSampler(capacity, rng)
            sampler.extend(range(stream_len))
            counts.update(sampler.sample())
        expected = trials * capacity / stream_len
        for item in range(stream_len):
            assert counts[item] == pytest.approx(expected, rel=0.25)

    def test_late_items_still_selected(self):
        """The tail of a long stream must not be starved by skipping."""
        rng = random.Random(12)
        tail_hits = 0
        for _ in range(500):
            sampler = SkipAheadReservoirSampler(10, rng)
            sampler.extend(range(1000))
            tail_hits += sum(1 for x in sampler.sample() if x >= 900)
        # Expected hits: 500 trials * 10 slots * 100/1000 = 500.
        assert 300 < tail_hits < 700


class TestHelpers:
    def test_inclusion_probability_saturated(self):
        assert expected_inclusion_probability(100, 10) == pytest.approx(0.1)

    def test_inclusion_probability_unsaturated(self):
        assert expected_inclusion_probability(5, 10) == 1.0

    def test_inclusion_probability_validation(self):
        with pytest.raises(SamplingError):
            expected_inclusion_probability(0, 10)
        with pytest.raises(SamplingError):
            expected_inclusion_probability(10, 0)

    def test_gap_mean_grows_with_seen(self):
        assert gap_distribution_mean(1000, 10) > gap_distribution_mean(100, 10)

    def test_gap_mean_validation(self):
        with pytest.raises(SamplingError):
            gap_distribution_mean(10, 0)

    def test_one_shot_reservoir_sample(self):
        out = reservoir_sample(list(range(50)), 5, random.Random(13))
        assert len(out) == 5
        assert set(out) <= set(range(50))


class TestMergeFrom:
    def test_merged_state_counts_both_streams(self):
        left = ReservoirSampler(8, random.Random(1))
        right = ReservoirSampler(8, random.Random(2))
        left.extend(range(0, 30))
        right.extend(range(100, 150))
        left.merge_from(right)
        assert left.seen == 80
        assert len(left) == 8
        assert all(0 <= v < 30 or 100 <= v < 150 for v in left.sample())

    def test_partial_reservoirs_merge_without_loss(self):
        left = ReservoirSampler(10, random.Random(3))
        right = ReservoirSampler(10, random.Random(4))
        left.extend(range(3))
        right.extend(range(10, 14))
        left.merge_from(right)
        assert left.seen == 7
        assert sorted(left.sample()) == [0, 1, 2, 10, 11, 12, 13]

    def test_empty_sides_are_noops_or_adoption(self):
        left = ReservoirSampler(5, random.Random(5))
        right = ReservoirSampler(5, random.Random(6))
        left.merge_from(right)
        assert left.seen == 0 and len(left) == 0
        right.extend(range(20))
        left.merge_from(right)
        assert left.seen == 20
        assert sorted(left.sample()) == sorted(right.sample())

    def test_capacity_mismatch_is_rejected(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(5).merge_from(ReservoirSampler(6))

    def test_merge_is_uniform_over_the_union(self):
        """Every item of either stream should survive a merge with
        probability ~ k / (n_a + n_b)."""
        counts = Counter()
        trials = 3000
        rng = random.Random(7)
        for _ in range(trials):
            left = ReservoirSampler(4, random.Random(rng.getrandbits(32)))
            right = ReservoirSampler(4, random.Random(rng.getrandbits(32)))
            left.extend(range(8))        # stream A: 0..7
            right.extend(range(8, 20))   # stream B: 8..19
            left.merge_from(right)
            counts.update(left.sample())
        expected = trials * 4 / 20.0
        for value in range(20):
            assert counts[value] == pytest.approx(expected, rel=0.25)
