"""Low-level Processor API (the Kafka Streams model).

A *processor* receives keyed records one at a time, may keep state, and
forwards zero or more records to its downstream children through a
:class:`ProcessorContext`. The paper implements its sampling module as
exactly such a user-defined processor; `repro.system` plugs the
weighted-hierarchical-sampling processor into this API.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TopologyError

__all__ = ["Processor", "ProcessorContext", "FunctionProcessor"]


class ProcessorContext:
    """Runtime services handed to a processor: forwarding, time, state."""

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self._children: list[Processor] = []
        self._stores: dict[str, Any] = {}
        self.stream_time = 0.0
        #: Resolved sampling backend ("python" / "numpy") for sampling
        #: processors plugged into the DSL; set by the runtime before
        #: ``init()`` runs (see ``StreamsRuntime(sampling_backend=...)``).
        self.sampling_backend = "python"

    def add_child(self, child: "Processor") -> None:
        """Wire a downstream processor (topology construction only)."""
        self._children.append(child)

    def forward(self, key: Any, value: Any) -> None:
        """Send a record to every downstream child.

        Stream time rides along with the record so windowed processors
        deeper in the DAG assign it to the right window.
        """
        for child in self._children:
            child.context.stream_time = self.stream_time
            child.process(key, value)

    def register_store(self, name: str, store: Any) -> None:
        """Attach a state store to this node."""
        if name in self._stores:
            raise TopologyError(f"store {name!r} already registered")
        self._stores[name] = store

    def store(self, name: str) -> Any:
        """Access a registered state store."""
        try:
            return self._stores[name]
        except KeyError:
            raise TopologyError(
                f"processor {self.node_name!r} has no store {name!r}"
            ) from None


class Processor:
    """Base class for stream processors.

    Subclasses override :meth:`process`; :meth:`init` runs once when the
    topology starts and :meth:`close` when it stops (punctuation-style
    periodic work is driven by the runtime calling :meth:`punctuate`).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.context: ProcessorContext = ProcessorContext(name)

    def init(self) -> None:
        """One-time setup before any record is processed."""

    def process(self, key: Any, value: Any) -> None:
        """Handle one record. Default: pass it through unchanged."""
        self.context.forward(key, value)

    def punctuate(self, stream_time: float) -> None:
        """Periodic hook (window boundaries, flushes)."""

    def close(self) -> None:
        """Tear-down after the last record."""


class FunctionProcessor(Processor):
    """Adapter turning a plain callable into a processor.

    The callable receives ``(key, value, context)`` and uses
    ``context.forward`` to emit records, which covers map/filter/flatMap
    patterns without dedicated subclasses.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any, ProcessorContext], None],
    ) -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, key: Any, value: Any) -> None:
        """Invoke the wrapped callable with the processor's context."""
        self._fn(key, value, self.context)
