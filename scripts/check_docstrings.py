#!/usr/bin/env python3
"""Docstring coverage check for the public API of ``src/repro``.

Every public module, class, function and method must carry a
docstring. "Public" means the name (and, for nested definitions,
every enclosing name) has no leading underscore; dunder methods are
exempt (the class docstring documents construction and protocol
behaviour). Docstrings are the project's primary documentation layer
— the architecture docs link into them — so a missing one is a CI
failure, not a style nit.

The check is pure ``ast``: no imports of the checked code, so it runs
identically with or without optional dependencies.

Usage: python scripts/check_docstrings.py [package-dir ...]
       (defaults to src/repro)
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def is_public(name: str) -> bool:
    """Whether a name is part of the public API surface."""
    return not name.startswith("_")


def is_property_companion(node: ast.AST) -> bool:
    """Whether a function is a ``@x.setter`` / ``@x.deleter``.

    The property *getter* carries the attribute's docstring; its
    companions document nothing new.
    """
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            "setter",
            "deleter",
        ):
            return True
    return False


def missing_docstrings(source: str, label: str) -> list[str]:
    """All public definitions in one module lacking a docstring.

    Returns human-readable ``label:line: kind name`` entries. The
    module itself counts as a definition (line 1).
    """
    tree = ast.parse(source, filename=label)
    errors: list[str] = []
    if ast.get_docstring(tree) is None:
        errors.append(f"{label}:1: module has no docstring")

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _DEF_NODES):
                continue
            name = child.name
            dunder = name.startswith("__") and name.endswith("__")
            if not is_public(name) and not dunder:
                continue  # private subtree: nothing below it is public
            if dunder:
                continue  # documented by the class docstring
            if is_property_companion(child):
                continue  # the getter carries the docstring
            qualified = f"{prefix}{name}"
            if ast.get_docstring(child) is None:
                kind = (
                    "class" if isinstance(child, ast.ClassDef) else "function"
                )
                errors.append(
                    f"{label}:{child.lineno}: {kind} {qualified} "
                    f"has no docstring"
                )
            if isinstance(child, ast.ClassDef):
                walk(child, f"{qualified}.")
            # Functions' inner defs are implementation detail; skip.

    walk(tree, "")
    return errors


def collect_modules(arguments: list[str]) -> list[pathlib.Path]:
    """The python files to check (public modules only)."""
    roots = [pathlib.Path(argument) for argument in arguments]
    if not roots:
        roots = [REPO_ROOT / "src" / "repro"]
    files: list[pathlib.Path] = []
    for root in roots:
        path = root.resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {root}")
            raise SystemExit(2)
    return [
        f for f in files
        if all(is_public(part) or part == "__init__.py" for part in f.parts)
    ]


def main(argv: list[str]) -> int:
    """Check every module; non-zero exit when coverage is incomplete."""
    errors: list[str] = []
    checked = 0
    for path in collect_modules(argv):
        try:
            label = str(path.relative_to(REPO_ROOT))
        except ValueError:
            label = str(path)
        errors.extend(missing_docstrings(path.read_text(), label))
        checked += 1
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} missing docstring(s) in {checked} module(s)")
        return 1
    print(f"all public docstrings present ({checked} modules checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
