"""Benchmark: regenerate Fig. 5 (accuracy loss vs sampling fraction)."""

from repro.experiments import fig5


def test_bench_fig5(benchmark, bench_scale, results_sink):
    """Both panels; asserts ApproxIoT's order-of-magnitude accuracy edge."""
    text = benchmark.pedantic(
        fig5.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    gaussian = fig5.run_fig5("gaussian", [0.1], bench_scale)[0]
    poisson = fig5.run_fig5("poisson", [0.1], bench_scale)[0]
    # Paper: 10x (Gaussian) and 30x (Poisson) at the 10% fraction.
    assert gaussian.srs_to_approxiot_ratio > 3.0
    assert poisson.srs_to_approxiot_ratio > 3.0
    # Paper: ApproxIoT loss bounded by ~0.035% / ~0.013%; allow the
    # smaller bench-scale sample sizes an order of magnitude of slack.
    assert gaussian.approxiot_loss < 1.0
    assert poisson.approxiot_loss < 1.0
