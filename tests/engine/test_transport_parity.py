"""Cross-transport and cross-plane parity: the seed defines the run.

The engine's contract is that every transport delivers batches in send
order per destination, so a seeded run must produce *identical* samples
— and therefore identical per-window root estimates — whether batches
move by in-process callback or through broker topics, on either
sampling backend. The Eq. 8 count invariant is asserted end-to-end on
the root's Theta store as the estimates are compared.

The same contract extends to the *data plane*: a seeded run samples
exactly the same records whether payloads are ``StreamItem`` lists or
columnar (SoA) batches. Record identities match bit-for-bit; sums are
compared at 1e-12 relative because vectorized reductions associate
floating-point additions differently.
"""

import pytest

from repro.core.columns import ColumnarBatch
from repro.engine.pipeline import build_pipeline
from repro.engine.runner import EngineRunner
from repro.engine.transport import make_statistical_transport
from repro.system.config import PipelineConfig
from repro.system.deployment import DeploymentSimulator
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "parity", {"A": 300.0, "B": 300.0, "C": 300.0, "D": 300.0}
)

BACKENDS = ["python"]
try:  # the numpy backend participates when the [fast] extra is in
    import numpy  # noqa: F401

    BACKENDS.append("numpy")
except ImportError:
    pass


def config_for(backend, transport, fraction=0.2, seed=13, plane="objects"):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend=backend,
        transport=transport,
        data_plane=plane,
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrossTransportParity:
    def test_identical_per_window_root_estimates(self, backend):
        """In-process and broker runs agree bit-for-bit, window by window."""
        runs = {
            transport: StatisticalRunner(
                config_for(backend, transport), SCHEDULE, GENS
            ).run(4)
            for transport in ("inprocess", "broker")
        }
        inproc, broker = runs["inprocess"].windows, runs["broker"].windows
        assert len(inproc) == len(broker) == 4
        for window_a, window_b in zip(inproc, broker):
            assert window_a.approx_sum.value == window_b.approx_sum.value
            assert window_a.approx_sum.error == window_b.approx_sum.error
            assert window_a.srs_sum == window_b.srs_sum
            assert window_a.exact_sum == window_b.exact_sum
            assert window_a.items_sampled == window_b.items_sampled

    def test_eq8_count_invariant_end_to_end(self, backend):
        """``sum(|I| * W_out)`` over Theta recovers the emitted count
        exactly on every transport."""
        for transport in ("inprocess", "broker"):
            config = config_for(backend, transport, fraction=0.1)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport(transport)
            )
            for start in range(3):
                emitted = pipeline.emit_window(float(start))
                emitted_count = sum(len(b) for b in emitted.values())
                window = runner.run_approxiot(emitted)
                recovered = sum(
                    estimate.estimated_count
                    for estimate in window.theta.per_substream().values()
                )
                assert recovered == pytest.approx(emitted_count, rel=1e-9)
                assert 0 < window.sampled < emitted_count

    def test_native_strategy_recovers_exact_sum(self, backend):
        """The pass-through strategy reaches the ground truth on every
        transport (it consumes no randomness on the way)."""
        for transport in ("inprocess", "broker"):
            config = config_for(backend, transport)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport(transport)
            )
            emitted = pipeline.emit_window(0.0)
            direct = sum(
                item.value for batch in emitted.values() for item in batch
            )
            assert runner.run_native(emitted) == pytest.approx(
                direct, rel=1e-12
            )


def sampled_identities(theta):
    """The root's sampled record values, plane-independent."""
    values = []
    for batch in theta.batches:
        payload = batch.items
        if isinstance(payload, ColumnarBatch):
            values.extend(float(v) for v in payload.values)
        else:
            values.extend(item.value for item in payload)
    return sorted(values)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrossPlaneParity:
    """Objects-vs-columnar: same seed, same records, equal estimates —
    across all three strategies and all three transports."""

    def test_statistical_estimates_match_on_every_transport(self, backend):
        """ApproxIoT, SRS and native agree across planes, window by
        window, on both statistical transports."""
        for transport in ("inprocess", "broker"):
            runs = {
                plane: StatisticalRunner(
                    config_for(backend, transport, plane=plane), SCHEDULE, GENS
                ).run(3)
                for plane in ("objects", "columnar")
            }
            pairs = zip(runs["objects"].windows, runs["columnar"].windows)
            for objects, columnar in pairs:
                assert objects.items_emitted == columnar.items_emitted
                assert objects.items_sampled == columnar.items_sampled
                assert columnar.exact_sum == pytest.approx(
                    objects.exact_sum, rel=1e-12
                )
                assert columnar.approx_sum.value == pytest.approx(
                    objects.approx_sum.value, rel=1e-12
                )
                assert columnar.approx_sum.error == pytest.approx(
                    objects.approx_sum.error, rel=1e-9, abs=1e-9
                )
                assert columnar.srs_sum == pytest.approx(
                    objects.srs_sum, rel=1e-12
                )

    def test_sampled_record_identities_match_bitwise(self, backend):
        """The root's Theta holds the *same* records on either plane —
        sampling entropy is plane-invariant, not merely unbiased."""
        thetas = {}
        for plane in ("objects", "columnar"):
            config = config_for(backend, "inprocess", plane=plane)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport("inprocess")
            )
            emitted = pipeline.emit_window(0.0)
            thetas[plane] = runner.run_approxiot(emitted).theta
        assert sampled_identities(thetas["objects"]) == sampled_identities(
            thetas["columnar"]
        )

    def test_native_strategy_matches_across_planes(self, backend):
        """The pass-through strategy recovers the same ground truth on
        either plane."""
        totals = {}
        for plane in ("objects", "columnar"):
            config = config_for(backend, "inprocess", plane=plane)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport("inprocess")
            )
            totals[plane] = runner.run_native(pipeline.emit_window(0.0))
        assert totals["columnar"] == pytest.approx(
            totals["objects"], rel=1e-12
        )

    def test_deployment_parity_on_simnet_and_broker(self, backend):
        """The deployment engine (the third transport, simnet) measures
        identical runs on either plane, in every mode."""
        for transport in ("simnet", "broker"):
            for mode in ("approxiot", "srs", "native"):
                reports = {}
                for plane in ("objects", "columnar"):
                    config = PipelineConfig(
                        sampling_fraction=0.2,
                        seed=13,
                        mode=mode,
                        backend=backend,
                        transport=transport,
                        data_plane=plane,
                    )
                    reports[plane] = DeploymentSimulator(
                        config, SCHEDULE, GENS, n_windows=3
                    ).run()
                objects, columnar = reports["objects"], reports["columnar"]
                assert objects.items_emitted == columnar.items_emitted
                assert objects.items_at_root == columnar.items_at_root
                assert objects.boundary_bytes == columnar.boundary_bytes
                assert columnar.makespan_seconds == pytest.approx(
                    objects.makespan_seconds, rel=1e-12
                )
                assert columnar.mean_latency_seconds == pytest.approx(
                    objects.mean_latency_seconds, rel=1e-12
                )


@pytest.mark.skipif(len(BACKENDS) < 2, reason="needs both backends")
class TestBackendSeparation:
    def test_backends_differ_but_agree_statistically(self):
        """Backends consume entropy differently (different samples) but
        both remain unbiased — transport parity must not be confused
        with backend parity."""
        python_run = StatisticalRunner(
            config_for("python", "inprocess"), SCHEDULE, GENS
        ).run(3)
        numpy_run = StatisticalRunner(
            config_for("numpy", "inprocess"), SCHEDULE, GENS
        ).run(3)
        assert (
            python_run.windows[0].approx_sum.value
            != numpy_run.windows[0].approx_sum.value
        )
        for run in (python_run, numpy_run):
            assert run.mean_approxiot_loss < 10.0
