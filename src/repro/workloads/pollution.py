"""Brasov pollution trace synthesizer (CityBench-style).

The paper's second real-world case study uses the Brasov (Romania)
pollution dataset from CityBench: sensors reporting particulate matter,
carbon monoxide, sulfur dioxide and nitrogen dioxide every 5 minutes,
August–October 2014. The query is *"total pollution value per
pollutant per time window"*.

The dataset is not bundled here, so this module synthesizes readings
with the same structure: one sub-stream per pollutant, values following
a slowly-varying AR(1) process around typical urban baselines. The key
property the paper calls out — pollution values are *more stable* than
taxi fares, so the accuracy-loss curve sits lower (Fig. 11(a)) — is
preserved by the low innovation variance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.columns import ColumnBuffer, ColumnarBatch
from repro.core.items import StreamItem
from repro.errors import WorkloadError

__all__ = [
    "POLLUTANTS",
    "PollutantSubstream",
    "PollutionReading",
    "PollutionTraceSynthesizer",
    "pollutant_generators",
]

#: Pollutant baselines (index-style units) and AR(1) innovation scales.
POLLUTANTS: dict[str, tuple[float, float]] = {
    "pm": (55.0, 2.0),
    "co": (40.0, 1.5),
    "so2": (25.0, 1.0),
    "no2": (35.0, 1.2),
}

#: Sensor reporting period in the real dataset (seconds).
REPORT_PERIOD = 300.0


@dataclass(frozen=True, slots=True)
class PollutionReading:
    """One sensor measurement."""

    sensor_id: str
    pollutant: str
    value: float
    timestamp: float


class PollutionTraceSynthesizer:
    """Generates per-pollutant sub-streams from a bank of sensors."""

    def __init__(self, seed: int = 2014, sensors_per_pollutant: int = 25) -> None:
        if sensors_per_pollutant <= 0:
            raise WorkloadError(
                f"need >= 1 sensor per pollutant, got {sensors_per_pollutant}"
            )
        self._rng = random.Random(seed)
        self._sensors: dict[str, list[str]] = {}
        self._levels: dict[str, float] = {}
        for pollutant, (baseline, _scale) in POLLUTANTS.items():
            ids = [
                f"{pollutant}-sensor-{i:03d}"
                for i in range(sensors_per_pollutant)
            ]
            self._sensors[pollutant] = ids
            for sensor_id in ids:
                self._levels[sensor_id] = baseline * self._rng.uniform(0.9, 1.1)

    def _step(self, sensor_id: str, pollutant: str) -> float:
        """Advance one sensor's AR(1) level and return the reading."""
        baseline, scale = POLLUTANTS[pollutant]
        level = self._levels[sensor_id]
        level = baseline + 0.95 * (level - baseline) + self._rng.gauss(0, scale)
        level = max(0.0, level)
        self._levels[sensor_id] = level
        return round(level, 2)

    def readings_at(self, timestamp: float) -> list[PollutionReading]:
        """One reporting round: every sensor reports once."""
        out: list[PollutionReading] = []
        for pollutant, sensor_ids in self._sensors.items():
            for sensor_id in sensor_ids:
                out.append(
                    PollutionReading(
                        sensor_id=sensor_id,
                        pollutant=pollutant,
                        value=self._step(sensor_id, pollutant),
                        timestamp=timestamp,
                    )
                )
        return out

    def generate_items(
        self, count: int, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """``count`` measurements as stream items.

        Sub-streams are the pollutants (the query sums each pollutant
        per window); values come from the per-sensor AR(1) processes,
        cycling through the sensor bank.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        items: list[StreamItem] = []
        pollutants = list(POLLUTANTS)
        for index in range(count):
            pollutant = pollutants[index % len(pollutants)]
            sensors = self._sensors[pollutant]
            sensor_id = sensors[(index // len(pollutants)) % len(sensors)]
            items.append(
                StreamItem(
                    substream=f"pollution/{pollutant}",
                    value=self._step(sensor_id, pollutant),
                    emitted_at=emitted_at,
                    size_bytes=64,
                )
            )
        return items


class PollutantSubstream:
    """Item generator for one pollutant's sensor feed.

    Implements the :class:`~repro.workloads.source.ItemGenerator`
    protocol with a self-contained AR(1) level per instance, driven by
    the caller's RNG. Values stay close to the pollutant baseline (low
    innovation variance), which is the stability property the paper
    notes for this dataset.
    """

    def __init__(self, pollutant: str, item_bytes: int = 64) -> None:
        if pollutant not in POLLUTANTS:
            raise WorkloadError(
                f"unknown pollutant {pollutant!r}; "
                f"choose from {sorted(POLLUTANTS)}"
            )
        self.pollutant = pollutant
        self.item_bytes = item_bytes
        baseline, _scale = POLLUTANTS[pollutant]
        self._level = baseline
        self._staging = ColumnBuffer()

    def _draw_values(self, count: int, rng: random.Random) -> Sequence[float]:
        """The one AR(1) advance loop both data planes share.

        A single copy of the stateful level recurrence keeps the
        cross-plane parity invariant structural: ``generate`` and
        ``generate_columns`` consume exactly this entropy and apply
        exactly these level updates. Draws land in the reusable
        staging buffer; see :class:`~repro.core.columns.ColumnBuffer`
        for the reuse contract.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        baseline, scale = POLLUTANTS[self.pollutant]
        staged = self._staging.writable(count)
        for index in range(count):
            self._level = max(
                0.0,
                baseline + 0.95 * (self._level - baseline)
                + rng.gauss(0, scale),
            )
            staged[index] = round(self._level, 2)
        return staged

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Draw ``count`` readings for this pollutant."""
        return [
            StreamItem(
                substream=f"pollution/{self.pollutant}",
                value=value,
                emitted_at=emitted_at,
                size_bytes=self.item_bytes,
            )
            for value in self._draw_values(count, rng)
        ]

    def generate_columns(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> ColumnarBatch:
        """Advance the AR(1) level ``count`` steps into a columnar batch.

        Same entropy and level updates as :meth:`generate` (they share
        the advance loop), so seeded runs emit identical readings on
        either data plane; the staging buffer is copied out so
        successive windows never alias.
        """
        self._draw_values(count, rng)
        return ColumnarBatch.single(
            f"pollution/{self.pollutant}",
            self._staging.column(count),
            emitted_at,
            self.item_bytes,
        )


def pollutant_generators() -> dict[str, PollutantSubstream]:
    """One per-pollutant generator per sub-stream, keyed by name."""
    return {
        f"pollution/{pollutant}": PollutantSubstream(pollutant)
        for pollutant in POLLUTANTS
    }
