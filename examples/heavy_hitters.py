"""Extension queries: top-k sub-streams and quantiles under skew.

The paper supports linear queries and leaves top-k to future work
(§VIII); this library implements it over the same weighted sample.
The scenario is §V-E's pathological workload: sub-stream D carries
0.01 % of the items but nearly all of the value. Stratified sampling
keeps D in every window, so the top-k ranking stays correct at a 10 %
sampling fraction — and the quantile query shows the value
distribution's shape from the same sample.

Run:  python examples/heavy_hitters.py
"""

import random

from repro.core import ThetaStore, whsamp
from repro.metrics.report import Table
from repro.queries import QuantileQuery, TopKQuery
from repro.workloads import paper_skewed_mixture


def main() -> None:
    rng = random.Random(2018)
    mixture = paper_skewed_mixture()
    items = mixture.generate(100_000, rng)
    exact_totals: dict[str, float] = {}
    for item in items:
        exact_totals[item.substream] = (
            exact_totals.get(item.substream, 0.0) + item.value
        )

    # One window at a 10% sampling fraction.
    result = whsamp(items, sample_size=10_000, rng=rng)
    theta = ThetaStore()
    theta.extend(result.batches)

    table = Table(
        "Top-k sub-streams by estimated total (10% sample, skewed mixture)",
        ["rank", "sub-stream", "approx total", "error (95%)", "exact total",
         "rank stable"],
    )
    exact_order = sorted(exact_totals, key=exact_totals.get, reverse=True)
    for entry in TopKQuery(k=4).execute(theta):
        table.add_row(
            entry.rank,
            entry.substream,
            f"{entry.estimated_sum:,.0f}",
            f"±{entry.error:,.0f}",
            f"{exact_totals[entry.substream]:,.0f}",
            "yes" if entry.stable else "no",
        )
    print(table.render())
    ranked = [e.substream for e in TopKQuery(k=4).execute(theta)]
    print(f"\nexact ranking    : {exact_order}")
    print(f"ranking correct  : {ranked == exact_order}")

    quantiles = Table("\nValue quantiles from the same weighted sample",
                      ["q", "approx value", "band (95%)", "exact value"])
    exact_sorted = sorted(item.value for item in items)
    for q in (0.5, 0.9, 0.99):
        estimate = QuantileQuery(q).execute(theta)
        exact = exact_sorted[int(q * len(exact_sorted))]
        quantiles.add_row(
            f"{q:.2f}",
            f"{estimate.value:,.1f}",
            f"[{estimate.lower:,.1f}, {estimate.upper:,.1f}]",
            f"{exact:,.1f}",
        )
    print(quantiles.render())


if __name__ == "__main__":
    main()
