"""Append-only partition log — the storage primitive under every topic.

Kafka's unit of storage is a partition: an ordered, immutable sequence
of records addressed by a monotonically-increasing offset. Consumers
pull ranges by offset; retention trims the head. This module implements
that contract in memory, including segment-style truncation and
high-watermark bookkeeping.
"""

from __future__ import annotations

from typing import Iterable

from repro.broker.records import ConsumedRecord, Record
from repro.errors import OffsetOutOfRangeError

__all__ = ["PartitionLog"]


class PartitionLog:
    """An in-memory, offset-addressed append-only log.

    Offsets survive head-truncation: after ``truncate_before(n)`` the
    log still serves offsets ``>= n`` and raises
    :class:`~repro.errors.OffsetOutOfRangeError` below that, exactly
    like a Kafka partition whose old segments were deleted.
    """

    def __init__(self, topic: str, partition: int) -> None:
        self.topic = topic
        self.partition = partition
        self._records: list[Record] = []
        self._base_offset = 0

    @property
    def start_offset(self) -> int:
        """Oldest offset still retained."""
        return self._base_offset

    @property
    def end_offset(self) -> int:
        """The next offset to be assigned (the high watermark)."""
        return self._base_offset + len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: Record) -> int:
        """Append one record; return the offset it was assigned."""
        self._records.append(record)
        return self.end_offset - 1

    def append_batch(self, records: Iterable[Record]) -> list[int]:
        """Append several records; return their offsets in order."""
        return [self.append(record) for record in records]

    def read(self, offset: int, max_records: int | None = None) -> list[ConsumedRecord]:
        """Read records starting at ``offset`` (up to ``max_records``).

        Reading exactly at the end offset returns an empty list (a poll
        with no new data); reading beyond it, or before the retained
        start, raises :class:`OffsetOutOfRangeError`.
        """
        if offset < self._base_offset or offset > self.end_offset:
            raise OffsetOutOfRangeError(
                f"offset {offset} outside [{self._base_offset}, {self.end_offset}] "
                f"for {self.topic}-{self.partition}"
            )
        begin = offset - self._base_offset
        end = len(self._records) if max_records is None else begin + max_records
        out: list[ConsumedRecord] = []
        for index, record in enumerate(self._records[begin:end], start=offset):
            out.append(
                ConsumedRecord(
                    topic=self.topic,
                    partition=self.partition,
                    offset=index,
                    key=record.key,
                    value=record.value,
                    timestamp=record.timestamp,
                    headers=record.headers,
                )
            )
        return out

    def truncate_before(self, offset: int) -> int:
        """Drop records below ``offset`` (retention); return count dropped.

        Truncating beyond the end clamps to the end (the log becomes
        empty but offsets keep counting from where they were).
        """
        offset = min(offset, self.end_offset)
        if offset <= self._base_offset:
            return 0
        dropped = offset - self._base_offset
        del self._records[:dropped]
        self._base_offset = offset
        return dropped
