"""Unit tests for the stream-processing engine."""

import pytest

from repro.broker.broker import Broker
from repro.broker.producer import Producer
from repro.errors import StateStoreError, TopologyError
from repro.streams.dsl import StreamBuilder
from repro.streams.processor import FunctionProcessor, Processor
from repro.streams.runtime import StreamsRuntime
from repro.streams.state import KeyValueStore, WindowStore
from repro.streams.topology import Topology
from repro.streams.windowing import HoppingWindow, TumblingWindow, window_start


class TestStateStores:
    def test_kv_roundtrip(self):
        store = KeyValueStore("s")
        store.put("a", 1)
        assert store.get("a") == 1
        assert store.get("missing", 0) == 0
        assert "a" in store and len(store) == 1

    def test_kv_delete(self):
        store = KeyValueStore("s")
        store.put("a", 1)
        store.delete("a")
        assert "a" not in store
        with pytest.raises(StateStoreError):
            store.delete("a")

    def test_window_store_scoping(self):
        store = WindowStore("w", retention=100.0)
        store.put("k", 0.0, "first")
        store.put("k", 10.0, "second")
        assert store.get("k", 0.0) == "first"
        assert store.windows_for("k") == [(0.0, "first"), (10.0, "second")]

    def test_window_store_expiry(self):
        store = WindowStore("w", retention=5.0)
        store.put("k", 0.0, "old")
        store.put("k", 10.0, "new")
        assert store.expire_before(12.0) == 1
        assert store.get("k", 0.0) is None
        assert store.get("k", 10.0) == "new"

    def test_window_store_validation(self):
        with pytest.raises(StateStoreError):
            WindowStore("w", retention=0.0)


class TestWindows:
    def test_tumbling_window_for(self):
        window = TumblingWindow(10.0)
        assert window.window_for(0.0) == (0.0, 10.0)
        assert window.window_for(9.99) == (0.0, 10.0)
        assert window.window_for(10.0) == (10.0, 20.0)

    def test_tumbling_single_match(self):
        assert TumblingWindow(5.0).windows_for(12.0) == [(10.0, 15.0)]

    def test_hopping_overlap(self):
        window = HoppingWindow(size=10.0, hop=5.0)
        windows = window.windows_for(12.0)
        assert (10.0, 20.0) in windows
        assert (5.0, 15.0) in windows

    def test_window_start_helper(self):
        assert window_start(17.0, 5.0) == 15.0

    def test_validation(self):
        with pytest.raises(Exception):
            TumblingWindow(0.0)
        with pytest.raises(Exception):
            HoppingWindow(10.0, 0.0)
        with pytest.raises(Exception):
            HoppingWindow(10.0, 20.0)


class TestTopology:
    def test_duplicate_node_rejected(self):
        topology = Topology()
        topology.add_source("src", ["t"])
        with pytest.raises(TopologyError):
            topology.add_source("src", ["t2"])

    def test_unknown_parent_rejected(self):
        topology = Topology()
        with pytest.raises(TopologyError):
            topology.add_processor("p", lambda k, v, c: None, ["ghost"])

    def test_source_needs_topics(self):
        with pytest.raises(TopologyError):
            Topology().add_source("s", [])

    def test_forwarding_chain(self):
        topology = Topology()
        topology.add_source("src", ["t"])
        seen = []
        topology.add_processor(
            "double", lambda k, v, ctx: ctx.forward(k, v * 2), ["src"]
        )
        topology.add_processor(
            "collect", lambda k, v, ctx: seen.append((k, v)), ["double"]
        )
        topology.node("src").process("k", 21)
        assert seen == [("k", 42)]

    def test_sink_without_runtime_raises(self):
        topology = Topology()
        topology.add_source("src", ["t"])
        topology.add_sink("out", "dst", ["src"])
        with pytest.raises(TopologyError):
            topology.node("src").process("k", "v")


class TestRuntime:
    def _broker_with(self, topic, values):
        broker = Broker()
        broker.create_topic(topic)
        producer = Producer(broker)
        for ts, value in values:
            producer.send(topic, value, timestamp=ts)
        return broker

    def test_pipe_through_processor_to_topic(self):
        broker = self._broker_with("in", [(0.0, 1), (0.0, 2)])
        builder = StreamBuilder()
        builder.stream("in").map_values(lambda v: v * 10).to("out")
        runtime = StreamsRuntime(broker, builder.build())
        processed = runtime.run_to_completion()
        assert processed == 2
        out = broker.fetch("out", 0, 0)
        assert sorted(r.value for r in out) == [10, 20]
        runtime.close()

    def test_filter_and_for_each(self):
        broker = self._broker_with("in", [(0.0, i) for i in range(10)])
        builder = StreamBuilder()
        collected = []
        (builder.stream("in")
            .filter(lambda k, v: v % 2 == 0)
            .for_each(lambda k, v: collected.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        assert collected == [0, 2, 4, 6, 8]
        runtime.close()

    def test_windowed_sum_emits_closed_windows(self):
        values = [(0.5, 1.0), (0.7, 2.0), (1.2, 10.0), (2.5, 100.0)]
        broker = self._broker_with("in", values)
        builder = StreamBuilder()
        emitted = []
        (builder.stream("in")
            .select_key(lambda k, v: "all")
            .windowed_sum(TumblingWindow(1.0))
            .for_each(lambda k, v: emitted.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.advance_stream_time(3.0)  # close the last window
        assert (0.0, 3.0) in emitted
        assert (1.0, 10.0) in emitted
        assert (2.0, 100.0) in emitted
        runtime.close()

    def test_custom_processor_integration(self):
        """The paper's pattern: a user-defined sampling processor."""

        class EveryOther(Processor):
            def __init__(self):
                super().__init__("every-other")
                self.count = 0

            def process(self, key, value):
                self.count += 1
                if self.count % 2 == 1:
                    self.context.forward(key, value)

        broker = self._broker_with("in", [(0.0, i) for i in range(6)])
        builder = StreamBuilder()
        got = []
        (builder.stream("in")
            .process_with(EveryOther())
            .for_each(lambda k, v: got.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        assert got == [0, 2, 4]
        runtime.close()

    def test_stream_time_advances_with_records(self):
        broker = self._broker_with("in", [(5.0, "a"), (2.0, "b")])
        builder = StreamBuilder()
        builder.stream("in").for_each(lambda k, v: None)
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        assert runtime.stream_time == 5.0
        runtime.close()

    def test_function_processor_adapter(self):
        proc = FunctionProcessor("f", lambda k, v, ctx: ctx.forward(k, v + 1))
        outs = []
        child = FunctionProcessor("c", lambda k, v, ctx: outs.append(v))
        proc.context.add_child(child)
        proc.process(None, 41)
        assert outs == [42]


class TestSamplingBackendSeam:
    """The runtime publishes the resolved backend on every context."""

    def _runtime(self, **kwargs):
        broker = Broker()
        broker.create_topic("in")
        builder = StreamBuilder()
        builder.stream("in").for_each(lambda k, v: None)
        return StreamsRuntime(broker, builder.build(), **kwargs)

    def test_backend_resolved_and_propagated(self):
        from repro.core.fastpath import resolve_backend

        runtime = self._runtime(sampling_backend="python")
        assert runtime.sampling_backend == "python"
        runtime.close()

        runtime = self._runtime()  # default: auto
        assert runtime.sampling_backend == resolve_backend("auto")
        runtime.close()

    def test_processor_sees_backend_at_init(self):
        from repro.core.fastpath import numpy_available

        # With numpy installed, propagate a value distinct from the
        # context default ("python") so a broken propagation (or wrong
        # ordering against init_all) cannot pass by accident.
        backend = "numpy" if numpy_available() else "python"
        seen = {}

        class Probe(Processor):
            def init(self) -> None:
                seen["backend"] = self.context.sampling_backend

        broker = Broker()
        broker.create_topic("in")
        builder = StreamBuilder()
        builder.stream("in").process_with(Probe("probe"))
        runtime = StreamsRuntime(
            broker, builder.build(), sampling_backend=backend
        )
        assert seen["backend"] == backend
        runtime.close()

    def test_unknown_backend_rejected(self):
        from repro.errors import SamplingError

        with pytest.raises(SamplingError):
            self._runtime(sampling_backend="cython")
