"""Benchmark: end-to-end engine throughput, objects vs columnar plane.

Runs the statistical engine (all three strategies per window) at the
Fig. 6 workload — four equal-rate Gaussian sub-streams at the scale's
rate — on both data planes and every available sampling backend, and
reports sustained items/s. This is the headline number for the
columnar data plane: the same seeded run, the same sampled records,
with per-item object churn replaced by structure-of-arrays columns.

Two assertions gate regressions:

* at any scale (including CI's ``REPRO_BENCH_SCALE=quick`` smoke job)
  the columnar plane must sustain at least 0.9x the object plane's
  throughput, so a data-plane slowdown fails CI instead of silently
  landing;
* at bench scale the columnar plane must beat the object plane by at
  least 3x on the numpy backend;

and the two planes' seeded mean accuracy losses must agree (same
records sampled → same estimates).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.core.fastpath import numpy_available
from repro.experiments.base import ExperimentScale, uniform_schedule
from repro.metrics.report import Table, format_rate
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.synthetic import paper_gaussian_substreams

#: Fig. 6's operating point on the throughput axis.
FRACTION = 0.1

#: Timing repetitions; the best run is reported so allocator noise and
#: first-call warmup do not flake the quick-scale CI assertion.
REPEATS = 3


@dataclass(frozen=True, slots=True)
class PlanePoint:
    """Measured throughput of one (backend, data plane) combination."""

    backend: str
    data_plane: str
    items_per_second: float
    mean_loss_percent: float


def _measure(backend: str, data_plane: str, scale: ExperimentScale) -> PlanePoint:
    generators = {g.name: g for g in paper_gaussian_substreams()}
    schedule = uniform_schedule(scale.rate_scale)
    best = 0.0
    loss = 0.0
    for _ in range(REPEATS):
        config = PipelineConfig(
            sampling_fraction=FRACTION,
            seed=scale.seed,
            backend=backend,
            transport="inprocess",
            data_plane=data_plane,
        )
        runner = StatisticalRunner(config, schedule, generators)
        start = time.perf_counter()
        run = runner.run(scale.windows)
        elapsed = time.perf_counter() - start
        items = sum(window.items_emitted for window in run.windows)
        best = max(best, items / elapsed)
        loss = run.mean_approxiot_loss
    return PlanePoint(backend, data_plane, best, loss)


def run_engine_bench(scale: ExperimentScale) -> list[PlanePoint]:
    """Throughput of both planes on every available backend."""
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    return [
        _measure(backend, plane, scale)
        for backend in backends
        for plane in ("objects", "columnar")
    ]


def render_table(points: list[PlanePoint]) -> str:
    """The paper-style table for one measured sweep."""
    table = Table(
        "Engine throughput: objects vs columnar data plane (Fig. 6 "
        "workload, 10% fraction)",
        ["backend", "plane", "items/s", "speedup", "mean loss"],
    )
    baselines = {
        p.backend: p.items_per_second
        for p in points
        if p.data_plane == "objects"
    }
    for point in points:
        table.add_row(
            point.backend,
            point.data_plane,
            format_rate(point.items_per_second),
            f"{point.items_per_second / baselines[point.backend]:.1f}x",
            f"{point.mean_loss_percent:.3f}%",
        )
    return table.render()


def main(scale: ExperimentScale | None = None) -> str:
    """Print the engine-throughput table; return the text."""
    scale = scale if scale is not None else ExperimentScale.bench()
    text = render_table(run_engine_bench(scale))
    print(text)
    return text


def test_bench_engine(benchmark, bench_scale, results_sink):
    """Columnar ≥ objects everywhere; ≥ 3x on numpy at bench scale.

    One measured sweep feeds both the published table and the gating
    assertions, so the numbers in ``results.txt`` are exactly the
    numbers CI passed (or failed) on.
    """
    points = benchmark.pedantic(
        run_engine_bench, args=(bench_scale,), rounds=1, iterations=1
    )
    text = render_table(points)
    print(text)
    results_sink(text)

    by_key = {(p.backend, p.data_plane): p for p in points}
    at_bench = os.environ.get("REPRO_BENCH_SCALE", "bench") == "bench"
    for backend in {backend for backend, _ in by_key}:
        objects = by_key[(backend, "objects")]
        columnar = by_key[(backend, "columnar")]
        # Perf smoke (both scales): the columnar plane must never fall
        # behind the object plane; 0.9x tolerance absorbs timer noise.
        assert columnar.items_per_second >= 0.9 * objects.items_per_second
        # Seeded accuracy is plane-invariant (same records sampled).
        assert abs(columnar.mean_loss_percent - objects.mean_loss_percent) < 1e-6
        if at_bench and backend == "numpy":
            # The headline claim: ≥ 3x end-to-end at Fig. 6 scale.
            assert columnar.items_per_second >= 3.0 * objects.items_per_second
