"""The logical sampling tree (paper Fig. 1 and §V-A).

A tree has a bottom layer of data sources and one or more layers of
sampling nodes, the last layer being the single root (datacenter). The
paper's testbed is a four-layer tree: 8 sources → 4 first-layer edge
nodes → 2 second-layer edge nodes → 1 root. Children attach to parents
contiguously (node ``i`` of a layer of size ``n`` feeds parent
``i * m // n`` in the layer of size ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TreeError

__all__ = ["TreeNode", "LogicalTree", "paper_tree"]


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One position in the logical tree.

    Attributes:
        name: Unique node name, e.g. ``"l1-2"`` or ``"root"``.
        layer: Layer index; 0 is the source layer.
        index: Position within the layer.
        parent: Parent node's name (``None`` for the root).
    """

    name: str
    layer: int
    index: int
    parent: str | None


@dataclass
class LogicalTree:
    """An immutable description of layers and parent wiring."""

    layer_sizes: list[int]
    nodes: dict[str, TreeNode] = field(init=False, default_factory=dict)
    _children: dict[str, list[str]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise TreeError("a tree needs at least sources and a root layer")
        if any(size <= 0 for size in self.layer_sizes):
            raise TreeError(f"layer sizes must be positive: {self.layer_sizes}")
        if self.layer_sizes[-1] != 1:
            raise TreeError(
                f"the last layer must be the single root, got {self.layer_sizes[-1]}"
            )
        for layer, size in enumerate(self.layer_sizes):
            parent_layer_size = (
                self.layer_sizes[layer + 1]
                if layer + 1 < len(self.layer_sizes)
                else None
            )
            for index in range(size):
                name = self._node_name(layer, index)
                parent = None
                if parent_layer_size is not None:
                    parent_index = index * parent_layer_size // size
                    parent = self._node_name(layer + 1, parent_index)
                node = TreeNode(name, layer, index, parent)
                self.nodes[name] = node
                if parent is not None:
                    self._children.setdefault(parent, []).append(name)

    def _node_name(self, layer: int, index: int) -> str:
        if layer == 0:
            return f"source-{index}"
        if layer == len(self.layer_sizes) - 1:
            return "root"
        return f"l{layer}-{index}"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of layers, sources included."""
        return len(self.layer_sizes)

    @property
    def sampling_layer_count(self) -> int:
        """Layers that run the sampling algorithm (everything above sources)."""
        return self.depth - 1

    def layer(self, layer: int) -> list[TreeNode]:
        """All nodes of one layer, in index order."""
        if not 0 <= layer < self.depth:
            raise TreeError(f"no layer {layer} in a {self.depth}-layer tree")
        return sorted(
            (node for node in self.nodes.values() if node.layer == layer),
            key=lambda node: node.index,
        )

    @property
    def sources(self) -> list[TreeNode]:
        """The bottom (source) layer."""
        return self.layer(0)

    @property
    def root(self) -> TreeNode:
        """The root node."""
        return self.nodes["root"]

    @property
    def sampling_nodes(self) -> list[TreeNode]:
        """All non-source nodes, bottom-up, root last."""
        out: list[TreeNode] = []
        for layer in range(1, self.depth):
            out.extend(self.layer(layer))
        return out

    def node(self, name: str) -> TreeNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise TreeError(f"no such node: {name!r}") from None

    def children(self, name: str) -> list[TreeNode]:
        """Direct children of a node (empty for sources)."""
        self.node(name)
        return [self.nodes[child] for child in self._children.get(name, [])]

    def subtree_source_count(self, name: str) -> int:
        """How many sources ultimately feed a node."""
        node = self.node(name)
        if node.layer == 0:
            return 1
        return sum(
            self.subtree_source_count(child.name)
            for child in self.children(name)
        )

    def path_to_root(self, name: str) -> list[str]:
        """Node names from ``name`` up to and including the root."""
        node = self.node(name)
        path = [node.name]
        while node.parent is not None:
            node = self.node(node.parent)
            path.append(node.name)
        return path


def paper_tree() -> LogicalTree:
    """The evaluation topology: 8 sources, 4 L1, 2 L2, 1 root (§V-A)."""
    return LogicalTree([8, 4, 2, 1])
