"""State stores for stream processors.

Two store types, mirroring Kafka Streams: a plain key-value store for
aggregations, and a window store that scopes values to time windows and
supports retention-based expiry.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import StateStoreError

__all__ = ["KeyValueStore", "WindowStore"]


class KeyValueStore:
    """An in-memory key-value store with simple iteration."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        """Read a value (or default)."""
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        """Write a value."""
        self._data[key] = value

    def delete(self, key: Any) -> None:
        """Remove a key; raises if absent."""
        try:
            del self._data[key]
        except KeyError:
            raise StateStoreError(
                f"store {self.name!r} has no key {key!r}"
            ) from None

    def all(self) -> Iterator[tuple[Any, Any]]:
        """Iterate over all entries."""
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data


class WindowStore:
    """Values keyed by ``(key, window_start)`` with retention expiry."""

    def __init__(self, name: str, retention: float) -> None:
        if retention <= 0:
            raise StateStoreError(
                f"retention must be positive, got {retention}"
            )
        self.name = name
        self.retention = float(retention)
        self._data: dict[tuple[Any, float], Any] = {}

    def put(self, key: Any, window_start: float, value: Any) -> None:
        """Write a value into one window of one key."""
        self._data[(key, window_start)] = value

    def get(self, key: Any, window_start: float, default: Any = None) -> Any:
        """Read a window's value for a key."""
        return self._data.get((key, window_start), default)

    def windows_for(self, key: Any) -> list[tuple[float, Any]]:
        """All (window_start, value) pairs of a key, oldest first."""
        out = [
            (window_start, value)
            for (k, window_start), value in self._data.items()
            if k == key
        ]
        return sorted(out)

    def expire_before(self, stream_time: float) -> int:
        """Drop windows older than the retention horizon; return count."""
        horizon = stream_time - self.retention
        stale = [kw for kw in self._data if kw[1] < horizon]
        for kw in stale:
            del self._data[kw]
        return len(stale)

    def __len__(self) -> int:
        return len(self._data)
