"""Unit tests for reservoir sampling primitives."""

import random
from collections import Counter

import pytest

from repro.core.reservoir import (
    ReservoirSampler,
    SkipAheadReservoirSampler,
    expected_inclusion_probability,
    gap_distribution_mean,
    reservoir_sample,
)
from repro.errors import SamplingError


class TestReservoirSampler:
    def test_keeps_everything_below_capacity(self):
        sampler = ReservoirSampler(10, random.Random(1))
        sampler.extend(range(7))
        assert sorted(sampler.sample()) == list(range(7))
        assert not sampler.is_saturated

    def test_never_exceeds_capacity(self):
        sampler = ReservoirSampler(5, random.Random(2))
        sampler.extend(range(1000))
        assert len(sampler) == 5
        assert sampler.is_saturated

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(8, random.Random(3))
        stream = list(range(200))
        sampler.extend(stream)
        assert set(sampler.sample()) <= set(stream)

    def test_seen_counts_offers(self):
        sampler = ReservoirSampler(3, random.Random(4))
        sampler.extend(range(42))
        assert sampler.seen == 42

    def test_reset_clears_state(self):
        sampler = ReservoirSampler(3, random.Random(5))
        sampler.extend(range(10))
        sampler.reset()
        assert sampler.seen == 0
        assert len(sampler) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(0)
        with pytest.raises(SamplingError):
            ReservoirSampler(-3)

    def test_uniformity_chi_square_like(self):
        """Every item should land in the reservoir ~equally often."""
        capacity, stream_len, trials = 5, 25, 4000
        counts = Counter()
        rng = random.Random(6)
        for _ in range(trials):
            counts.update(reservoir_sample(list(range(stream_len)), capacity, rng))
        expected = trials * capacity / stream_len
        for item in range(stream_len):
            assert counts[item] == pytest.approx(expected, rel=0.15)

    def test_sample_returns_copy(self):
        sampler = ReservoirSampler(3, random.Random(7))
        sampler.extend(range(3))
        snapshot = sampler.sample()
        snapshot.append(99)
        assert len(sampler.sample()) == 3


class TestSkipAheadReservoirSampler:
    def test_never_exceeds_capacity(self):
        sampler = SkipAheadReservoirSampler(7, random.Random(8))
        sampler.extend(range(5000))
        assert len(sampler) == 7
        assert sampler.seen == 5000

    def test_keeps_everything_below_capacity(self):
        sampler = SkipAheadReservoirSampler(10, random.Random(9))
        sampler.extend(range(4))
        assert sorted(sampler.sample()) == [0, 1, 2, 3]

    def test_reset_clears_skip_state(self):
        sampler = SkipAheadReservoirSampler(4, random.Random(10))
        sampler.extend(range(100))
        sampler.reset()
        sampler.extend(range(4))
        assert sorted(sampler.sample()) == [0, 1, 2, 3]

    def test_approximate_uniformity(self):
        """Skip-ahead must match Algorithm R's marginal probabilities."""
        capacity, stream_len, trials = 4, 40, 6000
        counts = Counter()
        rng = random.Random(11)
        for _ in range(trials):
            sampler = SkipAheadReservoirSampler(capacity, rng)
            sampler.extend(range(stream_len))
            counts.update(sampler.sample())
        expected = trials * capacity / stream_len
        for item in range(stream_len):
            assert counts[item] == pytest.approx(expected, rel=0.25)

    def test_late_items_still_selected(self):
        """The tail of a long stream must not be starved by skipping."""
        rng = random.Random(12)
        tail_hits = 0
        for _ in range(500):
            sampler = SkipAheadReservoirSampler(10, rng)
            sampler.extend(range(1000))
            tail_hits += sum(1 for x in sampler.sample() if x >= 900)
        # Expected hits: 500 trials * 10 slots * 100/1000 = 500.
        assert 300 < tail_hits < 700


class TestHelpers:
    def test_inclusion_probability_saturated(self):
        assert expected_inclusion_probability(100, 10) == pytest.approx(0.1)

    def test_inclusion_probability_unsaturated(self):
        assert expected_inclusion_probability(5, 10) == 1.0

    def test_inclusion_probability_validation(self):
        with pytest.raises(SamplingError):
            expected_inclusion_probability(0, 10)
        with pytest.raises(SamplingError):
            expected_inclusion_probability(10, 0)

    def test_gap_mean_grows_with_seen(self):
        assert gap_distribution_mean(1000, 10) > gap_distribution_mean(100, 10)

    def test_gap_mean_validation(self):
        with pytest.raises(SamplingError):
            gap_distribution_mean(10, 0)

    def test_one_shot_reservoir_sample(self):
        out = reservoir_sample(list(range(50)), 5, random.Random(13))
        assert len(out) == 5
        assert set(out) <= set(range(50))
