"""Benchmark: regenerate Fig. 7 (bandwidth saving vs sampling fraction)."""

from repro.experiments import fig7


def test_bench_fig7(benchmark, bench_scale, results_sink):
    """Asserts saving ~= 1 - fraction on the inter-layer links."""
    text = benchmark.pedantic(
        fig7.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    for point in fig7.run_fig7([0.1, 0.4, 0.8], bench_scale):
        expected = 100.0 * (1.0 - point.fraction)
        assert abs(point.approxiot_saving - expected) < 10.0
        assert abs(point.srs_saving - expected) < 10.0
