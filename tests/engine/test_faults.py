"""Fault-injection harness: specs, plans, detonation, validation.

The harness's contract (:mod:`repro.engine.faults`):

* fault specs are typed and validated loudly — kind, shard and window
  are checked at construction, and the ``kind@shard:window`` CLI form
  round-trips exactly;
* a plan is a pure frozen value: picklable, unique per coordinate, and
  ``seeded()`` plans are a deterministic function of the seed;
* ``fire`` covers the process-fatal kinds (``raise`` is observable in
  a test; ``crash``/``hang`` are exercised end-to-end in
  ``test_supervision.py``) and ``corrupt_frame`` deterministically
  mangles both shm descriptors and pipe codec frames;
* plans are rejected wherever there is no shard process to kill:
  single-worker facades, inline execution, out-of-range shard targets,
  and hang faults without a watchdog to detect them.
"""

import pickle

import pytest

from repro.engine.faults import (
    CORRUPT_DESCRIPTOR,
    CRASH,
    FAULT_KINDS,
    HANG,
    RAISE,
    FaultPlan,
    FaultSpec,
    corrupt_frame,
    fire,
)
from repro.engine.sharding import ShardedEngineRunner
from repro.errors import ConfigurationError, InjectedFaultError
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "fault-test", {"A": 60.0, "B": 60.0, "C": 60.0, "D": 60.0}
)


class TestFaultSpec:
    def test_cli_form_round_trips(self):
        for text in ("crash@0:1", "hang@3:0", "raise@1:7",
                     "corrupt-descriptor@2:2"):
            assert FaultSpec.parse(text).describe() == text

    def test_parse_rejects_malformed_forms(self):
        for text in ("crash", "crash@1", "crash@:1", "crash@one:2",
                     "crash@1:two", "@1:2"):
            with pytest.raises(ConfigurationError, match="fault spec|kind"):
                FaultSpec.parse(text)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultSpec("meteor", 0, 0)

    def test_rejects_negative_coordinates(self):
        with pytest.raises(ConfigurationError, match="shard"):
            FaultSpec(CRASH, -1, 0)
        with pytest.raises(ConfigurationError, match="window"):
            FaultSpec(CRASH, 0, -1)


class TestFaultPlan:
    def test_parse_builds_specs(self):
        plan = FaultPlan.parse(["crash@0:1", "raise@1:2"])
        assert plan.faults == (
            FaultSpec(CRASH, 0, 1), FaultSpec(RAISE, 1, 2)
        )
        assert bool(plan) and not bool(FaultPlan())

    def test_rejects_duplicate_coordinates(self):
        with pytest.raises(ConfigurationError, match="twice"):
            FaultPlan.parse(["crash@0:1", "hang@0:1"])

    def test_for_shard_filters_and_orders_by_window(self):
        plan = FaultPlan.parse(["raise@1:5", "crash@0:1", "hang@1:2"])
        assert [s.window for s in plan.for_shard(1)] == [2, 5]
        assert plan.for_shard(2) == ()
        assert plan.max_shard() == 1

    def test_needs_watchdog_only_for_hang(self):
        assert FaultPlan.parse(["hang@0:0"]).needs_watchdog
        assert not FaultPlan.parse(["crash@0:0", "raise@1:1"]).needs_watchdog

    def test_seeded_is_deterministic_and_unique(self):
        one = FaultPlan.seeded(7, shards=3, windows=5, count=4)
        two = FaultPlan.seeded(7, shards=3, windows=5, count=4)
        other = FaultPlan.seeded(8, shards=3, windows=5, count=4)
        assert one == two
        assert one != other
        cells = [(s.shard, s.window) for s in one.faults]
        assert len(set(cells)) == 4
        assert all(s.shard < 3 and s.window < 5 for s in one.faults)
        assert all(s.kind in FAULT_KINDS for s in one.faults)

    def test_seeded_validates_its_grid(self):
        with pytest.raises(ConfigurationError, match="grid"):
            FaultPlan.seeded(1, shards=0, windows=3)
        with pytest.raises(ConfigurationError, match="count"):
            FaultPlan.seeded(1, shards=2, windows=2, count=5)
        with pytest.raises(ConfigurationError, match="kinds"):
            FaultPlan.seeded(1, shards=2, windows=2, kinds=("meteor",))

    def test_plan_is_picklable(self):
        plan = FaultPlan.seeded(3, shards=2, windows=4, count=2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestDetonation:
    def test_raise_kind_raises_injected_fault_error(self):
        with pytest.raises(InjectedFaultError, match="raise@0:1"):
            fire(FaultSpec(RAISE, 0, 1))

    def test_corrupt_descriptor_is_not_process_fatal(self):
        with pytest.raises(ConfigurationError, match="corrupt_frame"):
            fire(FaultSpec(CORRUPT_DESCRIPTOR, 0, 0))

    def test_corrupt_frame_mangles_a_shm_descriptor(self):
        assert corrupt_frame((4, 128, 64)) == (5, 128, 64)

    def test_corrupt_frame_truncates_pipe_bytes(self):
        frame = corrupt_frame(b"0123456789")
        assert frame == b"01234"
        assert corrupt_frame(b"x") == b"x"[:1]

    def test_corrupt_frame_passes_empty_slots_through(self):
        assert corrupt_frame(None) is None


class TestPlanValidation:
    def test_config_rejects_non_plan_values(self):
        with pytest.raises(ConfigurationError, match="fault_plan"):
            PipelineConfig(fault_plan="crash@0:1")

    def test_config_accepts_a_plan(self):
        plan = FaultPlan.parse(["crash@0:1"])
        assert PipelineConfig(workers=2, fault_plan=plan).fault_plan is plan

    def test_single_worker_facade_rejects_plans(self):
        config = PipelineConfig(
            workers=1, backend="python",
            fault_plan=FaultPlan.parse(["crash@0:1"]),
        )
        with pytest.raises(ConfigurationError, match="workers"):
            StatisticalRunner(config, SCHEDULE, GENS)

    def test_inline_execution_rejects_plans(self):
        config = PipelineConfig(
            workers=2, backend="python",
            fault_plan=FaultPlan.parse(["crash@0:1"]),
        )
        with pytest.raises(ConfigurationError, match="inline"):
            ShardedEngineRunner(config, SCHEDULE, GENS, inline=True)

    def test_out_of_range_shard_target_rejected(self):
        config = PipelineConfig(
            workers=2, backend="python",
            fault_plan=FaultPlan.parse(["crash@5:0"]),
        )
        with pytest.raises(ConfigurationError, match="shard 5"):
            ShardedEngineRunner(config, SCHEDULE, GENS)

    def test_hang_without_watchdog_rejected(self):
        config = PipelineConfig(
            workers=2, backend="python",
            fault_plan=FaultPlan.parse(["hang@0:0"]),
        )
        with pytest.raises(ConfigurationError, match="shard_timeout"):
            ShardedEngineRunner(config, SCHEDULE, GENS)


class TestSupervisionKnobs:
    def test_shard_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="shard_timeout"):
            PipelineConfig(shard_timeout=0.0)
        with pytest.raises(ConfigurationError, match="shard_timeout"):
            PipelineConfig(shard_timeout=-1.0)
        assert PipelineConfig(shard_timeout=None).shard_timeout is None

    def test_max_shard_restarts_must_be_a_natural_number(self):
        with pytest.raises(ConfigurationError, match="max_shard_restarts"):
            PipelineConfig(max_shard_restarts=-1)
        with pytest.raises(ConfigurationError, match="max_shard_restarts"):
            PipelineConfig(max_shard_restarts=1.5)

    def test_on_shard_loss_must_be_a_known_policy(self):
        with pytest.raises(ConfigurationError, match="on_shard_loss"):
            PipelineConfig(on_shard_loss="panic")

    def test_with_helpers_derive_variants(self):
        config = PipelineConfig()
        assert config.with_shard_timeout(2.5).shard_timeout == 2.5
        assert config.with_max_shard_restarts(0).max_shard_restarts == 0
        assert config.with_on_shard_loss("degrade").on_shard_loss == (
            "degrade"
        )
        plan = FaultPlan.parse(["raise@0:0"])
        assert config.with_workers(2).with_fault_plan(plan).fault_plan is plan
