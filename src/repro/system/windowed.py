"""Windowed root: per-window query results as the computation slides.

Algorithm 2 repeats "for each time interval as the computation window
slides" (the paper builds on Slider-style sliding-window analytics).
:class:`WindowedRoot` implements that behaviour explicitly: arriving
weighted batches are split by their items' *event* timestamps into
tumbling or hopping windows, each window accumulates its own Theta
store, and windows are emitted (query + error bounds) once the event
watermark passes their end.

Splitting a sampled batch by timestamp keeps the estimate valid: every
item of the batch carries the same weight ``w``, and the items that
fall into a window are a uniform sample of that window's share of the
stratum, so ``|I_w| * w`` remains an unbiased count for the window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.error_bounds import (
    ApproximateResult,
    estimate_mean_with_error,
    estimate_sum_with_error,
)
from repro.core.estimator import ThetaStore
from repro.core.items import WeightedBatch
from repro.errors import PipelineError
from repro.streams.windowing import HoppingWindow, TumblingWindow

__all__ = ["WindowResult", "WindowedRoot"]


@dataclass(frozen=True, slots=True)
class WindowResult:
    """One closed window's approximate answers.

    Attributes:
        window: The ``[start, end)`` interval the result covers.
        sum: Approximate SUM* with its error bound.
        mean: Approximate MEAN* with its error bound.
        sampled_items: Physical items that landed in the window.
        estimated_items: Recovered item count (Eq. 8 per stratum).
    """

    window: tuple[float, float]
    sum: ApproximateResult
    mean: ApproximateResult
    sampled_items: int
    estimated_items: float


class WindowedRoot:
    """Event-time windowed query execution over weighted batches."""

    def __init__(
        self,
        window: TumblingWindow | HoppingWindow,
        *,
        confidence: float = 0.95,
    ) -> None:
        self._window = window
        self._confidence = confidence
        self._stores: dict[tuple[float, float], ThetaStore] = {}
        self._emitted: set[tuple[float, float]] = set()
        self._watermark = 0.0

    @property
    def watermark(self) -> float:
        """Largest event time observed or advanced to so far."""
        return self._watermark

    @property
    def open_windows(self) -> list[tuple[float, float]]:
        """Windows holding data that have not been emitted yet."""
        return sorted(w for w in self._stores if w not in self._emitted)

    def receive(self, batch: WeightedBatch) -> None:
        """Route one weighted batch's items into their event windows."""
        buckets: dict[tuple[float, float], list] = {}
        for item in batch.items:
            self._watermark = max(self._watermark, item.emitted_at)
            for window in self._window.windows_for(item.emitted_at):
                if window in self._emitted:
                    raise PipelineError(
                        f"late item at t={item.emitted_at} for already-"
                        f"emitted window {window}"
                    )
                buckets.setdefault(window, []).append(item)
        for window, items in buckets.items():
            store = self._stores.setdefault(window, ThetaStore())
            store.add(WeightedBatch(batch.substream, batch.weight, items))

    def advance_watermark(self, event_time: float) -> list[WindowResult]:
        """Move the watermark forward and emit every closed window.

        A window is closed when its end is at or before the watermark.
        Results come out ordered by window start.
        """
        self._watermark = max(self._watermark, event_time)
        results: list[WindowResult] = []
        for window in self.open_windows:
            _start, end = window
            if end <= self._watermark:
                results.append(self._emit(window))
        return results

    def flush(self) -> list[WindowResult]:
        """Emit every remaining window regardless of the watermark."""
        return [self._emit(window) for window in self.open_windows]

    def _emit(self, window: tuple[float, float]) -> WindowResult:
        store = self._stores.pop(window)
        self._emitted.add(window)
        estimates = store.per_substream()
        result = WindowResult(
            window=window,
            sum=estimate_sum_with_error(store, self._confidence),
            mean=estimate_mean_with_error(store, self._confidence),
            sampled_items=sum(e.sampled_count for e in estimates.values()),
            estimated_items=sum(
                e.estimated_count for e in estimates.values()
            ),
        )
        return result
