"""Processing topology: a DAG of sources, processors and sinks.

The builder mirrors Kafka Streams' ``Topology``: ``add_source`` binds a
node to input topics, ``add_processor`` wires user processors beneath
parents, ``add_sink`` terminates a branch into an output topic. The
runtime (``repro.streams.runtime``) pumps records from a broker through
the DAG.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TopologyError
from repro.streams.processor import FunctionProcessor, Processor, ProcessorContext

__all__ = ["Topology", "SinkNode", "SourceNode"]


class SourceNode(Processor):
    """Entry node: records fetched from its topics are injected here."""

    def __init__(self, name: str, topics: list[str]) -> None:
        super().__init__(name)
        self.topics = topics


class SinkNode(Processor):
    """Exit node: forwards every record into an output topic."""

    def __init__(
        self,
        name: str,
        topic: str,
        emit: Callable[[str, Any, Any], None],
    ) -> None:
        super().__init__(name)
        self.topic = topic
        self._emit = emit

    def process(self, key: Any, value: Any) -> None:
        """Emit the record to the sink's output topic."""
        self._emit(self.topic, key, value)


class Topology:
    """A named DAG of processors with validation."""

    def __init__(self) -> None:
        self._nodes: dict[str, Processor] = {}
        self._parents: dict[str, list[str]] = {}
        self._sources: list[SourceNode] = []
        self._sinks: list[SinkNode] = []
        self._emit_hook: Callable[[str, Any, Any], None] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_source(self, name: str, topics: list[str]) -> "Topology":
        """Add a source node subscribed to the given topics."""
        if not topics:
            raise TopologyError(f"source {name!r} needs at least one topic")
        node = SourceNode(name, list(topics))
        self._register(name, node, parents=[])
        self._sources.append(node)
        return self

    def add_processor(
        self,
        name: str,
        processor: Processor | Callable[[Any, Any, ProcessorContext], None],
        parents: list[str],
    ) -> "Topology":
        """Add a processor beneath one or more parents."""
        if not parents:
            raise TopologyError(f"processor {name!r} needs at least one parent")
        node = (
            processor
            if isinstance(processor, Processor)
            else FunctionProcessor(name, processor)
        )
        node.name = name
        self._register(name, node, parents)
        return self

    def add_sink(self, name: str, topic: str, parents: list[str]) -> "Topology":
        """Add a sink writing every received record to ``topic``."""
        if not parents:
            raise TopologyError(f"sink {name!r} needs at least one parent")

        def emit(out_topic: str, key: Any, value: Any) -> None:
            if self._emit_hook is None:
                raise TopologyError(
                    "topology is not attached to a runtime; sink cannot emit"
                )
            self._emit_hook(out_topic, key, value)

        node = SinkNode(name, topic, emit)
        self._register(name, node, parents)
        self._sinks.append(node)
        return self

    def _register(self, name: str, node: Processor, parents: list[str]) -> None:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name!r}")
        for parent in parents:
            if parent not in self._nodes:
                raise TopologyError(
                    f"parent {parent!r} of {name!r} is not defined yet"
                )
        self._nodes[name] = node
        self._parents[name] = list(parents)
        for parent in parents:
            self._nodes[parent].context.add_child(node)

    # ------------------------------------------------------------------
    # Introspection / runtime hooks
    # ------------------------------------------------------------------
    @property
    def sources(self) -> list[SourceNode]:
        """All source nodes."""
        return list(self._sources)

    @property
    def sinks(self) -> list[SinkNode]:
        """All sink nodes."""
        return list(self._sinks)

    def node(self, name: str) -> Processor:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"no such node: {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        """All node names in insertion order."""
        return list(self._nodes)

    def attach_emit_hook(self, hook: Callable[[str, Any, Any], None]) -> None:
        """Bind sink output to a runtime (producer) callback."""
        self._emit_hook = hook

    def init_all(self) -> None:
        """Run every node's one-time init."""
        for node in self._nodes.values():
            node.init()

    def close_all(self) -> None:
        """Run every node's tear-down."""
        for node in self._nodes.values():
            node.close()

    def punctuate_all(self, stream_time: float) -> None:
        """Advance stream time on every node (window boundaries)."""
        for node in self._nodes.values():
            node.context.stream_time = stream_time
            node.punctuate(stream_time)
