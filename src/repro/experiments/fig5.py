"""Figure 5 — accuracy loss vs sampling fraction (Gaussian / Poisson).

The paper's result: ApproxIoT's accuracy loss stays under ~0.035 %
(Gaussian) and ~0.013 % (Poisson) across fractions, and is roughly an
order of magnitude below SRS at the 10 % fraction (10× Gaussian, 30×
Poisson) because stratification keeps every sub-stream represented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    PAPER_FRACTIONS,
    base_config,
    gaussian_generators,
    poisson_generators,
    uniform_schedule,
)
from repro.metrics.report import Table, format_percent
from repro.system.statistical import StatisticalRunner

__all__ = ["Fig5Point", "run_fig5", "main"]


@dataclass(frozen=True, slots=True)
class Fig5Point:
    """One x-axis point of Fig. 5."""

    distribution: str
    fraction: float
    approxiot_loss: float
    srs_loss: float

    @property
    def srs_to_approxiot_ratio(self) -> float:
        """How many times worse SRS is at this fraction."""
        if self.approxiot_loss == 0:
            return float("inf")
        return self.srs_loss / self.approxiot_loss


def run_fig5(
    distribution: str = "gaussian",
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
) -> list[Fig5Point]:
    """Reproduce one panel of Fig. 5.

    Args:
        distribution: ``"gaussian"`` for Fig. 5(a), ``"poisson"`` for 5(b).
        fractions: Sampling fractions to sweep (paper defaults).
        scale: Experiment sizing.
    """
    fractions = fractions if fractions is not None else PAPER_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = (
        gaussian_generators() if distribution == "gaussian"
        else poisson_generators()
    )
    schedule = uniform_schedule(scale.rate_scale)
    points: list[Fig5Point] = []
    for fraction in fractions:
        config = base_config(fraction, scale)
        with StatisticalRunner(config, schedule, generators) as runner:
            outcome = runner.run(scale.windows)
        points.append(
            Fig5Point(
                distribution=distribution,
                fraction=fraction,
                approxiot_loss=outcome.mean_approxiot_loss,
                srs_loss=outcome.mean_srs_loss,
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print both panels as paper-style tables; return the text."""
    blocks: list[str] = []
    for distribution, label in (("gaussian", "Fig. 5(a) Gaussian"),
                                ("poisson", "Fig. 5(b) Poisson")):
        table = Table(
            f"{label}: accuracy loss vs sampling fraction",
            ["fraction", "ApproxIoT loss", "SRS loss", "SRS/ApproxIoT"],
        )
        for point in run_fig5(distribution, scale=scale):
            table.add_row(
                f"{point.fraction:.0%}",
                format_percent(point.approxiot_loss),
                format_percent(point.srs_loss),
                f"{point.srs_to_approxiot_ratio:.1f}x",
            )
        blocks.append(table.render())
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
