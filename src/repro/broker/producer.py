"""Producer client for the broker substrate.

Mirrors the shape of a Kafka producer: buffered sends with linger-style
batching, flush, and per-topic byte accounting (the hook the network
simulator uses to charge link bandwidth for inter-layer traffic).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.broker.broker import Broker
from repro.broker.records import PICKLE_SERDE, Record, Serde
from repro.errors import ConfigurationError

__all__ = ["Producer"]


class Producer:
    """A buffering producer bound to one broker.

    Records accumulate in a per-topic buffer and are appended to the
    broker when the buffer reaches ``batch_size`` or on :meth:`flush`.
    An optional ``on_send`` hook observes every delivered batch — the
    edge pipeline uses it to charge simulated WAN links.
    """

    def __init__(
        self,
        broker: Broker,
        *,
        batch_size: int = 1,
        serde: Serde = PICKLE_SERDE,
        on_send: Callable[[str, list[Record], int], None] | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self._broker = broker
        self._batch_size = batch_size
        self._serde = serde
        self._on_send = on_send
        self._buffers: dict[str, list[Record]] = {}
        self.records_sent = 0
        self.bytes_sent = 0

    def send(
        self,
        topic: str,
        value: Any,
        *,
        key: str | None = None,
        timestamp: float = 0.0,
    ) -> None:
        """Buffer one record for delivery."""
        buffer = self._buffers.setdefault(topic, [])
        buffer.append(Record(key=key, value=value, timestamp=timestamp))
        if len(buffer) >= self._batch_size:
            self._deliver(topic)

    def flush(self) -> None:
        """Deliver every buffered record immediately."""
        for topic in list(self._buffers):
            self._deliver(topic)

    @property
    def pending(self) -> int:
        """Records buffered but not yet delivered."""
        return sum(len(buf) for buf in self._buffers.values())

    def _deliver(self, topic: str) -> None:
        buffer = self._buffers.get(topic)
        if not buffer:
            return
        batch, self._buffers[topic] = buffer, []
        self._broker.produce_batch(topic, batch)
        batch_bytes = sum(self._serde.size_of(r.value) for r in batch)
        self.records_sent += len(batch)
        self.bytes_sent += batch_bytes
        if self._on_send is not None:
            self._on_send(topic, batch, batch_bytes)
