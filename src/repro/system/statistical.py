"""Statistical pipeline runner — the accuracy experiments' facade.

Runs the full sampling tree *algorithmically* (no simulated network or
hosts): per window, sources emit batches which traverse the logical
tree bottom-up; every sampling node runs weighted hierarchical sampling
with its local budget; the root estimates SUM with error bounds. An
SRS baseline (coin-flip at the first edge layer, Horvitz-Thompson at
the root) and the exact ground truth are computed over the *same*
emitted items, so accuracy-loss comparisons are apples-to-apples.

Since the engine refactor this module is a thin facade: assembly lives
in :mod:`repro.engine.pipeline`, the windowed loop and its three
strategies in :mod:`repro.engine.runner`, and batch movement behind the
:class:`~repro.engine.transport.Transport` protocol —
``config.transport`` selects in-process callbacks (default) or broker
topics, with identical results on either (seeded runs are
transport-invariant).

With ``config.workers > 1`` the same loop runs sharded across OS
processes (:mod:`repro.engine.sharding`): each worker shard samples an
equal share of every sub-stream and the root merges per-shard Theta
state before estimating. Call :meth:`StatisticalRunner.close` (or use
the runner as a context manager) to reap shard processes.

This is the engine behind Figs. 5, 10 and 11(a).
"""

from __future__ import annotations

from repro.engine.pipeline import build_pipeline
from repro.engine.runner import (
    EngineRunner,
    RunOutcome,
    WindowOutcome,
    accuracy_loss,
)
from repro.engine.sharding import ShardedEngineRunner
from repro.engine.transport import make_statistical_transport
from repro.errors import ConfigurationError
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.scenario import Scenario
from repro.system.config import PipelineConfig
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator

__all__ = ["WindowOutcome", "RunOutcome", "StatisticalRunner", "accuracy_loss"]


class StatisticalRunner:
    """Drives the logical tree over windows of generated data.

    ``scenario`` (a :class:`~repro.scenarios.scenario.Scenario`) makes
    the run dynamic: the engine applies the scenario's per-window
    state — rate bursts, skew drift, node churn, degraded links —
    before each window, on any transport/backend/plane/worker
    combination. ``None`` (the default) is the classic static run,
    bit-for-bit unchanged.
    """

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
        *,
        scenario: Scenario | None = None,
    ) -> None:
        self._config = config
        self._engine: EngineRunner | ShardedEngineRunner
        if config.workers == 1 and config.fault_plan is not None:
            raise ConfigurationError(
                "fault injection targets worker shard processes; a "
                "single-worker run executes in this process and has no "
                "shard to kill — set workers > 1 to use a fault_plan"
            )
        if config.workers > 1:
            self._engine = ShardedEngineRunner(
                config, schedule, generators, scenario=scenario
            )
        else:
            engine_scenario = None
            if scenario is not None:
                engine_scenario = ScenarioEngine(
                    scenario, config.tree, schedule
                )
            self._engine = EngineRunner(
                build_pipeline(config, schedule, generators),
                make_statistical_transport(config.transport),
                scenario=engine_scenario,
            )

    @property
    def engine(self) -> EngineRunner | ShardedEngineRunner:
        """The underlying runner: in-process engine, or sharded driver."""
        return self._engine

    def run_window(self) -> WindowOutcome | None:
        """Run one window through ApproxIoT, SRS and the exact path.

        ``None`` marks a window in which no source emitted anything
        (possible intermittently when ``rate * window`` is below one
        item per source); :meth:`run` skips such windows.
        """
        return self._engine.run_window()

    def run(self, windows: int) -> RunOutcome:
        """Run several windows and collect the outcomes."""
        return self._engine.run(windows)

    def close(self) -> None:
        """Release execution resources (worker shard processes)."""
        if isinstance(self._engine, ShardedEngineRunner):
            self._engine.close()

    def __enter__(self) -> "StatisticalRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
