"""Record types and serialization for the pub/sub substrate.

Mirrors Kafka's data model: a :class:`Record` is a key/value pair with
a timestamp and optional headers; a :class:`ConsumedRecord` is the same
plus its position (topic, partition, offset) once read back from a log.
Values are arbitrary Python objects by default; a pluggable
:class:`Serde` pair exists so tests can exercise the byte-size
accounting used by the network simulator.

The module also hosts the engine's compact binary codec for weighted
batches (:func:`encode_weighted_batch` / :data:`COLUMNAR_SERDE`): a
batch's records travel as raw little-endian column buffers (numpy
``tobytes``/``frombuffer``, stdlib ``array('d')`` fallback) instead of
a per-record pickle graph. This is what the sharded execution engine
ships between worker processes and what :class:`BrokerTransport` uses
when given a serde, so cross-process transport cost scales with bytes,
not with record count.

The codec has a zero-copy-friendly surface for the shared-memory shard
transport (:mod:`repro.engine.shm`): the ``*_chunks`` encoders return
the raw byte chunks without joining them (each chunk lands in the
shared segment with one copy, no intermediate buffer), and the
decoders accept any bytes-like buffer — a ``memoryview`` over a shared
segment decodes in place, with numpy ``frombuffer`` reading the column
bytes straight off the shared pages before copying out into owned
columns.
"""

from __future__ import annotations

import json
import pickle
import struct
import sys
from array import array
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.columns import ColumnarBatch
from repro.core.items import StreamItem, WeightedBatch
from repro.errors import ConfigurationError

try:  # pragma: no cover - trivially environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "Record",
    "ConsumedRecord",
    "Serde",
    "JSON_SERDE",
    "PICKLE_SERDE",
    "COLUMNAR_SERDE",
    "encode_weighted_batch",
    "encode_weighted_batch_chunks",
    "decode_weighted_batch",
    "encode_weighted_batches",
    "encode_weighted_batches_chunks",
    "decode_weighted_batches",
]


@dataclass(frozen=True, slots=True)
class Record:
    """A produced record, before it is assigned an offset.

    Attributes:
        key: Partitioning key (``None`` lets the producer round-robin).
        value: The payload.
        timestamp: Producer-assigned event time (seconds).
        headers: Optional string metadata, like Kafka record headers.
    """

    key: str | None
    value: Any
    timestamp: float = 0.0
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ConsumedRecord:
    """A record read from a partition log, with its position attached."""

    topic: str
    partition: int
    offset: int
    key: str | None
    value: Any
    timestamp: float
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def position(self) -> tuple[str, int, int]:
        """The (topic, partition, offset) coordinate of this record."""
        return (self.topic, self.partition, self.offset)


@dataclass(frozen=True, slots=True)
class Serde:
    """A serializer/deserializer pair for payload byte accounting."""

    serialize: Callable[[Any], bytes]
    deserialize: Callable[[bytes], Any]

    def size_of(self, value: Any) -> int:
        """Serialized size of a value in bytes."""
        return len(self.serialize(value))


def _json_ser(value: Any) -> bytes:
    return json.dumps(value, separators=(",", ":"), default=str).encode()


def _json_de(data: bytes) -> Any:
    return json.loads(data.decode())


JSON_SERDE = Serde(_json_ser, _json_de)
PICKLE_SERDE = Serde(pickle.dumps, pickle.loads)


# ----------------------------------------------------------------------
# Compact binary codec for weighted batches
# ----------------------------------------------------------------------
#
# Wire layout (all integers/floats little-endian):
#
#   batch   := MAGIC plane:u8 substream:str weight:f64 n:u64
#              tags sizes values:(n x f64) timestamps:(n x f64)
#   tags    := 0x00 str            (every record in one sub-stream)
#            | 0x01 str * n        (per-record stratum ids)
#   sizes   := 0x00 i64            (uniform serialized size)
#            | 0x01 i64 * n        (per-record sizes)
#   str     := len:u32 utf8-bytes
#
# ``plane`` records which payload representation the batch carried so a
# decoded batch lands on the same data plane it left: 0 decodes to a
# ``list[StreamItem]``, 1 to a ``ColumnarBatch``. Either way the record
# data crosses the wire as whole column buffers — the encoder never
# walks a Python object per record on the columnar plane, and the
# decoder rebuilds columns with one ``frombuffer`` per column.

_BATCH_MAGIC = b"RWB1"
_PICKLE_MAGIC = b"RPK1"
_PLANE_OBJECTS = 0
_PLANE_COLUMNAR = 1


def _pack_str(out: list[bytes], text: str) -> None:
    data = text.encode()
    out.append(struct.pack("<I", len(data)))
    out.append(data)


def _unpack_str(data, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    return bytes(data[offset : offset + length]).decode(), offset + length


def _float_column_bytes(column) -> bytes:
    """A float column as raw little-endian float64 bytes."""
    if _np is not None and isinstance(column, _np.ndarray):
        return _np.ascontiguousarray(column, dtype="<f8").tobytes()
    buf = column if isinstance(column, array) else array("d", column)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts only
        buf = array("d", buf)
        buf.byteswap()
    return buf.tobytes()


def _float_column_from(data: bytes):
    """Rebuild a float column from raw little-endian float64 bytes.

    The result owns its buffer (numpy copies out of the message bytes),
    so decoded batches never alias transport buffers.
    """
    if _np is not None:
        return _np.frombuffer(data, dtype="<f8").astype(_np.float64)
    buf = array("d")
    buf.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts only
        buf.byteswap()
    return buf


def encode_weighted_batch_chunks(batch: WeightedBatch) -> list[bytes]:
    """One batch's wire bytes as a chunk list, without the final join.

    The shared-memory shard transport writes each chunk straight into
    its segment — one copy per column buffer, no intermediate joined
    bytes object. Joining the chunks yields exactly
    :func:`encode_weighted_batch`'s output, so the two paths are
    bit-identical on the wire.

    Both data planes are supported: a columnar payload's columns are
    dumped as raw buffers directly; an object payload is transposed
    once at the seam (the same ``from_items`` shim the columnar plane
    uses everywhere else) so the wire format is identical. Float
    values and timestamps round-trip bit-for-bit through float64, and
    per-record sizes are preserved, so byte accounting
    (``WeightedBatch.total_bytes``) is unchanged by a round trip.
    """
    payload = batch.items
    if isinstance(payload, ColumnarBatch):
        plane = _PLANE_COLUMNAR
        columns = payload
    else:
        plane = _PLANE_OBJECTS
        columns = ColumnarBatch.from_items(payload)
    out: list[bytes] = [_BATCH_MAGIC, struct.pack("<B", plane)]
    _pack_str(out, batch.substream)
    out.append(struct.pack("<dQ", batch.weight, len(columns)))
    if isinstance(columns.substreams, str):
        out.append(b"\x00")
        _pack_str(out, columns.substreams)
    else:
        out.append(b"\x01")
        for tag in columns.substreams:
            _pack_str(out, tag)
    if isinstance(columns.sizes, int):
        out.append(b"\x00")
        out.append(struct.pack("<q", columns.sizes))
    else:
        sizes = array("q", columns.sizes)
        if sys.byteorder == "big":  # pragma: no cover - exotic hosts only
            sizes.byteswap()
        out.append(b"\x01")
        out.append(sizes.tobytes())
    out.append(_float_column_bytes(columns.values))
    out.append(_float_column_bytes(columns.timestamps))
    return out


def encode_weighted_batch(batch: WeightedBatch) -> bytes:
    """Serialize one ``(W_out, I)`` pair without per-record pickling.

    The joined form of :func:`encode_weighted_batch_chunks` — what the
    pipe codec sends and what :data:`COLUMNAR_SERDE` produces.
    """
    return b"".join(encode_weighted_batch_chunks(batch))


def _decode_weighted_batch(data, offset: int) -> tuple[WeightedBatch, int]:
    if bytes(data[offset : offset + 4]) != _BATCH_MAGIC:
        raise ConfigurationError(
            "not a binary weighted batch (bad magic); was this record "
            "produced without the columnar serde?"
        )
    offset += 4
    plane = data[offset]
    offset += 1
    substream, offset = _unpack_str(data, offset)
    weight, n = struct.unpack_from("<dQ", data, offset)
    offset += 16
    tags: str | list[str]
    if data[offset] == 0:
        tags, offset = _unpack_str(data, offset + 1)
    else:
        offset += 1
        per_record = []
        for _ in range(n):
            tag, offset = _unpack_str(data, offset)
            per_record.append(tag)
        tags = per_record
    sizes: int | list[int]
    if data[offset] == 0:
        (sizes,) = struct.unpack_from("<q", data, offset + 1)
        offset += 9
    else:
        offset += 1
        size_column = array("q")
        size_column.frombytes(data[offset : offset + 8 * n])
        if sys.byteorder == "big":  # pragma: no cover - exotic hosts only
            size_column.byteswap()
        sizes = size_column.tolist()
        offset += 8 * n
    values = _float_column_from(data[offset : offset + 8 * n])
    offset += 8 * n
    timestamps = _float_column_from(data[offset : offset + 8 * n])
    offset += 8 * n
    columns = ColumnarBatch(tags, values, timestamps, sizes)
    if plane == _PLANE_COLUMNAR:
        return WeightedBatch(substream, weight, columns), offset
    return WeightedBatch(substream, weight, columns.to_items()), offset


def decode_weighted_batch(data) -> WeightedBatch:
    """Inverse of :func:`encode_weighted_batch` (any bytes-like buffer)."""
    batch, _offset = _decode_weighted_batch(data, 0)
    return batch


def encode_weighted_batches_chunks(batches: list[WeightedBatch]) -> list[bytes]:
    """A whole Theta contribution's wire bytes as a chunk list.

    The shared-memory framing: the sharded engine writes these chunks
    directly into a shard's segment, so a window's column buffers are
    copied exactly once on the encode side. Joining the chunks yields
    exactly :func:`encode_weighted_batches`'s output.
    """
    out = [struct.pack("<I", len(batches))]
    for batch in batches:
        out.extend(encode_weighted_batch_chunks(batch))
    return out


def encode_weighted_batches(batches: list[WeightedBatch]) -> bytes:
    """Serialize a sequence of weighted batches into one message.

    The framing the sharded engine's pipe codec ships per window: a
    shard's whole Theta contribution crosses the process boundary as
    one buffer.
    """
    return b"".join(encode_weighted_batches_chunks(batches))


def decode_weighted_batches(data) -> list[WeightedBatch]:
    """Inverse of :func:`encode_weighted_batches`.

    Accepts any bytes-like buffer. Handing it a ``memoryview`` over a
    shared-memory segment decodes in place — numpy reads each column
    with one ``frombuffer`` view over the shared pages — and the
    decoded batches copy out, never aliasing the buffer.
    """
    (count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    batches: list[WeightedBatch] = []
    for _ in range(count):
        batch, offset = _decode_weighted_batch(data, offset)
        batches.append(batch)
    return batches


def _columnar_ser(value: Any) -> bytes:
    if isinstance(value, WeightedBatch):
        return encode_weighted_batch(value)
    return _PICKLE_MAGIC + pickle.dumps(value)


def _columnar_de(data: bytes) -> Any:
    if data[:4] == _PICKLE_MAGIC:
        return pickle.loads(data[4:])
    return decode_weighted_batch(data)


#: Serde moving :class:`~repro.core.items.WeightedBatch` values as
#: compact column buffers (non-batch values fall back to pickle with a
#: distinguishing prefix). Hand it to
#: :class:`~repro.engine.transport.BrokerTransport` to make every
#: produced record a real byte payload instead of an object reference —
#: the configuration a multi-process broker deployment would run.
COLUMNAR_SERDE = Serde(_columnar_ser, _columnar_de)
