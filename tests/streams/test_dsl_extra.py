"""Additional DSL coverage: flat_map, counts, hopping windows, chains."""

import pytest

from repro.broker.broker import Broker
from repro.broker.producer import Producer
from repro.streams.dsl import StreamBuilder
from repro.streams.runtime import StreamsRuntime
from repro.streams.windowing import HoppingWindow, TumblingWindow


def broker_with(topic, values):
    broker = Broker()
    broker.create_topic(topic)
    producer = Producer(broker)
    for ts, value in values:
        producer.send(topic, value, timestamp=ts)
    return broker


class TestDslOperators:
    def test_flat_map_values(self):
        broker = broker_with("in", [(0.0, "a b"), (0.0, "c")])
        builder = StreamBuilder()
        words = []
        (builder.stream("in")
            .flat_map_values(lambda v: v.split())
            .for_each(lambda k, v: words.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert words == ["a", "b", "c"]

    def test_map_rekeys_and_transforms(self):
        broker = broker_with("in", [(0.0, 5)])
        builder = StreamBuilder()
        seen = []
        (builder.stream("in")
            .map(lambda k, v: (f"key-{v}", v * v))
            .for_each(lambda k, v: seen.append((k, v))))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert seen == [("key-5", 25)]

    def test_peek_does_not_modify(self):
        broker = broker_with("in", [(0.0, 1), (0.0, 2)])
        builder = StreamBuilder()
        peeked, sunk = [], []
        (builder.stream("in")
            .peek(lambda k, v: peeked.append(v))
            .for_each(lambda k, v: sunk.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert peeked == sunk == [1, 2]

    def test_windowed_count(self):
        values = [(0.1, "x"), (0.2, "x"), (0.9, "x"), (1.5, "x")]
        broker = broker_with("in", values)
        builder = StreamBuilder()
        counts = []
        (builder.stream("in")
            .select_key(lambda k, v: "all")
            .windowed_count(TumblingWindow(1.0))
            .for_each(lambda k, v: counts.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.advance_stream_time(3.0)
        runtime.close()
        assert (0.0, 3) in counts
        assert (1.0, 1) in counts

    def test_chained_filters_compose(self):
        broker = broker_with("in", [(0.0, i) for i in range(20)])
        builder = StreamBuilder()
        out = []
        (builder.stream("in")
            .filter(lambda k, v: v % 2 == 0)
            .filter(lambda k, v: v > 10)
            .map_values(lambda v: v // 2)
            .for_each(lambda k, v: out.append(v)))
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert out == [6, 7, 8, 9]

    def test_two_sources_two_sinks(self):
        broker = Broker()
        broker.create_topic("in1")
        broker.create_topic("in2")
        producer = Producer(broker)
        producer.send("in1", 1, timestamp=0.0)
        producer.send("in2", 2, timestamp=0.0)
        builder = StreamBuilder()
        builder.stream("in1").map_values(lambda v: v * 10).to("out1")
        builder.stream("in2").map_values(lambda v: v * 100).to("out2")
        runtime = StreamsRuntime(broker, builder.build())
        runtime.run_to_completion()
        runtime.close()
        assert broker.fetch("out1", 0, 0)[0].value == 10
        assert broker.fetch("out2", 0, 0)[0].value == 200


class TestHoppingWindows:
    def test_every_containing_window_returned(self):
        window = HoppingWindow(size=4.0, hop=2.0)
        windows = window.windows_for(5.0)
        assert (2.0, 6.0) in windows
        assert (4.0, 8.0) in windows
        assert all(start <= 5.0 < start + 4.0 for start, _end in windows)

    def test_hop_equal_size_behaves_like_tumbling(self):
        hopping = HoppingWindow(size=2.0, hop=2.0)
        tumbling = TumblingWindow(2.0)
        for timestamp in (0.0, 1.9, 2.0, 5.5):
            assert hopping.windows_for(timestamp) == (
                tumbling.windows_for(timestamp)
            )

    def test_small_timestamps_near_zero(self):
        window = HoppingWindow(size=10.0, hop=5.0)
        windows = window.windows_for(1.0)
        assert (0.0, 10.0) in windows
