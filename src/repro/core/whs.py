"""Weighted hierarchical sampling — Algorithm 1 of the paper.

``whsamp`` is the basic operation run on every node in the logical
tree, once per time interval. It stratifies the interval's arrivals
into sub-streams, allocates the node's sample budget across them, runs
reservoir sampling per sub-stream, and rescales each sub-stream's
weight by ``c_i / N_i`` when its reservoir overflowed (Equations 1–2).

The key invariant (the paper proves it as Equation 8 and we test it
property-based) is that the *estimated count* is preserved exactly::

    W_out_i * c~_i == W_in_i * c_i

where ``c_i`` is the number of arrivals and ``c~_i`` the number of
sampled items. Because of this, the root's weighted sums are unbiased
regardless of how many layers sampled the data on the way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.columns import ColumnarBatch
from repro.core.fastpath import (
    BACKEND_AUTO,
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    batch_sample_indices,
    make_generator,
    reservoir_sample_indices,
    resolve_backend,
    sample_materialized,
)
from repro.core.items import StreamItem, WeightedBatch, group_by_substream
from repro.core.reservoir import ReservoirSampler
from repro.core.stratified import AllocationPolicy, allocate_fair_fill
from repro.core.weights import WeightMap, output_weight
from repro.errors import SamplingError

__all__ = [
    "WHSampResult",
    "merge_results",
    "whsamp",
    "whsamp_batches",
    "WeightedHierarchicalSampler",
]


@dataclass(slots=True)
class WHSampResult:
    """Return value of one ``whsamp`` invocation.

    Attributes:
        batches: One :class:`WeightedBatch` per sub-stream seen in the
            interval, carrying the sampled items and output weight.
        weights: The output weight map ``W_out`` for all sub-streams.
        seen: Per-sub-stream arrival counts ``c_i`` for the interval.
        allocation: Per-sub-stream reservoir sizes ``N_i`` used.
    """

    batches: list[WeightedBatch] = field(default_factory=list)
    weights: WeightMap = field(default_factory=WeightMap)
    seen: dict[str, int] = field(default_factory=dict)
    allocation: dict[str, int] = field(default_factory=dict)

    @property
    def sampled_count(self) -> int:
        """Total number of items kept across all sub-streams."""
        return sum(len(batch) for batch in self.batches)

    @property
    def arrival_count(self) -> int:
        """Total number of items offered across all sub-streams."""
        return sum(self.seen.values())


def whsamp_batches(
    batches: Iterable[WeightedBatch],
    sample_size: int,
    *,
    policy: AllocationPolicy = allocate_fair_fill,
    rng: random.Random | None = None,
    backend: str = BACKEND_PYTHON,
) -> WHSampResult:
    """Run Algorithm 1 over the interval's ``(W_in, items)`` pairs.

    Algorithm 2's inner loop hands *each pair* of weight map and items
    to WHSamp separately — a node may receive several pairs for the
    same sub-stream (one per child, per interval split) carrying
    *different* input weights, and merging them under a single weight
    would break the count invariant of Eq. 8. This entry point keeps
    the invariant by sampling each ``(sub-stream, W_in)`` group through
    its own reservoir: the node's budget is allocated across groups by
    ``policy``, and each group's output weight follows Eq. 2 from its
    own input weight. The output therefore contains one weighted batch
    per group, which is exactly why the root's Theta store may hold
    "multiple pairs of the weight map and sampled items" per
    sub-stream (§III-C).

    The result's weight map records, per sub-stream, the output weight
    of that sub-stream's largest group — the "up-to-date weight" used
    by the stale-weight rule of Figure 3 when later items arrive
    without metadata.

    ``backend`` selects the per-group sampling kernel (see
    :mod:`repro.core.fastpath`): the pure-Python reservoir loop (the
    bit-for-bit default) or the vectorized numpy survivor-set draw.
    Both satisfy the Eq. 8 invariant exactly.

    Payloads may arrive on either data plane. Columnar groups are
    sampled natively — survivor *indices* are drawn with exactly the
    entropy the object kernels would spend on items, then gathered
    with one column op — so a seeded run keeps the same records on
    either plane without any list→array conversion on the hot path.
    """
    if sample_size <= 0:
        raise SamplingError(f"sample size must be positive, got {sample_size}")
    rng = rng if rng is not None else random.Random()
    backend = resolve_backend(backend)

    segments: dict[tuple[str, float], list] = {}
    for batch in batches:
        segments.setdefault((batch.substream, batch.weight), []).append(
            batch.items
        )
    groups: dict[tuple[str, float], "list[StreamItem] | ColumnarBatch"] = {}
    for key, payloads in segments.items():
        payloads = [payload for payload in payloads if len(payload)]
        if not payloads:
            continue
        if all(isinstance(payload, ColumnarBatch) for payload in payloads):
            groups[key] = ColumnarBatch.concat(payloads)
        else:  # object plane (or a mixed-plane seam: materialize)
            merged: list[StreamItem] = []
            for payload in payloads:
                merged.extend(payload)
            groups[key] = merged

    result = WHSampResult()
    if not groups:
        return result
    # Built only when there is work: an empty interval must neither pay
    # Generator setup nor consume entropy from the caller's rng.
    gen = make_generator(rng) if backend == BACKEND_NUMPY else None

    counts = {key: len(items) for key, items in groups.items()}
    allocation = policy(sample_size, counts)  # line 7: getSampleSize
    dominant: dict[str, int] = {}
    for (substream, w_in), group_items in groups.items():
        key = (substream, w_in)
        capacity = allocation[key]
        if isinstance(group_items, ColumnarBatch):
            # line 10: RS(S_i, N_i) on columns — survivor indices drawn
            # with the same entropy as the object kernels, one gather.
            if counts[key] <= capacity:
                sampled: "list[StreamItem] | ColumnarBatch" = group_items
            elif gen is not None:
                sampled = group_items.select(
                    batch_sample_indices(counts[key], capacity, gen)
                )
            else:
                sampled = group_items.select(
                    reservoir_sample_indices(counts[key], capacity, rng)
                )
        elif gen is not None:  # line 10: RS(S_i, N_i), vectorized
            sampled = sample_materialized(group_items, capacity, gen)
        else:  # line 10: RS(S_i, N_i), per-item Algorithm R
            sampler: ReservoirSampler[StreamItem] = ReservoirSampler(
                capacity, rng
            )
            sampler.extend(group_items)
            sampled = sampler.sample()
        w_out = output_weight(w_in, counts[key], capacity)  # Eq. 1-2
        result.batches.append(WeightedBatch(substream, w_out, sampled))
        result.seen[substream] = result.seen.get(substream, 0) + counts[key]
        result.allocation[substream] = (
            result.allocation.get(substream, 0) + capacity
        )
        if counts[key] >= dominant.get(substream, 0):
            dominant[substream] = counts[key]
            result.weights.update(substream, w_out)
    return result


def merge_results(results: Iterable[WHSampResult]) -> WHSampResult:
    """The cross-shard union of several Algorithm 1 outputs (§III-E).

    Worker shards run WHSamp over disjoint portions of the stream; the
    union of their outputs is itself a valid WHSamp output for the
    whole stream because the Eq. 8 count invariant holds *per batch*:
    every ``(W_out, I)`` pair already recovers its own shard's arrival
    count exactly, so concatenating the pairs recovers the union's
    count exactly — no weight rescaling is needed or allowed (Eq. 2
    was applied per shard against per-shard reservoir sizes).

    Merge semantics, field by field:

    * ``batches`` concatenate in shard order (deterministic for a
      fixed shard enumeration);
    * ``seen`` and ``allocation`` add per sub-stream;
    * ``weights`` keeps, per sub-stream, the weight reported by the
      shard that saw the most arrivals for it — the same dominant-
      group rule :func:`whsamp_batches` applies within one node, so
      the stale-weight metadata stays the best-informed value.
    """
    merged = WHSampResult()
    dominant: dict[str, int] = {}
    for result in results:
        merged.batches.extend(result.batches)
        for substream, count in result.seen.items():
            merged.seen[substream] = merged.seen.get(substream, 0) + count
        for substream, size in result.allocation.items():
            merged.allocation[substream] = (
                merged.allocation.get(substream, 0) + size
            )
        for substream, weight in result.weights.items():
            if result.seen.get(substream, 0) >= dominant.get(substream, 0):
                dominant[substream] = result.seen.get(substream, 0)
                merged.weights.update(substream, weight)
    return merged


def whsamp(
    items: Iterable[StreamItem],
    sample_size: int,
    input_weights: WeightMap | Mapping[str, float] | None = None,
    *,
    policy: AllocationPolicy = allocate_fair_fill,
    rng: random.Random | None = None,
    backend: str = BACKEND_PYTHON,
) -> WHSampResult:
    """Run Algorithm 1 over one interval's arrivals.

    Args:
        items: The data items received within the interval (possibly
            from many sub-streams, in arrival order).
        sample_size: The node's total sample budget for the interval,
            derived from the resource budget by the cost function.
        input_weights: ``W_in`` — the latest weights received from
            downstream nodes. Sub-streams with no recorded weight
            default to 1 (items fresh from a source). Per Figure 3,
            stale weights apply when items and weights arrive in
            different intervals, which this map encodes naturally.
        policy: The ``getSampleSize`` budget-split policy.
        rng: Random source (pass a seeded instance for reproducibility).
        backend: Sampling kernel selection (``"python"`` / ``"numpy"``
            / ``"auto"``, see :mod:`repro.core.fastpath`).

    Returns:
        A :class:`WHSampResult` with the sampled batches and ``W_out``.
    """
    if sample_size <= 0:
        raise SamplingError(f"sample size must be positive, got {sample_size}")
    weights_in = (
        input_weights.copy()
        if isinstance(input_weights, WeightMap)
        else WeightMap(input_weights)
    )
    # line 5: Update(items) — plane-aware stratification (a columnar
    # input batch is grouped without materializing objects).
    substreams = (
        items.group_by_substream()
        if isinstance(items, ColumnarBatch)
        else group_by_substream(items)
    )
    pairs = [
        WeightedBatch(substream, weights_in.get(substream), sub_items)
        for substream, sub_items in substreams.items()
    ]
    result = whsamp_batches(
        pairs, sample_size, policy=policy, rng=rng, backend=backend
    )
    # The caller's full weight map rolls forward: sub-streams absent
    # from this interval keep their stale weights (Figure 3's rule).
    merged = weights_in.copy()
    merged.merge(result.weights)
    result.weights = merged
    return result


class WeightedHierarchicalSampler:
    """Stateful per-node wrapper around :func:`whsamp`.

    A node keeps the weights it has *received* across intervals so the
    stale-weight rule of Figure 3 applies automatically: if items of
    sub-stream ``i`` arrive in an interval with no accompanying weight
    update, the last weight received for ``i`` (via
    :meth:`observe_weights`) is used as ``W_in_i``. The node's own
    *output* weights never feed back — node B in Figure 3 reuses the
    received ``w = 1.5`` in interval ``v+1``, not its previous output
    ``w = 3`` (feeding outputs back would compound the weight every
    interval and blow up the estimate exponentially).
    """

    def __init__(
        self,
        sample_size: int,
        *,
        policy: AllocationPolicy = allocate_fair_fill,
        rng: random.Random | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        if sample_size <= 0:
            raise SamplingError(f"sample size must be positive, got {sample_size}")
        self._sample_size = int(sample_size)
        self._policy = policy
        self._rng = rng if rng is not None else random.Random()
        self._backend = resolve_backend(backend)
        self._weights = WeightMap()

    @property
    def sample_size(self) -> int:
        """Current per-interval sample budget."""
        return self._sample_size

    @sample_size.setter
    def sample_size(self, value: int) -> None:
        if value <= 0:
            raise SamplingError(f"sample size must be positive, got {value}")
        self._sample_size = int(value)

    @property
    def backend(self) -> str:
        """The resolved sampling backend (``"python"`` or ``"numpy"``)."""
        return self._backend

    @property
    def weights(self) -> WeightMap:
        """The node's current (stale-weight) map, shared across intervals."""
        return self._weights

    def observe_weights(self, weights: Mapping[str, float] | WeightMap) -> None:
        """Fold in weight metadata received from a downstream node."""
        self._weights.merge(weights)

    def process_interval(self, items: Iterable[StreamItem]) -> WHSampResult:
        """Sample one interval's arrivals under the received weights."""
        return whsamp(
            items,
            self._sample_size,
            self._weights,
            policy=self._policy,
            rng=self._rng,
            backend=self._backend,
        )
