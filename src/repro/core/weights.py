"""Weight bookkeeping for hierarchical sampling.

A *weight map* associates each sub-stream with the multiplicative
significance of its currently-sampled items. Weights start at 1 at data
sources and are multiplied by ``c_i / N_i`` whenever a node's reservoir
for sub-stream ``i`` overflows (Equations 1 and 2 of the paper). The
paper's Figure 3 also specifies the *stale weight* rule: when items
arrive within an interval in which no weight was received for their
sub-stream, the most recent prior weight for that sub-stream applies.
:class:`WeightMap` implements both behaviours.
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["WeightMap", "local_weight", "output_weight"]

_DEFAULT_WEIGHT = 1.0


def local_weight(seen: int, reservoir_size: int) -> float:
    """Equation 1: the local weight ``w_i`` of a node's sample.

    ``w_i = c_i / N_i`` when the sub-stream overflowed the reservoir
    (``c_i > N_i``), otherwise 1 — the sample *is* the sub-stream.
    """
    if reservoir_size <= 0:
        raise ValueError(f"reservoir size must be positive, got {reservoir_size}")
    if seen > reservoir_size:
        return seen / reservoir_size
    return 1.0


def output_weight(input_weight: float, seen: int, reservoir_size: int) -> float:
    """Equation 2: the output weight ``W_out_i`` forwarded upstream.

    ``W_out = W_in * c_i / N_i`` on overflow, ``W_out = W_in`` otherwise.
    """
    if input_weight <= 0:
        raise ValueError(f"input weight must be positive, got {input_weight}")
    return input_weight * local_weight(seen, reservoir_size)


class WeightMap:
    """Per-sub-stream weights with the stale-weight fallback rule.

    The map remembers the last weight seen for every sub-stream. Looking
    up a sub-stream that has never carried a weight returns the default
    weight 1.0 — the paper's convention for items fresh from a source
    (``W_in_i = 1`` initially, §III-C case i).
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._weights: dict[str, float] = {}
        if initial:
            for substream, weight in initial.items():
                self.update(substream, weight)

    def get(self, substream: str) -> float:
        """Current weight for a sub-stream (1.0 if never set)."""
        return self._weights.get(substream, _DEFAULT_WEIGHT)

    def update(self, substream: str, weight: float) -> None:
        """Record the latest weight received for a sub-stream."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._weights[substream] = float(weight)

    def merge(self, other: Mapping[str, float] | "WeightMap") -> None:
        """Fold another weight map in, overwriting per sub-stream.

        Used when a node receives fresh metadata from a downstream node:
        newer weights supersede the stale ones kept locally.
        """
        items = other.items() if isinstance(other, WeightMap) else other.items()
        for substream, weight in items:
            self.update(substream, weight)

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate over (sub-stream, weight) pairs that were set."""
        return iter(dict(self._weights).items())

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all explicitly-set weights."""
        return dict(self._weights)

    def copy(self) -> "WeightMap":
        """Independent copy of this map."""
        return WeightMap(self._weights)

    def __contains__(self, substream: str) -> bool:
        return substream in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightMap({self._weights!r})"
