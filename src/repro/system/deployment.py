"""Deployment simulator — throughput / latency / bandwidth experiments.

Runs the assembled system on the discrete-event substrate: sources emit
per-window batches, batches cross simulated WAN links (propagation +
serialization + FIFO queueing) into per-node broker topics, sampling
nodes poll their topics on their own interval clocks, spend simulated
CPU proportional to the items they ingest, and forward sampled
sub-streams upward until the root processes them.

Three modes (§V-A Methodology):

* ``approxiot`` — windowed weighted hierarchical sampling at every
  sampling node; batches move through the broker substrate.
* ``srs`` — coin-flip sampling at the first edge layer, processed
  per-delivery (no windows: this is why SRS latency is flat in Fig. 9).
* ``native`` — everything forwarded unsampled; the datacenter node
  saturates, which is what Figs. 6 and 8 measure.

Since the engine refactor this module is a facade over
:mod:`repro.engine`: tree assembly and budget sizing come from
:func:`~repro.engine.pipeline.build_pipeline`, the per-interval WHSamp
step is :func:`~repro.engine.runner.sample_interval`, and approxiot
batches move through a :class:`~repro.engine.transport.Transport` —
``"simnet"`` (default: broker topics fed over WAN links) or
``"broker"`` (topics only; an idealized zero-latency network for
ablations). What remains here is deployment-specific: the emission
chunking, the interval-close clockwork, host CPU accounting and the
latency/bandwidth measurements.

``PipelineConfig.workers`` does not apply here: the deployment
simulator models distribution *explicitly* — every tree node is a
simulated host with its own service rate, so parallelism is a property
of the placement, not of the driver process. The knob selects
process-parallel shards for the algorithmic engine
(:mod:`repro.engine.sharding`, behind the statistical figures) and is
ignored by this facade.

This is the engine behind Figs. 6, 7, 8, 9 and 11(b).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.broker.broker import Broker
from repro.core.columns import ColumnarBatch, group_payload, payload_timestamps
from repro.core.items import StreamItem, WeightedBatch
from repro.core.srs import CoinFlipSampler
from repro.engine.pipeline import Pipeline, build_pipeline
from repro.engine.runner import sample_interval
from repro.engine.transport import BrokerTransport, SimnetBrokerTransport
from repro.errors import ConfigurationError, PipelineError
from repro.simnet.stats import LatencyRecorder
from repro.system.config import ExecutionMode, PipelineConfig
from repro.topology.placement import place_tree
from repro.topology.tree import TreeNode
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator

__all__ = ["DeploymentReport", "DeploymentSimulator"]


@dataclass(frozen=True, slots=True)
class DeploymentReport:
    """Measured outcome of one simulated deployment run.

    Attributes:
        mode: Which system ran.
        sampling_fraction: Configured end-to-end fraction.
        window_seconds: The interval/window length used.
        items_emitted: Ground-truth item count from all sources.
        items_at_root: Items the root physically processed (post-
            sampling ingest for approxiot/srs; everything for native).
        makespan_seconds: Virtual time until the root finished its last
            batch.
        throughput_items_per_second: ``items_emitted / makespan`` — the
            sustained rate, which collapses when the bottleneck
            saturates (the paper's Fig. 6 metric).
        mean_latency_seconds: Mean source-to-root-processing latency.
        boundary_bytes: Bytes crossing each layer boundary
            (source→L1, L1→L2, L2→root for the paper tree).
    """

    mode: str
    sampling_fraction: float
    window_seconds: float
    items_emitted: int
    items_at_root: int
    makespan_seconds: float
    throughput_items_per_second: float
    mean_latency_seconds: float
    boundary_bytes: list[int]

    @property
    def realized_fraction(self) -> float:
        """Fraction of emitted items that reached the root."""
        if self.items_emitted == 0:
            raise PipelineError("run emitted no items")
        return self.items_at_root / self.items_emitted


class _ApproxIoTNodeState:
    """Per-node runtime state for the windowed sampling mode.

    ``budget`` mirrors the pipeline's sizing (the sampling step reads
    it from the pipeline directly); it is kept here so white-box tests
    and debuggers can inspect a node's budget alongside its ingest
    counter.
    """

    def __init__(self, node: TreeNode, budget: int) -> None:
        self.node = node
        self.budget = budget
        self.items_ingested = 0


class DeploymentSimulator:
    """One simulated run of one mode at one sampling fraction."""

    def __init__(
        self,
        config: PipelineConfig,
        schedule: RateSchedule,
        generators: dict[str, ItemGenerator],
        *,
        n_windows: int = 10,
    ) -> None:
        if n_windows <= 0:
            raise PipelineError(f"n_windows must be >= 1, got {n_windows}")
        self._config = config
        self._n_windows = n_windows
        self._pipeline: Pipeline = build_pipeline(config, schedule, generators)
        self._tree = self._pipeline.tree
        self._rng = self._pipeline.rng
        self._network = place_tree(self._tree, config.placement)
        self._clock = self._network.clock
        self._transport = self._make_transport(config.transport)
        self._latency = LatencyRecorder()
        self._items_emitted = 0
        self._items_at_root = 0
        self._root_last_completion = 0.0
        self._states: dict[str, _ApproxIoTNodeState] = {}
        if config.mode == ExecutionMode.APPROXIOT:
            for node in self._tree.sampling_nodes:
                self._transport.register(node.name)
                self._states[node.name] = _ApproxIoTNodeState(
                    node, self._pipeline.budget(node.name)
                )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _make_transport(self, name: str) -> BrokerTransport:
        broker = Broker("deployment")
        if name in ("auto", "simnet"):
            return SimnetBrokerTransport(self._network, broker)
        if name == "broker":
            return BrokerTransport(broker, now=lambda: self._clock.now)
        raise ConfigurationError(
            f"the deployment simulator supports transports "
            f"('simnet', 'broker'), got {name!r}; the 'inprocess' transport "
            f"requires the statistical runner"
        )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    #: Sources ship their buffered items at this granularity (seconds),
    #: independent of the sampling window — real sources stream
    #: continuously, so the source-side delay must not scale with the
    #: window size (otherwise Fig. 9's flat SRS line would be an artifact).
    EMISSION_GRANULARITY = 0.25

    def run(self) -> DeploymentReport:
        """Execute the full run and return the measured report."""
        window = self._config.window_seconds
        duration = self._n_windows * window
        chunks = max(1, math.ceil(duration / self.EMISSION_GRANULARITY))
        chunk = duration / chunks
        for index in range(chunks):
            for source_node in self._tree.sources:
                self._clock.schedule_at(
                    (index + 1) * chunk,
                    self._emitter(source_node, index * chunk, chunk),
                )
        if self._config.mode == ExecutionMode.APPROXIOT:
            self._run_windowed()
        else:
            self._clock.run()
        makespan = (
            self._root_last_completion
            if self._root_last_completion > 0
            else self._clock.now
        )
        throughput = self._items_emitted / makespan if makespan > 0 else 0.0
        mean_latency = (
            self._latency.mean() if self._latency.count > 0 else 0.0
        )
        return DeploymentReport(
            mode=self._config.mode,
            sampling_fraction=self._config.sampling_fraction,
            window_seconds=window,
            items_emitted=self._items_emitted,
            items_at_root=self._items_at_root,
            makespan_seconds=makespan,
            throughput_items_per_second=throughput,
            mean_latency_seconds=mean_latency,
            boundary_bytes=self._boundary_bytes(),
        )

    def _run_windowed(self) -> None:
        """Drive ApproxIoT interval closes until every record is drained."""
        window = self._config.window_seconds
        rounds = self._n_windows + self._tree.depth + 2
        for k in range(1, rounds + 1):
            for node in self._tree.sampling_nodes:
                self._clock.schedule_at(
                    k * window, self._closer(node.name)
                )
        self._clock.run()
        # Saturated runs may still have unpolled records: keep closing.
        guard = 0
        while self._has_lag():
            guard += 1
            if guard > 10_000:
                raise PipelineError("drain loop did not converge")
            for node in self._tree.sampling_nodes:
                self._clock.schedule(window, self._closer(node.name))
            self._clock.run()

    def _has_lag(self) -> bool:
        return self._transport.has_pending()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emitter(
        self, source_node: TreeNode, chunk_start: float, chunk_seconds: float
    ):
        def emit() -> None:
            batch = self._pipeline.emit_source(
                source_node.name, chunk_start, chunk_seconds
            )
            if not len(batch):
                return
            self._items_emitted += len(batch)
            assert source_node.parent is not None
            self._send_items(source_node.name, source_node.parent, batch, 1.0)
        return emit

    def _send_items(
        self,
        src: str,
        dst: str,
        payload: "list[StreamItem] | ColumnarBatch",
        weight: float,
    ) -> None:
        """Ship records toward ``dst``, splitting per sub-stream.

        Plane-agnostic: the payload is stratified on its own plane and
        each stratum rides the transport in its native representation.
        """
        for substream, chunk in group_payload(payload).items():
            self._send_batch(src, dst, WeightedBatch(substream, weight, chunk))

    def _send_batch(self, src: str, dst: str, batch: WeightedBatch) -> None:
        """One upward hop: transport for approxiot, direct otherwise."""
        if self._config.mode == ExecutionMode.APPROXIOT:
            self._transport.send(src, dst, batch)
        else:
            self._network.send(
                src, dst, batch.total_bytes, batch, self._streaming_receiver(dst)
            )

    # ------------------------------------------------------------------
    # Reception and processing
    # ------------------------------------------------------------------
    def _streaming_receiver(
        self, node_name: str
    ) -> Callable[[WeightedBatch], None]:
        """SRS/native delivery: straight into the host's service queue."""
        def deliver_direct(batch: WeightedBatch) -> None:
            host = self._network.host(node_name)
            host.process(
                len(batch), batch,
                lambda b: self._finish_streaming(node_name, b),
            )
        return deliver_direct

    def _closer(self, node_name: str) -> Callable[[], None]:
        def close() -> None:
            state = self._states[node_name]
            batches = self._transport.collect(node_name)
            if not batches:
                return
            count = sum(len(batch) for batch in batches)
            state.items_ingested += count
            host = self._network.host(node_name)
            host.process(
                count, batches,
                lambda bs: self._finish_windowed(node_name, bs),
            )
        return close

    def _finish_windowed(
        self, node_name: str, batches: list[WeightedBatch]
    ) -> None:
        """Service completed for one ApproxIoT interval: sample, forward."""
        state = self._states[node_name]
        ingested = sum(len(batch) for batch in batches)
        if ingested == 0:
            return
        result = sample_interval(self._pipeline, node_name, batches)
        if state.node.name == "root":
            now = self._clock.now
            self._items_at_root += ingested
            self._root_last_completion = max(self._root_last_completion, now)
            for batch in result.batches:
                for emitted_at in payload_timestamps(batch.items):
                    self._latency.record(emitted_at, now)
        else:
            assert state.node.parent is not None
            for batch in result.batches:
                self._send_batch(state.node.name, state.node.parent, batch)

    def _finish_streaming(self, node_name: str, batch: WeightedBatch) -> None:
        """Service completed for one SRS/native delivery."""
        node = self._tree.node(node_name)
        now = self._clock.now
        if node.name == "root":
            self._items_at_root += len(batch)
            self._root_last_completion = max(self._root_last_completion, now)
            for emitted_at in payload_timestamps(batch.items):
                self._latency.record(emitted_at, now)
            return
        payload = batch.items
        weight = batch.weight
        if self._config.mode == ExecutionMode.SRS and node.layer == 1:
            fraction = self._config.sampling_fraction
            sampler = CoinFlipSampler(
                fraction, random.Random(self._rng.getrandbits(64))
            )
            if isinstance(payload, ColumnarBatch):
                # Same per-record decision entropy as filter(); the
                # mask is applied to the columns in one vector op.
                payload = payload.compress(sampler.decisions(len(payload)))
            else:
                payload = sampler.filter(payload)
            weight = batch.weight / fraction
        if not len(payload):
            return
        assert node.parent is not None
        self._send_batch(
            node.name, node.parent,
            WeightedBatch(batch.substream, weight, payload),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _boundary_bytes(self) -> list[int]:
        """Bytes that crossed each layer boundary, bottom-up."""
        totals: list[int] = []
        for layer in range(self._tree.depth - 1):
            total = 0
            for node in self._tree.layer(layer):
                assert node.parent is not None
                total += self._network.link(node.name, node.parent).bytes_sent
            totals.append(total)
        return totals

    @property
    def latency_recorder(self) -> LatencyRecorder:
        """Raw latency samples (for percentile reporting)."""
        return self._latency
