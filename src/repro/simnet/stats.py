"""Measurement helpers over the simulated network.

Collects the quantities the paper's evaluation reports: per-link and
total bytes (bandwidth saving, Fig. 7), host utilization, and latency
percentiles over recorded end-to-end samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simnet.network import Network

__all__ = ["LatencyRecorder", "bandwidth_saving", "network_snapshot"]


@dataclass(slots=True)
class LatencyRecorder:
    """Accumulates end-to-end latency samples (seconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, emitted_at: float, delivered_at: float) -> None:
        """Record one item's source-to-result latency."""
        if delivered_at < emitted_at:
            raise SimulationError(
                f"delivery at {delivered_at} precedes emission at {emitted_at}"
            )
        self.samples.append(delivered_at - emitted_at)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency; raises if empty."""
        if not self.samples:
            raise SimulationError("no latency samples recorded")
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank)."""
        if not self.samples:
            raise SimulationError("no latency samples recorded")
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def max(self) -> float:
        """Largest latency observed."""
        if not self.samples:
            raise SimulationError("no latency samples recorded")
        return max(self.samples)


def bandwidth_saving(sampled_bytes: int, native_bytes: int) -> float:
    """Bandwidth-saving rate (%) of a sampled run against native.

    The paper's Fig. 7 metric: the fraction of native traffic avoided.
    """
    if native_bytes <= 0:
        raise SimulationError(
            f"native byte count must be positive, got {native_bytes}"
        )
    if sampled_bytes < 0:
        raise SimulationError(
            f"sampled byte count must be >= 0, got {sampled_bytes}"
        )
    return max(0.0, 100.0 * (1.0 - sampled_bytes / native_bytes))


def network_snapshot(network: Network) -> dict[str, dict[str, float]]:
    """Summarise a network's counters per link and host."""
    snapshot: dict[str, dict[str, float]] = {"links": {}, "hosts": {}}
    for link in network.links:
        snapshot["links"][link.name] = {
            "bytes": float(link.bytes_sent),
            "messages": float(link.messages_sent),
            "queueing_delay": link.total_queueing_delay,
        }
    for name in network.hosts:
        host = network.host(name)
        snapshot["hosts"][name] = {
            "items": float(host.items_processed),
            "busy_time": host.busy_time,
        }
    return snapshot
