"""Determinism and parity contracts for the budget controllers.

The engine's per-window feedback seam must not cost any of the repo's
reproducibility guarantees:

* a fixed ``(seed, scenario, controller)`` triple is bit-reproducible;
* sharded execution replays the *identical* controller decisions —
  the parent broadcasts one merged-Theta observation per window, so
  ``workers=1`` sharding equals the unsharded run and inline shards
  equal real multi-process shards, per controller;
* the ``static`` controller is bit-for-bit the pre-controller engine
  (it is the config default, so today's runs are yesterday's runs);
* the adaptive controllers demonstrably *act*: their outputs and
  budget traces differ from static where the workload drifts.
"""

import pytest

from repro.engine.sharding import ShardedEngineRunner
from repro.scenarios import get_scenario
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

CONTROLLERS = ["static", "adaptive_fraction", "variance_aware"]

SCHEDULE = RateSchedule(
    "adaptive-test", {"A": 240.0, "B": 240.0, "C": 240.0, "D": 240.0}
)


def generators():
    return {g.name: g for g in paper_gaussian_substreams()}


def config_for(controller, workers=1, fraction=0.2, seed=13):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend="python",
        workers=workers,
        budget_controller=controller,
    )


def window_key(w):
    return (
        w.window_index, w.items_emitted, w.items_sampled, w.items_dropped,
        w.exact_sum, w.srs_sum, w.approx_sum.value, w.approx_sum.error,
        w.sample_budget,
    )


def run_unsharded(controller, scenario="drift", windows=12, **kwargs):
    with StatisticalRunner(
        config_for(controller, **kwargs), SCHEDULE, generators(),
        scenario=get_scenario(scenario),
    ) as runner:
        return runner.run(windows)


def run_sharded(controller, scenario="drift", windows=12, *, inline=False,
                **kwargs):
    scenario = get_scenario(scenario)
    if inline:
        return ShardedEngineRunner(
            config_for(controller, **kwargs), SCHEDULE, generators(),
            scenario=scenario, inline=True,
        ).run(windows)
    with ShardedEngineRunner(
        config_for(controller, **kwargs), SCHEDULE, generators(),
        scenario=scenario,
    ) as runner:
        return runner.run(windows)


class TestBitReproducibility:
    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_fixed_seed_controller_is_bit_reproducible(self, controller):
        runs = [run_unsharded(controller) for _ in range(2)]
        assert [window_key(w) for w in runs[0].windows] == [
            window_key(w) for w in runs[1].windows
        ]

    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_fixed_seed_sharded_is_bit_reproducible(self, controller):
        runs = [
            run_sharded(controller, workers=2, inline=True) for _ in range(2)
        ]
        assert [window_key(w) for w in runs[0].windows] == [
            window_key(w) for w in runs[1].windows
        ]

    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_different_seeds_differ(self, controller):
        a = run_unsharded(controller, seed=13)
        b = run_unsharded(controller, seed=14)
        assert [window_key(w) for w in a.windows] != [
            window_key(w) for w in b.windows
        ]


class TestShardingParity:
    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_one_shard_equals_unsharded(self, controller):
        """The broadcast observation replays the in-process decisions."""
        unsharded = run_unsharded(controller)
        sharded = run_sharded(controller, workers=1, inline=True)
        assert [window_key(w) for w in unsharded.windows] == [
            window_key(w) for w in sharded.windows
        ]

    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_inline_equals_multiprocess(self, controller):
        """Process boundaries change nothing: observations pickle whole."""
        inline = run_sharded(controller, workers=2, inline=True)
        processes = run_sharded(controller, workers=2)
        assert [window_key(w) for w in inline.windows] == [
            window_key(w) for w in processes.windows
        ]


class TestStaticIsTheLegacyEngine:
    def test_static_controller_is_the_default(self):
        assert PipelineConfig(sampling_fraction=0.2).budget_controller == (
            "static"
        )

    def test_static_matches_default_config_bitwise(self):
        """Configs predating the knob still run the exact same engine."""
        explicit = run_unsharded("static")
        with StatisticalRunner(
            PipelineConfig(
                sampling_fraction=0.2, window_seconds=1.0, seed=13,
                backend="python",
            ),
            SCHEDULE, generators(), scenario=get_scenario("drift"),
        ) as runner:
            implicit = runner.run(12)
        assert [window_key(w) for w in explicit.windows] == [
            window_key(w) for w in implicit.windows
        ]

    def test_static_budget_trace_is_constant(self):
        outcome = run_unsharded("static")
        budgets = {w.sample_budget for w in outcome.windows}
        assert len(budgets) == 1
        assert budgets.pop() > 0


class TestControllersAct:
    def test_variance_aware_changes_the_sample_path(self):
        """The allocation override is live, not a no-op."""
        static = run_unsharded("static")
        adaptive = run_unsharded("variance_aware")
        assert [window_key(w) for w in static.windows] != [
            window_key(w) for w in adaptive.windows
        ]

    def test_variance_aware_keeps_the_total_budget(self):
        """It moves slots between strata; it never buys more."""
        static = run_unsharded("static")
        adaptive = run_unsharded("variance_aware")
        assert [w.sample_budget for w in adaptive.windows] == [
            w.sample_budget for w in static.windows
        ]

    def test_adaptive_fraction_moves_the_budget_trace(self):
        """The fraction controller demonstrably re-derives budgets."""
        outcome = run_unsharded("adaptive_fraction")
        budgets = [w.sample_budget for w in outcome.windows]
        assert len(set(budgets)) > 1
        # At a 0.2 fraction the reported bound sits far below the 5%
        # target, so the controller only ever shrinks: the trace is
        # monotone non-increasing from the static starting budget.
        static = run_unsharded("static")
        assert budgets[0] == static.windows[0].sample_budget
        assert all(b >= a for b, a in zip(budgets, budgets[1:]))
        assert budgets[-1] < budgets[0]
