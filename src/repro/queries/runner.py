"""``runJob``: execute a query as a data-parallel job over Theta.

Algorithm 2 line 22 runs the query "as a data-parallel job". Our
in-process analogue partitions the Theta store by sub-stream, evaluates
partial aggregates per partition, and merges — the same split/merge
structure a MapReduce-style engine would execute, so tests can verify
the parallel decomposition agrees with the direct computation.
"""

from __future__ import annotations

import hashlib

from repro.core.error_bounds import ApproximateResult
from repro.core.estimator import ThetaStore
from repro.errors import EstimationError
from repro.queries.query import LinearQuery

__all__ = ["run_job", "partition_theta"]


def partition_theta(theta: ThetaStore, partitions: int) -> list[ThetaStore]:
    """Split a store into per-partition stores by sub-stream hash.

    Batches of one sub-stream always land in the same partition, so a
    partial estimator sees complete strata (required for the variance
    formulas to remain valid per partition).
    """
    if partitions <= 0:
        raise EstimationError(f"partitions must be >= 1, got {partitions}")
    shards = [ThetaStore() for _ in range(partitions)]
    for batch in theta.batches:
        digest = hashlib.md5(batch.substream.encode()).digest()
        index = int.from_bytes(digest[:8], "big") % partitions
        shards[index].add(batch)
    return shards


def run_job(
    query: LinearQuery, theta: ThetaStore, partitions: int = 4
) -> ApproximateResult:
    """Execute a query over Theta with split/merge parallel structure.

    SUM-like queries merge by summing partial values and variances
    (strata are independent). Queries that are not decomposable this
    way (MEAN) are executed directly over the full store — the merge
    step for ratio estimators needs the global counts anyway.
    """
    if query.name in ("sum", "per-substream-sum", "count"):
        shards = [s for s in partition_theta(theta, partitions) if len(s) > 0]
        if not shards:
            raise EstimationError("cannot run a job over an empty store")
        partials = [query.execute(shard) for shard in shards]
        value = sum(p.value for p in partials)
        variance = sum(p.variance for p in partials)
        sampled = sum(p.sampled_items for p in partials)
        # Recover the sigma multiplier from any partial (same confidence).
        reference = partials[0]
        multiplier = (
            reference.error / reference.variance ** 0.5
            if reference.variance > 0
            else 0.0
        )
        if multiplier == 0.0:
            # All partials had zero variance; try to find a nonzero one.
            for partial in partials:
                if partial.variance > 0:
                    multiplier = partial.error / partial.variance ** 0.5
                    break
        error = multiplier * variance ** 0.5
        return ApproximateResult(
            value=value, error=error, confidence=query.confidence,
            variance=variance, sampled_items=sampled,
        )
    return query.execute(theta)
