"""Unit tests for the discrete-event network simulator."""

import pytest

from repro.errors import ClockError, ConfigurationError, NetworkError, SimulationError
from repro.simnet.clock import Clock
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.netem import PAPER_WAN, NetemConfig
from repro.simnet.network import Network
from repro.simnet.stats import LatencyRecorder, bandwidth_saving, network_snapshot


class TestClock:
    def test_events_fire_in_time_order(self):
        clock = Clock()
        fired = []
        clock.schedule(3.0, lambda: fired.append("c"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(2.0, lambda: fired.append("b"))
        clock.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_fifo_tiebreak_at_same_time(self):
        clock = Clock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(1.0, lambda: fired.append(2))
        clock.run()
        assert fired == [1, 2]

    def test_cancelled_events_skipped(self):
        clock = Clock()
        fired = []
        event = clock.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        clock.run()
        assert fired == []

    def test_run_until_stops_and_anchors(self):
        clock = Clock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(5.0, lambda: fired.append("b"))
        clock.run_until(2.0)
        assert fired == ["a"]
        assert clock.now == 2.0

    def test_cascading_events(self):
        clock = Clock()
        fired = []

        def first():
            fired.append(clock.now)
            clock.schedule(2.0, lambda: fired.append(clock.now))

        clock.schedule(1.0, first)
        clock.run()
        assert fired == [1.0, 3.0]

    def test_scheduling_in_past_rejected(self):
        clock = Clock(start=10.0)
        with pytest.raises(ClockError):
            clock.schedule(-1.0, lambda: None)
        with pytest.raises(ClockError):
            clock.schedule_at(5.0, lambda: None)
        with pytest.raises(ClockError):
            clock.run_until(5.0)

    def test_max_events_cap(self):
        clock = Clock()
        def reschedule():
            clock.schedule(1.0, reschedule)
        clock.schedule(1.0, reschedule)
        clock.run(max_events=5)
        assert clock.events_fired == 5


class TestNetem:
    def test_from_rtt_halves(self):
        config = NetemConfig.from_rtt(20.0, 1e9)
        assert config.delay_ms == 10.0
        assert config.delay_seconds == 0.01

    def test_serialization_delay(self):
        config = NetemConfig(delay_ms=0.0, rate_bps=8_000.0)
        assert config.serialization_delay(1000) == pytest.approx(1.0)

    def test_paper_wan_settings(self):
        assert PAPER_WAN["source_to_l1"].delay_ms == 10.0
        assert PAPER_WAN["l1_to_l2"].delay_ms == 20.0
        assert PAPER_WAN["l2_to_root"].delay_ms == 40.0
        assert all(c.rate_bps == 1e9 for c in PAPER_WAN.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetemConfig(delay_ms=-1.0, rate_bps=1.0)
        with pytest.raises(ConfigurationError):
            NetemConfig(delay_ms=0.0, rate_bps=0.0)


class TestLink:
    def test_delivery_includes_all_delays(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(delay_ms=100.0, rate_bps=8_000.0))
        arrivals = []
        link.transfer(1000, "msg", lambda m: arrivals.append((clock.now, m)))
        clock.run()
        # serialization 1s + propagation 0.1s
        assert arrivals == [(1.1, "msg")]

    def test_fifo_queueing(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(delay_ms=0.0, rate_bps=8_000.0))
        arrivals = []
        link.transfer(1000, "a", lambda m: arrivals.append((clock.now, m)))
        link.transfer(1000, "b", lambda m: arrivals.append((clock.now, m)))
        clock.run()
        assert arrivals == [(1.0, "a"), (2.0, "b")]
        assert link.total_queueing_delay == pytest.approx(1.0)

    def test_byte_accounting(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(delay_ms=1.0, rate_bps=1e9))
        link.transfer(500, None, lambda m: None)
        link.transfer(250, None, lambda m: None)
        assert link.bytes_sent == 750
        assert link.messages_sent == 2
        link.reset_counters()
        assert link.bytes_sent == 0

    def test_utilization(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(delay_ms=0.0, rate_bps=8_000.0))
        link.transfer(500, None, lambda m: None)
        assert link.utilization(elapsed=1.0) == pytest.approx(0.5)

    def test_negative_size_rejected(self):
        clock = Clock()
        link = Link("l", clock, NetemConfig(delay_ms=0.0, rate_bps=1e9))
        with pytest.raises(NetworkError):
            link.transfer(-1, None, lambda m: None)


class TestHost:
    def test_service_time(self):
        clock = Clock()
        host = Host("h", clock, service_rate=100.0)
        done = []
        host.process(50, "job", lambda j: done.append(clock.now))
        clock.run()
        assert done == [0.5]

    def test_fifo_queueing_under_load(self):
        clock = Clock()
        host = Host("h", clock, service_rate=10.0)
        done = []
        host.process(10, "a", lambda j: done.append(clock.now))
        host.process(10, "b", lambda j: done.append(clock.now))
        assert host.queue_delay() == pytest.approx(2.0)  # before serving
        clock.run()
        assert done == [1.0, 2.0]
        assert host.queue_delay() == 0.0  # queue drained

    def test_counters_and_utilization(self):
        clock = Clock()
        host = Host("h", clock, service_rate=100.0)
        host.process(30, None, lambda j: None)
        clock.run()
        assert host.items_processed == 30
        assert host.utilization(elapsed=1.0) == pytest.approx(0.3)

    def test_validation(self):
        clock = Clock()
        with pytest.raises(ConfigurationError):
            Host("h", clock, service_rate=0.0)
        host = Host("h", clock, service_rate=1.0)
        with pytest.raises(ConfigurationError):
            host.process(-1, None, lambda j: None)


class TestNetwork:
    def _simple_network(self):
        network = Network()
        network.add_host("a", 1e6)
        network.add_host("b", 1e6)
        network.add_host("c", 1e6)
        network.add_link("a", "b", NetemConfig(delay_ms=10.0, rate_bps=1e9))
        network.add_link("b", "c", NetemConfig(delay_ms=10.0, rate_bps=1e9))
        return network

    def test_direct_send(self):
        network = self._simple_network()
        got = []
        network.send("a", "b", 100, "msg", lambda m: got.append(m))
        network.clock.run()
        assert got == ["msg"]

    def test_routing_shortest_path(self):
        network = self._simple_network()
        assert network.route("a", "c") == ["a", "b", "c"]

    def test_send_routed_multihop(self):
        network = self._simple_network()
        got = []
        network.send_routed("a", "c", 100, "msg", lambda m: got.append(network.clock.now))
        network.clock.run()
        assert len(got) == 1
        assert got[0] >= 0.02  # two propagation delays

    def test_no_route_raises(self):
        network = self._simple_network()
        network.add_host("island", 1.0)
        with pytest.raises(NetworkError):
            network.route("a", "island")

    def test_duplicate_host_and_link_rejected(self):
        network = self._simple_network()
        with pytest.raises(NetworkError):
            network.add_host("a", 1.0)
        with pytest.raises(NetworkError):
            network.add_link("a", "b", NetemConfig(1.0, 1e9))

    def test_total_bytes_and_reset(self):
        network = self._simple_network()
        network.send("a", "b", 123, None, lambda m: None)
        assert network.total_bytes_sent() == 123
        network.reset_counters()
        assert network.total_bytes_sent() == 0


class TestStats:
    def test_latency_recorder(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 1.0)
        recorder.record(0.0, 3.0)
        assert recorder.count == 2
        assert recorder.mean() == 2.0
        assert recorder.max() == 3.0
        assert recorder.percentile(50) == 1.0

    def test_latency_validation(self):
        recorder = LatencyRecorder()
        with pytest.raises(SimulationError):
            recorder.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            recorder.mean()

    def test_bandwidth_saving(self):
        assert bandwidth_saving(100, 1000) == pytest.approx(90.0)
        assert bandwidth_saving(1000, 1000) == pytest.approx(0.0)
        with pytest.raises(SimulationError):
            bandwidth_saving(10, 0)

    def test_network_snapshot(self):
        network = Network()
        network.add_host("a", 10.0)
        network.add_host("b", 10.0)
        network.add_link("a", "b", NetemConfig(1.0, 1e9))
        network.send("a", "b", 100, None, lambda m: None)
        snapshot = network_snapshot(network)
        assert snapshot["links"]["a->b"]["bytes"] == 100.0
        assert "a" in snapshot["hosts"]
