"""Declarative dynamic-workload scenarios (bursts, drift, churn, brownouts).

A :class:`~repro.scenarios.scenario.Scenario` is a seeded timeline of
typed events — rate bursts/ramps/waves, skew drift, node churn and
link degradation — that any engine configuration (strategy, backend,
transport, data plane, worker shards) can run.
:class:`~repro.scenarios.engine.ScenarioEngine` binds a scenario to a
concrete tree + rate schedule and compiles per-window state; the
built-in catalog behind ``repro scenarios run|list`` lives in
:mod:`repro.scenarios.catalog`; the run loop that applies the state
and reports per-window quality metrics is
:class:`repro.system.scenarios.ScenarioRunner`.
"""

from repro.scenarios.catalog import (
    BUILTIN_SCENARIOS,
    get_scenario,
    scenario_names,
)
from repro.scenarios.engine import LinkState, ScenarioEngine, WindowState
from repro.scenarios.events import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    RateRamp,
    RateWave,
    ScenarioEvent,
    SkewDrift,
)
from repro.scenarios.scenario import Scenario

__all__ = [
    "Scenario",
    "ScenarioEvent",
    "RateBurst",
    "RateRamp",
    "RateWave",
    "SkewDrift",
    "NodeChurn",
    "LinkDegrade",
    "ScenarioEngine",
    "WindowState",
    "LinkState",
    "BUILTIN_SCENARIOS",
    "get_scenario",
    "scenario_names",
]
