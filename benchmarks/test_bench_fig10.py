"""Benchmark: regenerate Fig. 10 (fluctuating rates and extreme skew)."""

from repro.experiments import fig10


def test_bench_fig10(benchmark, bench_scale, results_sink):
    """Asserts ApproxIoT's win in every setting and under extreme skew."""
    text = benchmark.pedantic(
        fig10.main, args=(bench_scale,), rounds=1, iterations=1
    )
    results_sink(text)

    for distribution in ("gaussian", "poisson"):
        for point in fig10.run_fig10_settings(distribution, bench_scale):
            assert point.approxiot_loss < point.srs_loss, point.setting

    skew = fig10.run_fig10_skew([0.1], bench_scale)[0]
    # Paper: up to 2600x at the 10% fraction; require >= two orders.
    assert skew.srs_loss > 100 * skew.approxiot_loss
    assert skew.approxiot_loss < 0.5
