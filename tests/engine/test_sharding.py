"""Sharded multi-process execution: determinism, parity, Eq. 8.

The sharded engine's contract (§III-E made physical):

* a fixed ``(seed, workers)`` pair fully determines the run — two
  sharded runs are bit-identical, and inline (sequential, in-process)
  execution matches real multi-process execution exactly;
* ``workers=1`` sharded execution *is* the in-process engine, window
  by window, bit for bit, on either data plane;
* the root merge respects Eq. 8: the merged Theta store recovers the
  union's emitted count exactly, and accuracy stays within the
  single-process engine's envelope for all three strategies.
"""

import pytest

from repro.core.estimator import ThetaStore
from repro.engine.pipeline import build_pipeline
from repro.engine.runner import EngineRunner
from repro.engine.sharding import ShardedEngineRunner, plan_shards
from repro.engine.transport import make_statistical_transport
from repro.errors import ConfigurationError, PipelineError
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "shard-test", {"A": 240.0, "B": 240.0, "C": 240.0, "D": 240.0}
)


def config_for(workers=1, plane="objects", seed=13, fraction=0.2):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend="python",
        data_plane=plane,
        workers=workers,
    )


def outcome_tuple(window):
    return (
        window.window_index,
        window.items_emitted,
        window.items_sampled,
        window.exact_sum,
        window.srs_sum,
        window.approx_sum.value,
        window.approx_sum.error,
    )


class TestShardPlanner:
    def test_single_worker_plan_is_the_run_itself(self):
        plans = plan_shards(config_for(workers=1), SCHEDULE)
        assert len(plans) == 1
        assert plans[0].seed == 13
        assert plans[0].schedule is SCHEDULE

    def test_plan_is_deterministic_in_seed_and_workers(self):
        first = plan_shards(config_for(workers=4), SCHEDULE)
        second = plan_shards(config_for(workers=4), SCHEDULE)
        assert [p.seed for p in first] == [p.seed for p in second]
        assert len({p.seed for p in first}) == 4  # distinct shard streams

    def test_shard_rates_sum_to_the_original_schedule(self):
        plans = plan_shards(config_for(workers=3), SCHEDULE)
        for substream, rate in SCHEDULE.rates.items():
            shares = sum(p.schedule.rates[substream] for p in plans)
            assert shares == pytest.approx(rate, rel=1e-12)

    def test_different_seeds_give_different_shard_seeds(self):
        seeds_a = [p.seed for p in plan_shards(config_for(workers=3), SCHEDULE)]
        seeds_b = [
            p.seed
            for p in plan_shards(config_for(workers=3, seed=14), SCHEDULE)
        ]
        assert seeds_a != seeds_b


@pytest.mark.parametrize("plane", ["objects", "columnar"])
class TestSingleWorkerParity:
    def test_workers1_matches_the_inprocess_engine_bitwise(self, plane):
        config = config_for(workers=1, plane=plane)
        direct = EngineRunner(
            build_pipeline(config, SCHEDULE, GENS),
            make_statistical_transport("auto"),
        ).run(4)
        with ShardedEngineRunner(config, SCHEDULE, GENS) as sharded:
            merged = sharded.run(4)
        assert [outcome_tuple(w) for w in direct.windows] == [
            outcome_tuple(w) for w in merged.windows
        ]


@pytest.mark.parametrize("plane", ["objects", "columnar"])
class TestDeterminism:
    def test_same_seed_and_workers_reproduce_bitwise(self, plane):
        config = config_for(workers=3, plane=plane)
        runs = []
        for _ in range(2):
            with ShardedEngineRunner(config, SCHEDULE, GENS) as runner:
                runs.append(runner.run(3))
        assert [outcome_tuple(w) for w in runs[0].windows] == [
            outcome_tuple(w) for w in runs[1].windows
        ]

    def test_inline_matches_multiprocess_execution(self, plane):
        config = config_for(workers=3, plane=plane)
        inline = ShardedEngineRunner(
            config, SCHEDULE, GENS, inline=True
        ).run(3)
        with ShardedEngineRunner(config, SCHEDULE, GENS) as runner:
            processes = runner.run(3)
        assert [outcome_tuple(w) for w in inline.windows] == [
            outcome_tuple(w) for w in processes.windows
        ]

    def test_stepwise_windows_continue_shard_state(self, plane):
        config = config_for(workers=2, plane=plane)
        with ShardedEngineRunner(config, SCHEDULE, GENS) as stepped:
            windows = [stepped.run_window() for _ in range(3)]
        with ShardedEngineRunner(config, SCHEDULE, GENS) as whole:
            batch = whole.run(3)
        assert [outcome_tuple(w) for w in windows if w is not None] == [
            outcome_tuple(w) for w in batch.windows
        ]


class TestMergeCorrectness:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_eq8_count_recovery_over_the_merged_theta(self, workers):
        """The merged store recovers the union's emitted count exactly."""
        config = config_for(workers=workers, fraction=0.1)
        emitted_total = 0
        merged = ThetaStore()
        for plan in plan_shards(config, SCHEDULE):
            pipeline = build_pipeline(
                config.with_seed(plan.seed).with_workers(1),
                plan.schedule,
                GENS,
            )
            runner = EngineRunner(pipeline, make_statistical_transport("auto"))
            outcome, theta = runner.run_window_with_theta()
            assert outcome is not None
            emitted_total += outcome.items_emitted
            merged.merge(theta)
        recovered = sum(
            est.estimated_count
            for est in merged.per_substream().values()
        )
        assert recovered == pytest.approx(emitted_total, rel=1e-9)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_all_three_strategies_stay_accurate(self, workers):
        """ApproxIoT, SRS and the exact path hold up at every width."""
        config = config_for(workers=workers)
        with ShardedEngineRunner(config, SCHEDULE, GENS) as runner:
            run = runner.run(4)
        # approxiot: stratified estimate within the usual envelope.
        assert run.mean_approxiot_loss < 10.0
        # srs: Horvitz-Thompson over the union of per-shard coin flips.
        assert run.mean_srs_loss < 20.0
        # native/exact: positive ground truth, sane sampled fraction.
        for window in run.windows:
            assert window.exact_sum > 0
            assert 0 < window.items_sampled < window.items_emitted

    def test_shard_widths_sample_differently_but_agree(self):
        estimates = {}
        for workers in (2, 3):
            with ShardedEngineRunner(
                config_for(workers=workers), SCHEDULE, GENS
            ) as runner:
                estimates[workers] = runner.run(3).windows[0].approx_sum.value
        # Different shard seeds -> different samples...
        assert estimates[2] != estimates[3]
        # ...but both unbiased estimates of the same workload.
        assert estimates[2] == pytest.approx(estimates[3], rel=0.2)


class TestFacadeAndValidation:
    def test_statistical_runner_dispatches_to_sharded_engine(self):
        with StatisticalRunner(
            config_for(workers=2), SCHEDULE, GENS
        ) as runner:
            assert isinstance(runner.engine, ShardedEngineRunner)
            assert runner.engine.workers == 2
            run = runner.run(3)
        assert run.mean_approxiot_loss < 10.0

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            config_for(workers=0)

    def test_simnet_transport_is_rejected(self):
        config = PipelineConfig(transport="simnet", workers=2)
        with pytest.raises(ConfigurationError):
            ShardedEngineRunner(config, SCHEDULE, GENS)

    def test_empty_run_raises(self):
        silent = RateSchedule("silent", {"A": 0.0, "B": 0.0})
        config = config_for(workers=2)
        with ShardedEngineRunner(config, silent, GENS) as runner:
            with pytest.raises(PipelineError):
                runner.run(2)

    def test_close_is_idempotent(self):
        runner = ShardedEngineRunner(config_for(workers=2), SCHEDULE, GENS)
        runner.run(1)
        runner.close()
        runner.close()


class TestShardFailure:
    def test_failed_round_reaps_shards_and_refuses_reuse(self):
        """With recovery disabled a dead shard surfaces as
        PipelineError and poisons the runner — no raw pipe errors, no
        silent restart from window 0."""
        runner = ShardedEngineRunner(
            config_for(workers=2).with_max_shard_restarts(0),
            SCHEDULE, GENS,
        )
        try:
            runner.run(1)
            for shard in runner._ensure_shards():
                shard._process.terminate()
                shard._process.join(timeout=5.0)
            with pytest.raises(PipelineError):
                runner.run(1)
            with pytest.raises(PipelineError, match="fresh runner"):
                runner.run(1)
        finally:
            runner.close()

    def test_default_supervision_recovers_terminated_shards(self):
        """Under the default restart budget the same external kill is
        recovered transparently — and bit-identically."""
        with ShardedEngineRunner(
            config_for(workers=2), SCHEDULE, GENS
        ) as healthy:
            expected = [outcome_tuple(w) for w in healthy.run(2).windows]
        runner = ShardedEngineRunner(config_for(workers=2), SCHEDULE, GENS)
        try:
            first = [outcome_tuple(w) for w in runner.run(1).windows]
            for shard in runner._ensure_shards():
                shard._process.terminate()
                shard._process.join(timeout=5.0)
            second = [outcome_tuple(w) for w in runner.run(1).windows]
            assert first + second == expected
            assert runner.ipc_stats.restarts == 2
        finally:
            runner.close()
