"""NYC taxi trace synthesizer (DEBS 2015 Grand Challenge schema).

The paper's first real-world case study replays the January 2013 NYC
taxi ride dataset and asks *"what is the total payment for taxi fares
in NYC at each time window?"*. The raw dataset is not redistributable
here, so this module synthesizes a trace with the same schema
(medallion, license, pickup/dropoff time, trip distance, fare, tip,
total amount) and empirically-shaped marginals:

* trip distance ~ lognormal (median ≈ 1.7 miles, heavy right tail);
* fare from NYC's metered formula ($2.50 flagfall + $2.50/mile);
* tip ~ 0–30 % of fare, zero-inflated (cash rides);
* medallions partitioned into boroughs that act as the sub-streams
  (each borough's sensor feed is one stratum with its own rate).

Only the marginal distribution of ``total_amount`` and the arrival
process matter to the query, so this preserves the experiment's
behaviour (accuracy-loss curve shape, Fig. 11(a)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.columns import ColumnBuffer, ColumnarBatch
from repro.core.items import StreamItem
from repro.errors import WorkloadError

__all__ = ["TaxiRide", "TaxiTraceSynthesizer", "BoroughSubstream", "BOROUGHS"]

#: Borough feeds act as sub-streams, with ride-volume shares loosely
#: matching Manhattan's dominance in the 2013 data.
BOROUGHS: dict[str, float] = {
    "manhattan": 0.72,
    "brooklyn": 0.12,
    "queens": 0.09,
    "bronx": 0.04,
    "staten_island": 0.03,
}


@dataclass(frozen=True, slots=True)
class TaxiRide:
    """One ride record in the DEBS 2015 shape."""

    medallion: str
    hack_license: str
    pickup_datetime: float
    dropoff_datetime: float
    trip_distance: float
    fare_amount: float
    tip_amount: float
    total_amount: float
    borough: str


class TaxiTraceSynthesizer:
    """Generates ride streams grouped by borough sub-streams."""

    FLAGFALL = 2.50
    PER_MILE = 2.50

    def __init__(self, seed: int = 2013, medallions: int = 1000) -> None:
        if medallions <= 0:
            raise WorkloadError(f"medallions must be >= 1, got {medallions}")
        self._rng = random.Random(seed)
        self._medallions = [f"MEDALLION-{i:05d}" for i in range(medallions)]
        boroughs = list(BOROUGHS)
        self._medallion_borough = {
            medallion: self._rng.choices(
                boroughs, weights=[BOROUGHS[b] for b in boroughs]
            )[0]
            for medallion in self._medallions
        }

    def ride(self, pickup_time: float) -> TaxiRide:
        """Synthesize one ride starting at ``pickup_time``."""
        rng = self._rng
        medallion = rng.choice(self._medallions)
        borough = self._medallion_borough[medallion]
        distance = min(50.0, rng.lognormvariate(0.55, 0.85))
        duration = 120.0 + distance * rng.uniform(120.0, 240.0)
        fare = self.FLAGFALL + self.PER_MILE * distance
        surcharges = rng.choice([0.0, 0.5, 1.0])
        tip = 0.0 if rng.random() < 0.45 else fare * rng.uniform(0.05, 0.30)
        total = round(fare + surcharges + tip, 2)
        return TaxiRide(
            medallion=medallion,
            hack_license=f"LIC-{rng.randrange(10_000):04d}",
            pickup_datetime=pickup_time,
            dropoff_datetime=pickup_time + duration,
            trip_distance=round(distance, 2),
            fare_amount=round(fare, 2),
            tip_amount=round(tip, 2),
            total_amount=total,
            borough=borough,
        )

    def generate_items(
        self, count: int, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """``count`` rides as stream items.

        The item value is the ride's ``total_amount`` (the query
        aggregates payments) and the sub-stream is the borough feed.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        items: list[StreamItem] = []
        for _ in range(count):
            ride = self.ride(emitted_at)
            items.append(
                StreamItem(
                    substream=f"taxi/{ride.borough}",
                    value=ride.total_amount,
                    emitted_at=emitted_at,
                    size_bytes=180,  # CSV row size of the DEBS schema
                )
            )
        return items

    @staticmethod
    def borough_generators() -> dict[str, "BoroughSubstream"]:
        """One per-borough generator per sub-stream, keyed by name.

        This is the map the statistical/deployment runners expect:
        sub-stream names match the ``taxi/<borough>`` tags items carry.
        """
        return {
            f"taxi/{borough}": BoroughSubstream(borough)
            for borough in BOROUGHS
        }

    def generate_rides(self, count: int, start_time: float = 0.0,
                       rate_per_second: float = 100.0) -> list[TaxiRide]:
        """``count`` full ride records with Poisson-ish spacing."""
        if rate_per_second <= 0:
            raise WorkloadError(
                f"rate must be positive, got {rate_per_second}"
            )
        rides = []
        t = start_time
        for _ in range(count):
            t += self._rng.expovariate(rate_per_second)
            rides.append(self.ride(t))
        return rides


class BoroughSubstream:
    """Item generator for one borough's ride feed.

    Implements the :class:`~repro.workloads.source.ItemGenerator`
    protocol: values are synthesized ride ``total_amount`` figures with
    the same marginals as :class:`TaxiTraceSynthesizer`, drawn from the
    caller-supplied RNG so runs stay reproducible.
    """

    FLAGFALL = TaxiTraceSynthesizer.FLAGFALL
    PER_MILE = TaxiTraceSynthesizer.PER_MILE

    def __init__(self, borough: str, item_bytes: int = 180) -> None:
        if borough not in BOROUGHS:
            raise WorkloadError(
                f"unknown borough {borough!r}; choose from {sorted(BOROUGHS)}"
            )
        self.borough = borough
        self.item_bytes = item_bytes
        self._staging = ColumnBuffer()

    def _total_amount(self, rng: random.Random) -> float:
        distance = min(50.0, rng.lognormvariate(0.55, 0.85))
        fare = self.FLAGFALL + self.PER_MILE * distance
        surcharges = rng.choice([0.0, 0.5, 1.0])
        tip = 0.0 if rng.random() < 0.45 else fare * rng.uniform(0.05, 0.30)
        return round(fare + surcharges + tip, 2)

    def _draw_values(self, count: int, rng: random.Random) -> Sequence[float]:
        """The one fare-draw loop both data planes share.

        Draws land in the reusable staging buffer; see
        :class:`~repro.core.columns.ColumnBuffer` for the reuse
        contract.
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        staged = self._staging.writable(count)
        for index in range(count):
            staged[index] = self._total_amount(rng)
        return staged

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Draw ``count`` ride payments for this borough."""
        return [
            StreamItem(
                substream=f"taxi/{self.borough}",
                value=value,
                emitted_at=emitted_at,
                size_bytes=self.item_bytes,
            )
            for value in self._draw_values(count, rng)
        ]

    def generate_columns(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> ColumnarBatch:
        """Draw ``count`` ride payments straight into a columnar batch.

        Same entropy as :meth:`generate` (they share the draw loop),
        so seeded runs emit identical fares on either data plane; the
        staging buffer is copied out so successive windows never alias.
        """
        self._draw_values(count, rng)
        return ColumnarBatch.single(
            f"taxi/{self.borough}",
            self._staging.column(count),
            emitted_at,
            self.item_bytes,
        )
