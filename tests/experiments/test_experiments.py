"""Integration tests: every figure experiment runs and has the right shape.

These use :meth:`ExperimentScale.quick` so the whole module stays fast;
the benchmarks run the same code at full scale.
"""

import pytest

from repro.errors import ReproError
from repro.experiments import fig5, fig6, fig7, fig8, fig9, fig10, fig11
from repro.experiments.base import ExperimentScale
from repro.experiments.figures import FIGURES, run_figure

QUICK = ExperimentScale.quick()
TWO_FRACTIONS = [0.1, 0.8]


class TestFig5:
    def test_approxiot_beats_srs_at_low_fraction(self):
        points = fig5.run_fig5("gaussian", TWO_FRACTIONS, QUICK)
        low = points[0]
        assert low.fraction == 0.1
        assert low.approxiot_loss < low.srs_loss
        assert low.srs_to_approxiot_ratio > 2.0

    def test_poisson_panel_runs(self):
        points = fig5.run_fig5("poisson", TWO_FRACTIONS, QUICK)
        assert all(p.distribution == "poisson" for p in points)
        assert all(p.approxiot_loss < p.srs_loss for p in points)


class TestFig6:
    def test_sampling_raises_throughput(self):
        points = fig6.run_fig6([0.1, 1.0], QUICK, n_windows=8)
        low, full = points
        assert low.speedup_over_native > 2.0
        # At 100% fraction all three systems are comparable.
        assert full.approxiot == pytest.approx(full.native, rel=0.5)

    def test_srs_and_approxiot_similar(self):
        point = fig6.run_fig6([0.2], QUICK, n_windows=8)[0]
        assert point.approxiot == pytest.approx(point.srs, rel=0.5)


class TestFig7:
    def test_saving_tracks_dropped_fraction(self):
        points = fig7.run_fig7([0.1, 0.8], QUICK, n_windows=5)
        low, high = points
        assert low.approxiot_saving == pytest.approx(90.0, abs=8.0)
        assert high.approxiot_saving == pytest.approx(20.0, abs=8.0)
        assert low.srs_saving == pytest.approx(90.0, abs=8.0)


class TestFig8:
    def test_native_latency_worst(self):
        points = fig8.run_fig8([0.1], QUICK, n_windows=8)
        point = points[0]
        assert point.native > point.approxiot
        assert point.speedup_over_native > 1.5


class TestFig9:
    def test_approxiot_grows_srs_flat(self):
        points = fig9.run_fig9([0.5, 3.0], QUICK, n_windows=6)
        small, large = points
        approxiot_growth = large.approxiot / small.approxiot
        srs_growth = large.srs / small.srs
        assert approxiot_growth > 2.0
        assert srs_growth < 1.6  # flat up to queueing noise
        assert approxiot_growth > 2 * srs_growth


class TestFig10:
    def test_settings_panels(self):
        points = fig10.run_fig10_settings("gaussian", QUICK)
        assert [p.setting for p in points] == [
            "Setting1", "Setting2", "Setting3"
        ]
        assert all(p.approxiot_loss < p.srs_loss for p in points)

    def test_skew_panel_srs_explodes(self):
        points = fig10.run_fig10_skew([0.1], QUICK)
        point = points[0]
        assert point.srs_loss > 100 * point.approxiot_loss


class TestFig11:
    def test_accuracy_panels(self):
        taxi = fig11.run_fig11_accuracy("taxi", TWO_FRACTIONS, QUICK)
        pollution = fig11.run_fig11_accuracy("pollution", TWO_FRACTIONS, QUICK)
        # Pollution values are stabler: lower loss at matched fractions.
        assert pollution[0].approxiot_loss < taxi[0].approxiot_loss

    def test_throughput_panel(self):
        points = fig11.run_fig11_throughput(
            "pollution", [0.1], QUICK, n_windows=6
        )
        assert points[0].throughput > points[0].native_throughput


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"
        }

    def test_unknown_figure(self):
        with pytest.raises(ReproError):
            run_figure("fig99")

    def test_run_figure_returns_table_text(self):
        text = run_figure("fig5", QUICK)
        assert "Fig. 5(a)" in text
        assert "ApproxIoT" in text
