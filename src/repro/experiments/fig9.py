"""Figure 9 — latency vs window size (10 % sampling fraction).

The paper's result: ApproxIoT's latency grows with the window size
because every sampling node must buffer a full interval before its
reservoir can close, while the SRS system samples per item and its
latency stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    base_config,
    gaussian_generators,
    saturating_placement,
    uniform_schedule,
)
from repro.metrics.report import Table
from repro.system.config import ExecutionMode
from repro.system.deployment import DeploymentSimulator

__all__ = ["Fig9Point", "run_fig9", "main"]

#: The paper's window sweep (seconds).
FIG9_WINDOWS: list[float] = [0.5, 1.0, 2.0, 3.0, 4.0]


@dataclass(frozen=True, slots=True)
class Fig9Point:
    """Latency of both sampled systems at one window size."""

    window_seconds: float
    approxiot: float
    srs: float


def run_fig9(
    windows: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    fraction: float = 0.1,
    n_windows: int = 10,
) -> list[Fig9Point]:
    """Reproduce Fig. 9 at a fixed 10 % sampling fraction."""
    window_sizes = windows if windows is not None else FIG9_WINDOWS
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = gaussian_generators()
    schedule = uniform_schedule(scale.rate_scale)
    placement = saturating_placement(schedule)

    def latency(mode: str, window_seconds: float) -> float:
        config = base_config(
            fraction, scale, window_seconds=window_seconds, mode=mode,
            placement=placement,
        )
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=n_windows
        )
        return simulator.run().mean_latency_seconds

    points: list[Fig9Point] = []
    for window_seconds in window_sizes:
        points.append(
            Fig9Point(
                window_seconds=window_seconds,
                approxiot=latency(ExecutionMode.APPROXIOT, window_seconds),
                srs=latency(ExecutionMode.SRS, window_seconds),
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print the Fig. 9 table; return the text."""
    table = Table(
        "Fig. 9: latency vs window size (10% sampling fraction)",
        ["window (s)", "ApproxIoT (s)", "SRS (s)"],
    )
    for point in run_fig9(scale=scale):
        table.add_row(
            f"{point.window_seconds:g}",
            f"{point.approxiot:.2f}",
            f"{point.srs:.2f}",
        )
    text = table.render()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
