"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [ids...] [--scale quick|bench] [--backend ...]
  [--transport ...] [--data-plane ...] [--workers N]`` — regenerate
  the paper's evaluation figures as text tables (all of them by
  default) on the selected sampling backend, inter-node transport,
  data plane and worker-shard count.
* ``list`` — list the available figures with descriptions.
* ``info`` — print the library version and subsystem inventory.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro import __version__
from repro.core.fastpath import BACKENDS
from repro.errors import ReproError
from repro.experiments.base import ExperimentScale
from repro.experiments.figures import FIGURES, run_figure
from repro.system.config import DATA_PLANES, TRANSPORTS

__all__ = ["build_parser", "main"]

_SCALES = {
    "quick": ExperimentScale.quick,
    "bench": ExperimentScale.bench,
}

_SUBSYSTEMS = [
    ("repro.core", "weighted hierarchical sampling, estimators, bounds"),
    ("repro.broker", "Kafka-model pub/sub substrate"),
    ("repro.streams", "Kafka-Streams-model processing engine"),
    ("repro.simnet", "discrete-event WAN/host simulator"),
    ("repro.topology", "logical tree + placement"),
    ("repro.engine", "unified execution engine (pipeline, transports)"),
    ("repro.system", "runner facades (statistical / deployment)"),
    ("repro.workloads", "synthetic + real-world trace generators"),
    ("repro.queries", "linear, grouped, top-k and quantile queries"),
    ("repro.experiments", "per-figure evaluation harness"),
]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ApproxIoT reproduction (ICDCS 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="regenerate evaluation figures as text tables"
    )
    figures.add_argument(
        "ids",
        nargs="*",
        metavar="FIG",
        help=f"figure ids to run (default: all of {sorted(FIGURES)})",
    )
    figures.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="experiment sizing (default: quick)",
    )
    figures.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="auto",
        help="sampling kernel (default: auto — numpy when installed)",
    )
    figures.add_argument(
        "--transport",
        choices=sorted(TRANSPORTS),
        default="auto",
        help="inter-node transport (default: auto — in-process for "
             "accuracy figures, simnet for deployment figures)",
    )
    figures.add_argument(
        "--data-plane",
        choices=sorted(DATA_PLANES),
        default="objects",
        help="record representation between layers (default: objects; "
             "columnar moves structure-of-arrays batches end-to-end "
             "with identical seeded samples)",
    )
    figures.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-parallel worker shards for the statistical "
             "(accuracy) figures; deployment figures model distribution "
             "via simnet and ignore it (default: 1)",
    )

    subparsers.add_parser("list", help="list available figures")
    subparsers.add_parser("info", help="print version and inventory")
    return parser


def _cmd_figures(
    ids: list[str], scale_name: str, backend: str, transport: str,
    data_plane: str, workers: int,
) -> int:
    try:
        scale = replace(
            _SCALES[scale_name](),
            backend=backend,
            transport=transport,
            data_plane=data_plane,
            workers=workers,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = ids or sorted(FIGURES)
    for figure_id in targets:
        try:
            run_figure(figure_id, scale)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
    return 0


def _cmd_list() -> int:
    width = max(len(figure_id) for figure_id in FIGURES)
    for figure_id in sorted(FIGURES):
        description, _entry = FIGURES[figure_id]
        print(f"{figure_id.ljust(width)}  {description}")
    return 0


def _cmd_info() -> int:
    print(f"repro {__version__} — ApproxIoT reproduction (ICDCS 2018)")
    print("subsystems:")
    for module, description in _SUBSYSTEMS:
        print(f"  {module.ljust(18)} {description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "figures":
            return _cmd_figures(
                args.ids, args.scale, args.backend, args.transport,
                args.data_plane, args.workers,
            )
        if args.command == "list":
            return _cmd_list()
        return _cmd_info()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
