"""The simulated network: hosts wired by links over a shared clock.

A thin graph layer (networkx ``DiGraph``) that owns hosts and links,
routes messages over single hops or shortest multi-hop paths, and
aggregates transfer statistics for the bandwidth experiments.
"""

from __future__ import annotations

from typing import Any, Callable

import networkx as nx

from repro.errors import NetworkError
from repro.simnet.clock import Clock
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.netem import NetemConfig

__all__ = ["Network"]


class Network:
    """Hosts + links + routing over one simulation clock."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._graph = nx.DiGraph()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, service_rate: float) -> Host:
        """Create a host; raises if the name is taken."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(name, self.clock, service_rate)
        self._hosts[name] = host
        self._graph.add_node(name)
        return host

    def add_link(self, src: str, dst: str, config: NetemConfig) -> Link:
        """Create a unidirectional link between two existing hosts."""
        self.host(src)
        self.host(dst)
        key = (src, dst)
        if key in self._links:
            raise NetworkError(f"link {src}->{dst} already exists")
        link = Link(f"{src}->{dst}", self.clock, config)
        self._links[key] = link
        self._graph.add_edge(src, dst, link=link)
        return link

    def add_duplex_link(
        self, a: str, b: str, config: NetemConfig
    ) -> tuple[Link, Link]:
        """Create links in both directions with the same shaping."""
        return self.add_link(a, b, config), self.add_link(b, a, config)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"no such host: {name!r}") from None

    def link(self, src: str, dst: str) -> Link:
        """Look up the link between two hosts."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src}->{dst}") from None

    @property
    def hosts(self) -> list[str]:
        """All host names, sorted."""
        return sorted(self._hosts)

    @property
    def links(self) -> list[Link]:
        """All links."""
        return list(self._links.values())

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> float:
        """Send a message over the direct link ``src -> dst``."""
        return self.link(src, dst).transfer(size_bytes, payload, deliver)

    def route(self, src: str, dst: str) -> list[str]:
        """Shortest path (hop count) from src to dst."""
        try:
            return nx.shortest_path(self._graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NetworkError(f"no route {src} -> {dst}") from exc

    def send_routed(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Send along the shortest path, hop by hop.

        Each hop's transfer is scheduled when the previous hop
        delivers, so queueing and serialization accumulate per hop as
        they would in a store-and-forward overlay.
        """
        path = self.route(src, dst)
        if len(path) == 1:
            self.clock.schedule(0.0, lambda: deliver(payload))
            return

        def forward(hop_index: int) -> Callable[[Any], None]:
            def _deliver(message: Any) -> None:
                if hop_index == len(path) - 1:
                    deliver(message)
                else:
                    self.link(path[hop_index], path[hop_index + 1]).transfer(
                        size_bytes, message, forward(hop_index + 1)
                    )
            return _deliver

        self.link(path[0], path[1]).transfer(size_bytes, payload, forward(1))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_bytes_sent(self) -> int:
        """Bytes transferred across every link since the last reset."""
        return sum(link.bytes_sent for link in self._links.values())

    def reset_counters(self) -> None:
        """Zero all link and host counters."""
        for link in self._links.values():
            link.reset_counters()
        for host in self._hosts.values():
            host.reset_counters()
