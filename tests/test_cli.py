"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.ids == []
        assert args.scale == "quick"

    def test_figures_with_ids_and_scale(self):
        args = build_parser().parse_args(
            ["figures", "fig5", "fig7", "--scale", "bench"]
        )
        assert args.ids == ["fig5", "fig7"]
        assert args.scale == "bench"

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--scale", "huge"])

    def test_backend_and_transport_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.backend == "auto"
        assert args.transport == "auto"

    def test_backend_and_transport_selection(self):
        args = build_parser().parse_args(
            ["figures", "fig5", "--backend", "python",
             "--transport", "broker"]
        )
        assert args.backend == "python"
        assert args.transport == "broker"

    def test_rejects_bad_backend_and_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--backend", "fortran"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figures", "--transport", "carrier-pigeon"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig11" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "repro.core" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig5", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5(a)" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_figures_on_broker_transport(self, capsys):
        assert main(
            ["figures", "fig5", "--scale", "quick",
             "--backend", "python", "--transport", "broker"]
        ) == 0
        assert "Fig. 5(a)" in capsys.readouterr().out

    def test_transport_engine_mismatch_reports_error(self, capsys):
        # fig6 runs the deployment simulator, which has no in-process
        # transport; the CLI surfaces the configuration error cleanly.
        assert main(
            ["figures", "fig6", "--transport", "inprocess"]
        ) == 2
        assert "transport" in capsys.readouterr().err


class TestWorkers:
    def test_workers_default_is_one(self):
        args = build_parser().parse_args(["figures"])
        assert args.workers == 1

    def test_workers_selection(self):
        args = build_parser().parse_args(["figures", "fig5", "--workers", "4"])
        assert args.workers == 4

    def test_invalid_workers_reports_error(self, capsys):
        assert main(["figures", "fig5", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_sharded_figure_run(self, capsys):
        """A statistical figure regenerates under sharded execution."""
        assert main(["figures", "fig5", "--workers", "2"]) == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestBudgetController:
    def test_default_is_static(self):
        for argv in (["figures"], ["scenarios", "run", "drift"]):
            assert build_parser().parse_args(argv).budget_controller == (
                "static"
            )

    def test_selection(self):
        args = build_parser().parse_args(
            ["scenarios", "run", "drift",
             "--budget-controller", "variance_aware"]
        )
        assert args.budget_controller == "variance_aware"

    def test_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figures", "--budget-controller", "oracle"]
            )

    def test_adaptive_scenario_run(self, capsys):
        assert main(
            ["scenarios", "run", "drift", "--scale", "quick",
             "--windows", "4", "--backend", "python",
             "--budget-controller", "variance_aware"]
        ) == 0
        out = capsys.readouterr().out
        assert "quality over time" in out
        assert "budget" in out

    def test_adaptive_fraction_figure_run(self, capsys):
        assert main(
            ["figures", "fig5", "--scale", "quick",
             "--budget-controller", "adaptive_fraction"]
        ) == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestShardTransport:
    def test_default_is_auto(self):
        for argv in (["figures"], ["scenarios", "run", "drift"]):
            assert build_parser().parse_args(argv).shard_transport == "auto"

    def test_selection(self):
        args = build_parser().parse_args(
            ["figures", "fig5", "--shard-transport", "shm"]
        )
        assert args.shard_transport == "shm"

    def test_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figures", "--shard-transport", "carrier-pigeon"]
            )

    def test_sharded_figure_run_on_each_transport(self, capsys):
        """fig5 regenerates identically on both shard IPC planes."""
        assert main(
            ["figures", "fig5", "--scale", "quick", "--workers", "2",
             "--shard-transport", "pipe"]
        ) == 0
        pipe_out = capsys.readouterr().out
        assert main(
            ["figures", "fig5", "--scale", "quick", "--workers", "2",
             "--shard-transport", "shm"]
        ) == 0
        shm_out = capsys.readouterr().out
        assert "Fig. 5" in shm_out
        assert shm_out == pipe_out

    def test_sharded_scenario_run_on_shm(self, capsys):
        assert main(
            ["scenarios", "run", "flash-crowd", "--scale", "quick",
             "--windows", "3", "--workers", "2",
             "--shard-transport", "shm"]
        ) == 0
        assert "quality over time" in capsys.readouterr().out


class TestShardSupervision:
    def test_defaults(self):
        for argv in (["figures"], ["scenarios", "run", "drift"]):
            args = build_parser().parse_args(argv)
            assert args.shard_timeout is None
            assert args.on_shard_loss == "abort"
            assert args.inject_fault is None

    def test_selection(self):
        args = build_parser().parse_args(
            ["figures", "fig5", "--shard-timeout", "2.5",
             "--on-shard-loss", "degrade",
             "--inject-fault", "crash@0:1", "--inject-fault", "hang@1:2"]
        )
        assert args.shard_timeout == 2.5
        assert args.on_shard_loss == "degrade"
        assert args.inject_fault == ["crash@0:1", "hang@1:2"]

    def test_rejects_unknown_loss_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figures", "--on-shard-loss", "panic"]
            )

    def test_figure_run_recovers_from_an_injected_crash(self, capsys):
        """The fault fires, the supervisor respawns, and the figure
        comes out exactly as without the fault."""
        assert main(
            ["figures", "fig5", "--scale", "quick", "--workers", "2",
             "--backend", "python"]
        ) == 0
        healthy_out = capsys.readouterr().out
        assert main(
            ["figures", "fig5", "--scale", "quick", "--workers", "2",
             "--backend", "python", "--inject-fault", "crash@0:1"]
        ) == 0
        faulted_out = capsys.readouterr().out
        assert "Fig. 5" in faulted_out
        assert faulted_out == healthy_out

    def test_scenario_run_shows_the_restart(self, capsys):
        assert main(
            ["scenarios", "run", "flash-crowd", "--scale", "quick",
             "--windows", "3", "--workers", "2", "--backend", "python",
             "--inject-fault", "raise@1:1"]
        ) == 0
        out = capsys.readouterr().out
        assert "restarts" in out and "lost" in out

    def test_malformed_fault_spec_reports_error(self, capsys):
        assert main(
            ["figures", "fig5", "--workers", "2",
             "--inject-fault", "crash-at-zero"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_fault_without_workers_reports_error(self, capsys):
        assert main(
            ["figures", "fig5", "--inject-fault", "crash@0:1"]
        ) == 2
        assert "workers" in capsys.readouterr().err

    def test_hang_fault_without_timeout_reports_error(self, capsys):
        assert main(
            ["figures", "fig5", "--workers", "2",
             "--inject-fault", "hang@0:0"]
        ) == 2
        assert "shard-timeout" in capsys.readouterr().err


class TestScenarios:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["scenarios", "run", "flash-crowd"])
        assert args.scenario_command == "run"
        assert args.name == "flash-crowd"
        assert args.windows is None
        assert args.fraction == 0.1
        assert args.scale == "quick"
        assert args.workers == 1

    def test_run_knobs(self):
        args = build_parser().parse_args(
            ["scenarios", "run", "churn", "--windows", "5",
             "--fraction", "0.4", "--backend", "python",
             "--transport", "broker", "--data-plane", "columnar",
             "--workers", "2"]
        )
        assert (args.windows, args.fraction) == (5, 0.4)
        assert (args.backend, args.transport) == ("python", "broker")
        assert (args.data_plane, args.workers) == ("columnar", 2)

    def test_list_prints_the_catalog(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "flash-crowd", "diurnal", "drift",
                     "churn", "brownout"):
            assert name in out

    def test_run_prints_quality_over_time(self, capsys):
        assert main(
            ["scenarios", "run", "flash-crowd", "--scale", "quick",
             "--windows", "4", "--backend", "python"]
        ) == 0
        out = capsys.readouterr().out
        assert "quality over time" in out
        assert "mean loss" in out

    def test_run_sharded_scenario(self, capsys):
        assert main(
            ["scenarios", "run", "churn", "--scale", "quick",
             "--windows", "4", "--workers", "2"]
        ) == 0
        assert "quality over time" in capsys.readouterr().out

    def test_unknown_scenario_reports_error(self, capsys):
        assert main(["scenarios", "run", "heat-death"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_simnet_transport_reports_error(self, capsys):
        assert main(
            ["scenarios", "run", "churn", "--transport", "simnet"]
        ) == 2
        assert "placement" in capsys.readouterr().err
