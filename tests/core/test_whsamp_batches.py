"""Tests for pair-wise sampling (``whsamp_batches``) — Algorithm 2's loop."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import ThetaStore, estimate_sum
from repro.core.items import StreamItem, WeightedBatch
from repro.core.whs import whsamp_batches
from repro.errors import SamplingError


def batch(substream, weight, values):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(v)) for v in values]
    )


class TestPairSemantics:
    def test_pairs_with_different_weights_stay_separate(self):
        """Same sub-stream, different W_in -> two output batches."""
        result = whsamp_batches(
            [batch("s", 1.0, range(10)), batch("s", 5.0, range(10))],
            100,
            rng=random.Random(1),
        )
        weights = sorted(b.weight for b in result.batches)
        assert weights == [1.0, 5.0]  # both underfull: pass-through

    def test_same_weight_pairs_merge(self):
        """Same sub-stream, same W_in -> one reservoir, one batch."""
        result = whsamp_batches(
            [batch("s", 2.0, range(10)), batch("s", 2.0, range(10, 20))],
            100,
            rng=random.Random(2),
        )
        assert len(result.batches) == 1
        assert result.seen == {"s": 20}

    def test_count_invariant_per_group(self):
        """Eq. 8 holds for each (sub-stream, weight) group separately."""
        pairs = [
            batch("s", 1.5, range(100)),
            batch("s", 3.0, range(50)),
            batch("t", 1.0, range(200)),
        ]
        result = whsamp_batches(pairs, 30, rng=random.Random(3))
        theta = ThetaStore()
        theta.extend(result.batches)
        per = theta.per_substream()
        assert per["s"].estimated_count == pytest.approx(1.5 * 100 + 3.0 * 50)
        assert per["t"].estimated_count == pytest.approx(200.0)

    def test_empty_input(self):
        result = whsamp_batches([], 10)
        assert result.batches == []

    def test_empty_batches_skipped(self):
        result = whsamp_batches(
            [batch("s", 1.0, []), batch("t", 1.0, [1.0])],
            10,
            rng=random.Random(4),
        )
        assert [b.substream for b in result.batches] == ["t"]

    def test_sample_size_validated(self):
        with pytest.raises(SamplingError):
            whsamp_batches([batch("s", 1.0, [1.0])], 0)

    def test_weight_map_uses_dominant_group(self):
        """The stale-weight map records the largest group's W_out."""
        result = whsamp_batches(
            [batch("s", 7.0, range(100)), batch("s", 2.0, range(3))],
            200,
            rng=random.Random(5),
        )
        # Both underfull -> pass-through weights; dominant group is the
        # 100-item one with weight 7.0.
        assert result.weights.get("s") == pytest.approx(7.0)

    def test_sibling_weights_dont_bias_estimate(self):
        """The regression the pair fix addressed: different child
        weights for one sub-stream must not corrupt the weighted sum."""
        rng = random.Random(6)
        values_a = [rng.gauss(100, 10) for _ in range(1000)]
        values_b = [rng.gauss(100, 10) for _ in range(1000)]
        # Child A sampled at 1/2 (weight 2), child B at 1/10 (weight 10).
        pairs = [
            batch("s", 2.0, values_a[:500]),
            batch("s", 10.0, values_b[:100]),
        ]
        estimates = []
        for trial in range(100):
            result = whsamp_batches(pairs, 120, rng=random.Random(trial))
            theta = ThetaStore()
            theta.extend(result.batches)
            estimates.append(estimate_sum(theta))
        mean = sum(estimates) / len(estimates)
        expected = 2.0 * sum(values_a[:500]) + 10.0 * sum(values_b[:100])
        assert mean == pytest.approx(expected, rel=0.03)


pair_strategy = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.floats(min_value=0.5, max_value=50.0),
    st.lists(st.floats(min_value=-100.0, max_value=100.0,
                       allow_nan=False), min_size=0, max_size=40),
)


@given(pairs=st.lists(pair_strategy, min_size=0, max_size=10),
       sample_size=st.integers(1, 100), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_property_group_count_invariant(pairs, sample_size, seed):
    """For every output batch: |sample| * W_out == |group| * W_in."""
    batches = [batch(name, weight, values) for name, weight, values in pairs]
    inputs: dict[tuple[str, float], int] = {}
    for name, weight, values in pairs:
        if values:
            inputs[(name, weight)] = inputs.get((name, weight), 0) + len(values)
    result = whsamp_batches(batches, sample_size, rng=random.Random(seed))
    recovered: dict[str, float] = {}
    for out in result.batches:
        recovered[out.substream] = (
            recovered.get(out.substream, 0.0) + out.estimated_count
        )
    expected: dict[str, float] = {}
    for (name, weight), count in inputs.items():
        expected[name] = expected.get(name, 0.0) + weight * count
    assert set(recovered) == set(expected)
    for name, value in expected.items():
        assert recovered[name] == pytest.approx(value)


@given(pairs=st.lists(pair_strategy, min_size=1, max_size=10),
       sample_size=st.integers(1, 100), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_property_budget_respected(pairs, sample_size, seed):
    """Total sampled items never exceed max(budget, group count)."""
    batches = [batch(name, weight, values) for name, weight, values in pairs]
    groups = {
        (name, weight)
        for name, weight, values in pairs
        if values
    }
    result = whsamp_batches(batches, sample_size, rng=random.Random(seed))
    limit = max(sample_size, len(groups))  # min 1 slot per group
    assert result.sampled_count <= limit
