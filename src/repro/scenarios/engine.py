"""Binding a scenario to a run: validation and per-window state.

A :class:`~repro.scenarios.scenario.Scenario` is pure data; this
module turns it into something an engine can act on.
:class:`ScenarioEngine` binds one scenario to a concrete logical tree
and base rate schedule, validates every event against them *loudly at
construction* (unknown nodes, unknown sub-streams, windows that take
every source offline — all fail before a single item is emitted), and
compiles the timeline into a :class:`WindowState` per window:

* effective per-sub-stream arrival rates (bursts/ramps/waves
  multiplied together, then skew drift re-shares the total);
* the set of offline nodes (churn), from which the engine derives
  WeightMap-correct re-parenting (children route to the nearest live
  ancestor);
* per-uplink degradation (:class:`LinkState`): seeded batch loss,
  straggler delay in windows, and the netem-view factors that
  :meth:`ScenarioEngine.netem_overrides` folds into
  :class:`~repro.simnet.netem.NetemConfig` objects for simnet-backed
  placements.

``state_for`` is a pure function of the window index, so every worker
shard recomputes the identical timeline from the scenario alone — no
cross-process coordination, which is what keeps scenario runs
deterministic and ``inline == multiprocess`` under churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.scenarios.events import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    RateRamp,
    RateWave,
    SkewDrift,
)
from repro.scenarios.scenario import Scenario
from repro.simnet.netem import NetemConfig
from repro.topology.placement import PlacementSpec
from repro.topology.tree import LogicalTree
from repro.workloads.rates import RateSchedule

__all__ = ["LinkState", "WindowState", "ScenarioEngine"]

_RATE_EVENTS = (RateBurst, RateRamp, RateWave)


@dataclass(frozen=True, slots=True)
class LinkState:
    """Composed degradation of one uplink at one window.

    Overlapping :class:`~repro.scenarios.events.LinkDegrade` events
    compose: losses combine as independent drops
    (``1 - (1-a)(1-b)``), straggler delays add, netem factors
    multiply.

    Attributes:
        loss: Per-batch drop probability in ``[0, 1)``.
        delay_windows: Whole windows of straggler delay.
        rtt_factor: RTT multiplier for the netem view.
        rate_factor: Capacity multiplier for the netem view.
    """

    loss: float = 0.0
    delay_windows: int = 0
    rtt_factor: float = 1.0
    rate_factor: float = 1.0

    def compose(self, event: LinkDegrade) -> "LinkState":
        """This state with one more degradation event folded in."""
        return LinkState(
            loss=1.0 - (1.0 - self.loss) * (1.0 - event.loss),
            delay_windows=self.delay_windows + event.delay_windows,
            rtt_factor=self.rtt_factor * event.rtt_factor,
            rate_factor=self.rate_factor * event.rate_factor,
        )


@dataclass(frozen=True, slots=True)
class WindowState:
    """Everything the engine must apply before running one window.

    Attributes:
        window: The window index this state describes.
        rates: Effective per-sub-stream arrival rates (items/second)
            after every rate event and drift.
        offline: Names of tree nodes offline this window.
        degraded: Per-node uplink degradation (absent = healthy).
    """

    window: int
    rates: Mapping[str, float]
    offline: frozenset[str]
    degraded: Mapping[str, LinkState]

    @property
    def is_steady(self) -> bool:
        """True when the window needs no engine intervention."""
        return not self.offline and not self.degraded

    def rate_multiplier(self, base: RateSchedule) -> float:
        """Aggregate offered-load multiplier vs a base schedule."""
        base_total = base.total_rate
        if base_total == 0:
            return 1.0
        return sum(self.rates.values()) / base_total


class ScenarioEngine:
    """One scenario bound to a concrete tree and rate schedule."""

    def __init__(
        self,
        scenario: Scenario,
        tree: LogicalTree,
        schedule: RateSchedule,
    ) -> None:
        self.scenario = scenario
        self._tree = tree
        self._schedule = schedule
        self._substreams = sorted(schedule.rates)
        self._non_root = frozenset(
            name for name in tree.nodes if name != "root"
        )
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        """Reject events that reference things this run does not have."""
        known = set(self._substreams)
        for event in self.scenario.events:
            streams = getattr(event, "substreams", None)
            if streams is not None:
                unknown = sorted(set(streams) - known)
                if unknown:
                    raise ConfigurationError(
                        f"scenario {self.scenario.name!r}: event "
                        f"{type(event).__name__} targets unknown "
                        f"sub-streams {unknown}; schedule has "
                        f"{self._substreams}"
                    )
            if isinstance(event, SkewDrift):
                unknown = sorted(set(event.to_shares) - known)
                if unknown:
                    raise ConfigurationError(
                        f"scenario {self.scenario.name!r}: drift targets "
                        f"unknown sub-streams {unknown}; schedule has "
                        f"{self._substreams}"
                    )
            nodes = getattr(event, "nodes", None)
            if nodes is not None:
                unknown = sorted(set(nodes) - set(self._tree.nodes))
                if unknown:
                    raise ConfigurationError(
                        f"scenario {self.scenario.name!r}: event "
                        f"{type(event).__name__} names unknown tree "
                        f"nodes {unknown}"
                    )
        source_names = {node.name for node in self._tree.sources}
        for window in range(self.scenario.windows):
            offline = self._offline_at(window)
            if source_names <= offline:
                raise ConfigurationError(
                    f"scenario {self.scenario.name!r}: window {window} "
                    f"takes every source offline; at least one source "
                    f"must stay live"
                )

    # ------------------------------------------------------------------
    # Per-window compilation
    # ------------------------------------------------------------------
    def _offline_at(self, window: int) -> frozenset[str]:
        offline: set[str] = set()
        for event in self.scenario.events_of(NodeChurn):
            offline.update(event.offline(window))
        return frozenset(offline)

    def _rates_at(self, window: int) -> dict[str, float]:
        """Rate events multiply, then drifts re-share the total."""
        rates = {
            s: float(self._schedule.rates[s]) for s in self._substreams
        }
        for event in self.scenario.events_of(*_RATE_EVENTS):
            factor = event.multiplier(window)
            if factor == 1.0:
                continue
            targets = event.substreams or self._substreams
            for substream in targets:
                rates[substream] *= factor
        total = sum(rates.values())
        if total > 0:
            shares = {s: rate / total for s, rate in rates.items()}
            for drift in self.scenario.events_of(SkewDrift):
                t = drift.progress(window)
                if t == 0.0:
                    continue
                target = drift.normalized_shares()
                shares = {
                    s: (1.0 - t) * share + t * target.get(s, 0.0)
                    for s, share in shares.items()
                }
            rates = {s: share * total for s, share in shares.items()}
        return rates

    def _degraded_at(self, window: int) -> dict[str, LinkState]:
        degraded: dict[str, LinkState] = {}
        for event in self.scenario.events_of(LinkDegrade):
            if not event.active(window):
                continue
            targets = (
                event.nodes if event.nodes is not None
                else sorted(self._non_root)
            )
            for node in targets:
                degraded[node] = degraded.get(node, LinkState()).compose(event)
        return degraded

    def state_for(self, window: int) -> WindowState:
        """Compile the scenario's state for one window (pure function).

        Windows past the scenario's declared length hold the timeline's
        tail: rate events have all ended (multiplier 1), drifts hold
        their final mix, churned nodes have rejoined and links have
        recovered — steady state in the post-scenario world.
        """
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        return WindowState(
            window=window,
            rates=self._rates_at(window),
            offline=self._offline_at(window),
            degraded=self._degraded_at(window),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def tree(self) -> LogicalTree:
        """The logical tree this scenario is bound to."""
        return self._tree

    @property
    def schedule(self) -> RateSchedule:
        """The base (pre-scenario) rate schedule."""
        return self._schedule

    def live_parent(self, node_name: str, offline: frozenset[str]) -> str:
        """The nearest live ancestor a node's output re-parents to.

        Walks up the tree past offline nodes; terminates at the root,
        which can never churn. This is the WeightMap-correct
        re-parenting rule: batches carry their own ``(W_in, items)``
        pairs, so attaching them to a higher ancestor changes where
        resampling happens but never the weight bookkeeping.
        """
        parent = self._tree.node(node_name).parent
        while parent is not None and parent in offline:
            parent = self._tree.node(parent).parent
        if parent is None:
            raise ConfigurationError(
                f"node {node_name!r} has no live ancestor (is it the root?)"
            )
        return parent

    def netem_overrides(
        self, window: int, spec: PlacementSpec | None = None
    ) -> dict[str, NetemConfig]:
        """Per-uplink netem shaping for one window's degradations.

        Maps every degraded node to the :class:`NetemConfig` its uplink
        should run under: the placement's base config for the node's
        layer boundary with the window's composed ``rtt_factor`` /
        ``rate_factor`` / ``loss`` applied. Healthy uplinks are absent
        from the result. This is the bridge into
        :mod:`repro.simnet.netem`-backed placements: rebuild the
        affected links from the returned configs before running the
        window on a simulated WAN.
        """
        spec = spec if spec is not None else PlacementSpec.paper_defaults()
        if len(spec.uplink_configs) != self._tree.depth - 1:
            raise ConfigurationError(
                f"placement has {len(spec.uplink_configs)} uplink configs "
                f"but the tree has {self._tree.depth - 1} layer boundaries"
            )
        overrides: dict[str, NetemConfig] = {}
        for node_name, link in self.state_for(window).degraded.items():
            layer = self._tree.node(node_name).layer
            base = spec.uplink_configs[layer]
            overrides[node_name] = NetemConfig(
                delay_ms=base.delay_ms * link.rtt_factor,
                rate_bps=base.rate_bps * link.rate_factor,
                loss=min(
                    0.999999,
                    1.0 - (1.0 - base.loss) * (1.0 - link.loss),
                ),
            )
        return overrides
