"""Unit tests for report formatting."""

import pytest

from repro.errors import ReproError
from repro.metrics.report import Table, format_percent, format_rate


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.1234) == "0.1234%"
        assert format_percent(12.5, digits=1) == "12.5%"

    def test_rate_kilo(self):
        assert format_rate(122_199.0) == "122.2k items/s"

    def test_rate_small(self):
        assert format_rate(412.0) == "412 items/s"


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["col", "value"])
        table.add_row("a", 1)
        table.add_row("long-name", 12345)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "col" in lines[2]
        # All data lines equally padded up to the trailing cell.
        assert "long-name" in lines[-1]
        assert table.row_count == 2

    def test_cell_count_enforced(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ReproError):
            table.add_row("only-one")

    def test_needs_columns(self):
        with pytest.raises(ReproError):
            Table("t", [])

    def test_str_is_render(self):
        table = Table("t", ["a"])
        table.add_row("x")
        assert str(table) == table.render()
