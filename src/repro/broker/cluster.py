"""Multi-broker cluster with partition leadership and failover.

The paper runs its inter-layer topics on a 10-node Kafka cluster. For
fault-injection tests we model the cluster layer explicitly: each
topic-partition has a leader broker and a replica set; producing and
fetching route to the leader; killing a broker promotes the next
in-sync replica. Data is logically shared (this is a single-process
simulation), so failover is about *availability routing*, which is the
property the tests exercise.
"""

from __future__ import annotations

from repro.broker.broker import Broker
from repro.errors import BrokerError, ConfigurationError, UnknownTopicError

__all__ = ["BrokerCluster"]


class BrokerCluster:
    """A set of brokers sharing topic metadata with leader routing."""

    def __init__(self, broker_count: int = 3, replication_factor: int = 2) -> None:
        if broker_count <= 0:
            raise ConfigurationError(
                f"cluster needs >= 1 broker, got {broker_count}"
            )
        if not 1 <= replication_factor <= broker_count:
            raise ConfigurationError(
                "replication factor must be in [1, broker_count], got "
                f"{replication_factor} with {broker_count} brokers"
            )
        self._brokers = {
            f"broker-{i}": Broker(f"broker-{i}") for i in range(broker_count)
        }
        self._alive = {broker_id: True for broker_id in self._brokers}
        self._replication = replication_factor
        # (topic, partition) -> ordered replica list; index 0 is leader.
        self._replicas: dict[tuple[str, int], list[str]] = {}
        # The shared logical data plane.
        self._data = Broker("cluster-data")

    @property
    def broker_ids(self) -> list[str]:
        """All broker ids, alive or not."""
        return sorted(self._brokers)

    @property
    def alive_brokers(self) -> list[str]:
        """Ids of brokers currently up."""
        return sorted(b for b, up in self._alive.items() if up)

    def create_topic(self, name: str, partitions: int = 1) -> None:
        """Create a topic and spread partition leadership round-robin."""
        self._data.create_topic(name, partitions)
        brokers = self.alive_brokers
        if not brokers:
            raise BrokerError("no alive brokers to host the topic")
        for partition in range(partitions):
            replicas = [
                brokers[(partition + offset) % len(brokers)]
                for offset in range(min(self._replication, len(brokers)))
            ]
            self._replicas[(name, partition)] = replicas

    def leader(self, topic: str, partition: int) -> str:
        """The broker currently leading a partition."""
        try:
            replicas = self._replicas[(topic, partition)]
        except KeyError:
            raise UnknownTopicError(
                f"no such topic-partition: {topic}-{partition}"
            ) from None
        for broker_id in replicas:
            if self._alive[broker_id]:
                return broker_id
        raise BrokerError(
            f"no alive replica for {topic}-{partition} (replicas: {replicas})"
        )

    def replicas(self, topic: str, partition: int) -> list[str]:
        """The replica set of a partition (leader first)."""
        try:
            return list(self._replicas[(topic, partition)])
        except KeyError:
            raise UnknownTopicError(
                f"no such topic-partition: {topic}-{partition}"
            ) from None

    def kill_broker(self, broker_id: str) -> None:
        """Take a broker down; its partitions fail over to replicas."""
        if broker_id not in self._brokers:
            raise BrokerError(f"no such broker: {broker_id!r}")
        self._alive[broker_id] = False

    def restart_broker(self, broker_id: str) -> None:
        """Bring a broker back up (it rejoins as a follower)."""
        if broker_id not in self._brokers:
            raise BrokerError(f"no such broker: {broker_id!r}")
        self._alive[broker_id] = True

    @property
    def data_plane(self) -> Broker:
        """The shared logical broker carrying all topic data.

        Produce/fetch must go through :meth:`route` so leadership is
        enforced; the data plane is exposed for consumers/producers
        that were already routed.
        """
        return self._data

    def route(self, topic: str, partition: int) -> Broker:
        """Resolve the leader and return the data plane if it is alive.

        Raises :class:`BrokerError` when no replica of the partition is
        alive — the cluster is unavailable for that partition, which is
        what a real producer would surface as a timeout.
        """
        self.leader(topic, partition)  # raises if nothing alive
        return self._data
