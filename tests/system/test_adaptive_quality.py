"""Statistical acceptance suite for the adaptive budget controllers.

Every gate below is a deterministic threshold on a seeded quick-scale
run (seed 42, the experiment-standard sizing) — no flaky percentile
asserts. The contracts:

* **Catalog gate** — at equal total budget, ``variance_aware`` beats
  the static split at *every* probed fraction on at least 3 of the
  built-in scenarios, on either sampling backend (the PR's headline
  claim; ``benchmarks/test_bench_adaptive.py`` publishes the same
  matrix at bench scale).
* **Worst-static gate** — on the stress scenarios (flash-crowd, skew
  drift, brownout) the adaptive mean loss never exceeds the *worst*
  static fraction's mean loss.
* **Bound coverage** — adaptive mean loss stays within the mean
  reported §III-D bound on the scenarios whose data reaches the
  estimator. ``brownout`` is excluded *by doctrine*: it destroys
  batches on the wire, and no estimator can bound data it never saw
  (same exclusion as ``VISIBLE_DATA_SCENARIOS`` in
  ``test_scenario_runner.py``) — the worst-static gate still applies
  there, because reallocation needs no visibility to help.
* **Sharded gates** — the same quality survives worker sharding,
  where controller decisions replay from broadcast observations.
* **Fraction-controller behaviour** — ``adaptive_fraction`` visibly
  steers the budget trace toward its error target.
"""

import functools
from dataclasses import replace

import pytest

from repro.core.fastpath import numpy_available
from repro.experiments.base import (
    ExperimentScale,
    base_config,
    gaussian_generators,
    uniform_schedule,
)
from repro.scenarios import get_scenario, scenario_names
from repro.system.scenarios import ScenarioRunner

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

#: Equal-total-budget comparison points (the paper's low fractions,
#: where allocation quality matters most).
FRACTIONS = (0.05, 0.1, 0.2)

#: The fraction the headline per-scenario gates run at.
OPERATING_FRACTION = 0.1

#: Stress scenarios the per-scenario gates probe.
STRESS_SCENARIOS = ["flash-crowd", "drift", "brownout"]

#: Stress scenarios whose emitted data all reaches the estimator
#: (brownout destroys batches mid-flight; see the module docstring).
VISIBLE_STRESS_SCENARIOS = ["flash-crowd", "drift"]


@functools.lru_cache(maxsize=None)
def quality(scenario, controller, fraction, backend, workers=1):
    """(mean loss %, mean bound %) of one seeded quick-scale run."""
    scale = replace(
        ExperimentScale.quick(), backend=backend,
        budget_controller=controller, workers=workers,
    )
    config = base_config(fraction, scale)
    with ScenarioRunner(
        config, uniform_schedule(scale.rate_scale), gaussian_generators(),
        get_scenario(scenario),
    ) as runner:
        outcome = runner.run()
    return outcome.mean_approxiot_loss, outcome.mean_bound_pct


def budget_trace(scenario, controller, fraction, backend="python"):
    """The per-window root-budget trace of one seeded run."""
    scale = replace(
        ExperimentScale.quick(), backend=backend,
        budget_controller=controller,
    )
    config = base_config(fraction, scale)
    with ScenarioRunner(
        config, uniform_schedule(scale.rate_scale), gaussian_generators(),
        get_scenario(scenario),
    ) as runner:
        outcome = runner.run()
    return [w.budget for w in outcome.windows]


class TestCatalogGate:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adaptive_beats_every_static_fraction_on_three_scenarios(
        self, backend
    ):
        """The headline claim, at quick scale, per backend."""
        winners = []
        for name in scenario_names():
            if all(
                quality(name, "variance_aware", f, backend)[0]
                < quality(name, "static", f, backend)[0]
                for f in FRACTIONS
            ):
                winners.append(name)
        assert len(winners) >= 3, (
            f"variance_aware swept every fraction only on {winners} "
            f"({backend} backend); the gate needs >= 3 scenarios"
        )


class TestStressScenarios:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scenario", STRESS_SCENARIOS)
    def test_adaptive_never_worse_than_worst_static(self, scenario, backend):
        """Reallocating a fixed budget must not lose to misallocating it."""
        adaptive, _ = quality(
            scenario, "variance_aware", OPERATING_FRACTION, backend
        )
        worst_static = max(
            quality(scenario, "static", f, backend)[0] for f in FRACTIONS
        )
        assert adaptive <= worst_static, (
            f"{scenario} ({backend}): adaptive loss {adaptive:.3f}% exceeds "
            f"the worst static fraction's {worst_static:.3f}%"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scenario", VISIBLE_STRESS_SCENARIOS)
    def test_adaptive_loss_within_reported_bound(self, scenario, backend):
        """Adaptation must not break the Eq. 9 result-plus-error contract."""
        loss, bound = quality(
            scenario, "variance_aware", OPERATING_FRACTION, backend
        )
        assert loss <= bound, (
            f"{scenario} ({backend}): adaptive mean loss {loss:.3f}% "
            f"exceeds the mean reported bound {bound:.3f}%"
        )


class TestShardedQuality:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_adaptive_within_bound_and_worst_static(self, backend):
        """Broadcast-replayed decisions keep the quality guarantees."""
        for scenario in VISIBLE_STRESS_SCENARIOS:
            loss, bound = quality(
                scenario, "variance_aware", OPERATING_FRACTION, backend,
                workers=2,
            )
            worst_static = max(
                quality(scenario, "static", f, backend)[0] for f in FRACTIONS
            )
            assert loss <= bound
            assert loss <= worst_static

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_adaptive_beats_sharded_static_under_drift(self, backend):
        """Same seed, same shards, same budget — the tilt alone wins."""
        adaptive, _ = quality(
            "drift", "variance_aware", OPERATING_FRACTION, backend, workers=2
        )
        static, _ = quality(
            "drift", "static", OPERATING_FRACTION, backend, workers=2
        )
        assert adaptive < static


class TestFractionController:
    def test_budget_trace_shrinks_toward_target(self):
        """At a rich fraction the bound sits far below the 5% target,
        so the controller sheds budget window over window."""
        adaptive = budget_trace("drift", "adaptive_fraction", 0.2)
        static = budget_trace("drift", "static", 0.2)
        assert adaptive[0] == static[0]  # starts at the assembly budget
        assert all(b >= a for b, a in zip(adaptive, adaptive[1:]))
        assert adaptive[-1] < adaptive[0]

    def test_shed_budget_still_within_reported_bound(self):
        """Shrinking to the target must not break bound coverage."""
        scale = replace(
            ExperimentScale.quick(), backend="python",
            budget_controller="adaptive_fraction",
        )
        config = base_config(0.2, scale)
        with ScenarioRunner(
            config, uniform_schedule(scale.rate_scale),
            gaussian_generators(), get_scenario("drift"),
        ) as runner:
            outcome = runner.run()
        assert outcome.mean_approxiot_loss <= outcome.mean_bound_pct
