"""Approximate queries executed at the root node.

Linear queries (SUM/MEAN/COUNT and grouped variants) are what the
paper supports; top-k and quantiles implement the "more complex
queries" it lists as future work (§VIII).
"""

from repro.queries.query import (
    CountQuery,
    LinearQuery,
    MeanQuery,
    PerSubstreamSumQuery,
    SumQuery,
)
from repro.queries.runner import partition_theta, run_job
from repro.queries.topk import (
    QuantileEstimate,
    QuantileQuery,
    RankedSubstream,
    TopKQuery,
)

__all__ = [
    "CountQuery",
    "LinearQuery",
    "MeanQuery",
    "PerSubstreamSumQuery",
    "QuantileEstimate",
    "QuantileQuery",
    "RankedSubstream",
    "SumQuery",
    "TopKQuery",
    "partition_theta",
    "run_job",
]
