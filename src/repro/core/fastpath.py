"""NumPy-accelerated sampling fast path (the backend seam).

Every figure benchmark is dominated by the WHSamp hot path (Algorithm 1
of the paper): a pure-Python ``ReservoirSampler.offer()`` loop draws one
random number per arriving item. This module provides a vectorized
backend that draws the survivor index set for a whole batch at once:

* :func:`batch_sample_indices` — the one-shot kernel. A reservoir
  sample of a *materialised* batch is exactly a uniform random subset,
  so it reduces to one ``Generator.choice`` call.
* :class:`NumpyReservoirSampler` — a drop-in, *streaming*
  ``ReservoirSampler`` whose :meth:`extend` replays Algorithm R with
  array ops: one vectorized draw decides the replacement slot of every
  item in the batch, and only the few accepted items (``O(k log n/k)``
  of them) touch Python objects.

Both kernels are distribution-identical to the pure-Python sampler —
they produce a uniform random subset of size ``min(capacity, n)``, so
the count invariant of Eq. 8 (``W_out * c~ == W_in * c``) is preserved
bit-for-bit by the same :func:`~repro.core.weights.output_weight`
arithmetic.

The seam is the ``backend`` keyword threaded through
:func:`~repro.core.whs.whsamp`, the node drivers, the streams runtime
and :class:`~repro.system.config.PipelineConfig`:

* ``"python"`` — the dependency-free default of the low-level
  primitives; bit-for-bit identical to the seed implementation.
* ``"numpy"`` — the vectorized kernels; raises
  :class:`~repro.errors.SamplingError` if numpy is not importable.
* ``"auto"`` — resolves to ``"numpy"`` when numpy is installed (e.g.
  via the ``[fast]`` extra), else ``"python"``. This is the default of
  the pipeline-level objects, so installing numpy speeds up every
  runner without code changes.

Randomness stays reproducible: numpy ``Generator`` instances are seeded
from the caller's ``random.Random`` (see :func:`make_generator`), so a
seeded run is deterministic per backend. The two backends consume their
entropy differently, so the *identity* of sampled items differs between
backends for the same seed while every distribution is identical.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.core.reservoir import ReservoirSampler
from repro.errors import SamplingError

try:  # pragma: no cover - trivially environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_NUMPY",
    "BACKEND_PYTHON",
    "BACKENDS",
    "NumpyReservoirSampler",
    "batch_sample_indices",
    "make_generator",
    "make_reservoir_sampler",
    "numpy_available",
    "reservoir_sample_indices",
    "resolve_backend",
    "sample_materialized",
]

T = TypeVar("T")

BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"
BACKEND_AUTO = "auto"

#: Accepted values for every ``backend=`` keyword in the library.
BACKENDS = (BACKEND_AUTO, BACKEND_PYTHON, BACKEND_NUMPY)


def numpy_available() -> bool:
    """Whether the vectorized backend can be used in this environment."""
    return _np is not None


def resolve_backend(backend: str = BACKEND_AUTO) -> str:
    """Resolve a backend name to ``"python"`` or ``"numpy"``.

    ``"auto"`` picks numpy when it is importable and falls back to the
    pure-Python implementation otherwise. Requesting ``"numpy"``
    explicitly without numpy installed is an error rather than a silent
    slowdown.
    """
    if backend not in BACKENDS:
        raise SamplingError(
            f"unknown sampling backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == BACKEND_AUTO:
        return BACKEND_NUMPY if _np is not None else BACKEND_PYTHON
    if backend == BACKEND_NUMPY and _np is None:
        raise SamplingError(
            "sampling backend 'numpy' requested but numpy is not installed; "
            "install the '[fast]' extra or use backend='python'/'auto'"
        )
    return backend


def make_generator(rng: random.Random | None = None):
    """A numpy ``Generator`` deterministically seeded from a ``Random``.

    Seeding from the caller's Python RNG keeps whole-pipeline runs
    reproducible from a single integer seed regardless of backend.
    """
    if _np is None:
        raise SamplingError(
            "cannot create a numpy Generator: numpy is not installed"
        )
    seed = rng.getrandbits(64) if rng is not None else None
    return _np.random.default_rng(seed)


def batch_sample_indices(population: int, capacity: int, gen) -> list[int]:
    """Survivor indices of a one-shot reservoir sample, sorted ascending.

    A reservoir sample over a fully materialised batch is a uniform
    random subset of size ``min(capacity, population)`` — exactly the
    distribution Algorithm R induces — so the whole survivor set is
    drawn with a single vectorized call instead of one ``randrange``
    per item. Sorting preserves arrival order in the output sample.
    """
    if capacity <= 0:
        raise SamplingError(f"reservoir capacity must be >= 1, got {capacity}")
    if population < 0:
        raise SamplingError(f"population must be >= 0, got {population}")
    if population <= capacity:
        return list(range(population))
    indices = gen.choice(population, size=capacity, replace=False)
    indices.sort()
    return indices.tolist()


def reservoir_sample_indices(
    population: int, capacity: int, rng: random.Random
) -> list[int]:
    """Survivor indices of Algorithm R over ``range(population)``.

    The pure-Python twin of :func:`batch_sample_indices` for the
    columnar plane: it replays :class:`ReservoirSampler`'s per-item
    entropy consumption (one ``randrange(seen)`` per item beyond the
    capacity) over *indices* instead of items, so a seeded columnar run
    selects exactly the records — in exactly the reservoir-slot order —
    that the object plane's ``ReservoirSampler`` would have kept.
    """
    if capacity <= 0:
        raise SamplingError(f"reservoir capacity must be >= 1, got {capacity}")
    if population < 0:
        raise SamplingError(f"population must be >= 0, got {population}")
    reservoir = list(range(min(population, capacity)))
    for index in range(capacity, population):
        slot = rng.randrange(index + 1)
        if slot < capacity:
            reservoir[slot] = index
    return reservoir


def sample_materialized(items: Sequence[T], capacity: int, gen) -> list[T]:
    """One-shot reservoir-equivalent sample of a materialised batch.

    This is the vectorized replacement for ``RS(S_i, N_i)`` in
    Algorithm 1 line 10 when the sub-stream of the interval is already
    held in memory (which it always is inside ``whsamp``).
    """
    if len(items) <= capacity:
        return list(items)
    return [items[i] for i in batch_sample_indices(len(items), capacity, gen)]


class NumpyReservoirSampler(ReservoirSampler[T]):
    """Drop-in :class:`ReservoirSampler` with a vectorized ``extend``.

    :meth:`extend` replays Algorithm R over the whole batch with array
    ops: for the ``i``-th item overall the replacement slot is
    ``floor(u * i)`` (accepted iff ``< capacity``), and all the draws
    for a batch happen in one vectorized call. Only accepted items —
    ``O(capacity * log(n / capacity))`` of them — are touched in
    Python, which is where the order-of-magnitude speedup comes from.

    Marginal inclusion probabilities are identical to the pure-Python
    sampler; entropy consumption differs, so the sampled *identities*
    differ between backends for the same seed.

    Per-item :meth:`offer` calls carry numpy call overhead; feed this
    sampler in batches (or keep the python backend for per-item flows
    such as the round-robin worker pools).
    """

    def __init__(self, capacity: int, rng: random.Random | None = None) -> None:
        super().__init__(capacity, rng)
        self._gen = make_generator(self._rng)

    def offer(self, item: T) -> None:
        """Offer one item (vectorized path with a batch of one)."""
        self.extend((item,))

    def extend(self, items) -> None:
        """Offer a whole batch through the vectorized Algorithm R replay."""
        seq = items if isinstance(items, Sequence) else list(items)
        n = len(seq)
        if n == 0:
            return
        position = 0
        free = self._capacity - len(self._reservoir)
        if free > 0:
            take = min(free, n)
            self._reservoir.extend(seq[:take])
            self._seen += take
            position = take
        if position >= n:
            return
        remaining = n - position
        start = self._seen
        # Slot of the i-th item overall is floor(u * i), u ~ U[0, 1).
        # Rounding can only push a slot to i itself, which is >= capacity
        # here (the reservoir is full, so i > capacity) and therefore
        # rejected — same outcome as any other non-reservoir slot.
        counters = _np.arange(start + 1, start + remaining + 1, dtype=_np.float64)
        slots = (self._gen.random(remaining) * counters).astype(_np.int64)
        accepted = _np.nonzero(slots < self._capacity)[0]
        # Later items overwrite earlier ones in the same slot, exactly as
        # the sequential algorithm would; dict/list assignment order
        # below preserves that.
        for offset, slot in zip(accepted.tolist(), slots[accepted].tolist()):
            self._reservoir[slot] = seq[position + offset]
        self._seen = start + remaining

    def reset(self) -> None:
        """Clear reservoir state; the generator keeps its stream."""
        super().reset()


def make_reservoir_sampler(
    capacity: int,
    rng: random.Random | None = None,
    *,
    backend: str = BACKEND_AUTO,
) -> ReservoirSampler[T]:
    """Factory for a reservoir sampler on the requested backend.

    The returned object satisfies the full :class:`ReservoirSampler`
    API (``offer``/``extend``/``sample``/``reset``/``seen``), so call
    sites need no branching beyond construction.
    """
    resolved = resolve_backend(backend)
    if resolved == BACKEND_NUMPY:
        return NumpyReservoirSampler(capacity, rng)
    return ReservoirSampler(capacity, rng)
