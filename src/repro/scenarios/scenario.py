"""The :class:`Scenario` — a named, declarative timeline of events.

A scenario describes *what the world does* to a run: how arrival
rates move, which sub-streams gain or lose share, which nodes churn
and which links degrade — all as data, with no reference to a
concrete tree or schedule. Binding a scenario to a run's topology and
rate schedule (and turning it into per-window state) is the job of
:class:`~repro.scenarios.engine.ScenarioEngine`; the built-in catalog
lives in :mod:`repro.scenarios.catalog`.

Scenarios are pure, picklable data, which is what lets worker shards
recompute the identical timeline independently in their own
processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.scenarios.events import ScenarioEvent

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """A seeded timeline of typed dynamic-workload events.

    Attributes:
        name: Scenario identifier (CLI name for catalog entries).
        description: One-line human summary.
        windows: Default run length in windows; events beyond it are
            rejected (a runner may still run longer — the timeline is
            steady-state after the last event).
        events: The typed events (see :mod:`repro.scenarios.events`),
            applied simultaneously; overlapping rate events multiply,
            overlapping degradations compose.
    """

    name: str
    description: str
    windows: int
    events: tuple[ScenarioEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if self.windows < 1:
            raise ConfigurationError(
                f"scenario windows must be >= 1, got {self.windows}"
            )
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            end = getattr(event, "end_window")
            if end > self.windows:
                raise ConfigurationError(
                    f"scenario {self.name!r} is {self.windows} windows "
                    f"long but event {event!r} runs to window {end}"
                )

    @property
    def is_steady(self) -> bool:
        """Whether the scenario has no events at all (the control)."""
        return not self.events

    def events_of(self, *types: type) -> "tuple[ScenarioEvent, ...]":
        """The scenario's events of the given type(s), in timeline order."""
        return tuple(e for e in self.events if isinstance(e, types))
