"""Columnar (structure-of-arrays) batches — the columnar data plane.

The object data plane moves one :class:`~repro.core.items.StreamItem`
per record through every layer, which makes Python object churn — not
sampling math — the dominant cost of a run. A :class:`ColumnarBatch`
holds the same records as four parallel columns (sub-stream ids,
values, emission timestamps, serialized sizes), so the hot path — rate
spreading, grouping, reservoir selection, weighted sums, coin flips —
becomes array indexing instead of per-item attribute access.

Columns are numpy ``float64`` arrays when numpy is importable and
stdlib ``array('d')`` buffers otherwise, so the dependency-free CI leg
runs the same plane (slower, but identical results).

Two properties make the plane a drop-in:

* **Seeded parity with the object plane.** Every generator's
  ``generate_columns`` draws values with exactly the per-item RNG
  calls of its ``generate``, and the sampling kernels select survivor
  *indices* with the entropy the object kernels would have spent on
  items. A seeded run therefore samples the *same* records on either
  plane; only floating-point summation order differs (vectorized sums
  associate differently), so cross-plane estimates agree to ~1e-12
  relative rather than bit-for-bit.
* **Compatibility shims.** :meth:`ColumnarBatch.from_items` /
  :meth:`ColumnarBatch.to_items` convert at any seam, and iterating a
  batch yields :class:`StreamItem` objects, so per-item consumers
  (streams processors, queries) keep working unmodified against a
  columnar payload.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.core.items import StreamItem, group_by_substream
from repro.errors import SamplingError

try:  # pragma: no cover - trivially environment-dependent
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ColumnBuffer",
    "ColumnarBatch",
    "concat_value_chunks",
    "group_payload",
    "masked_sum",
    "payload_timestamps",
    "value_column",
]

#: Default serialized item size, mirroring ``StreamItem.size_bytes``.
DEFAULT_ITEM_BYTES = 100


def value_column(values: Iterable[float]):
    """Materialize an iterable of floats as a contiguous column."""
    if _np is not None:
        if not isinstance(values, (list, tuple, array, _np.ndarray)):
            values = list(values)  # asarray rejects lazy iterables
        return _np.asarray(values, dtype=_np.float64)
    return values if isinstance(values, array) else array("d", values)


def _empty_column():
    if _np is not None:
        return _np.empty(0, dtype=_np.float64)
    return array("d")


class ColumnBuffer:
    """A preallocated, reusable staging buffer for value draws.

    Workload generators draw one value per record; materializing each
    window's draws as a fresh Python list allocates a count-sized list
    (plus the conversion into a column) every single window. A
    ``ColumnBuffer`` amortizes that churn: each generator keeps one
    buffer, grown high-water-mark style and reused across windows —
    draws land directly in preallocated float storage via
    :meth:`writable`, and :meth:`column` copies the filled prefix out
    as a fresh, independently-owned column (one ``memcpy``-class op).

    The copy-out is what makes reuse safe: emitted batches never alias
    the staging storage, so overwriting the buffer next window cannot
    corrupt a batch already travelling through the tree. Callers must
    not retain the :meth:`writable` view across windows (the buffer
    cannot grow while a view is exported).
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = array("d")

    @property
    def capacity(self) -> int:
        """Preallocated slots (the high-water mark of past windows)."""
        return len(self._buffer)

    def writable(self, count: int) -> memoryview:
        """A writable float view over the first ``count`` staging slots."""
        if count < 0:
            raise SamplingError(f"count must be >= 0, got {count}")
        buffer = self._buffer
        if len(buffer) < count:
            buffer.frombytes(bytes(buffer.itemsize * (count - len(buffer))))
        return memoryview(buffer)[:count]

    def column(self, count: int):
        """The first ``count`` staged values as a fresh, owned column."""
        view = memoryview(self._buffer)[:count]
        if _np is not None:
            return _np.array(view, dtype=_np.float64)
        out = array("d")
        out.frombytes(view.tobytes())
        return out


def _take(column, indices: Sequence[int]):
    """Gather ``column[i]`` for each index, preserving index order."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column[_np.asarray(indices, dtype=_np.intp)]
    return array("d", (column[i] for i in indices))


def _concat(columns: list):
    if len(columns) == 1:
        return columns[0]
    if _np is not None and all(isinstance(c, _np.ndarray) for c in columns):
        return _np.concatenate(columns)
    merged = array("d")
    for column in columns:
        merged.extend(column)
    return merged


def _column_sum(column) -> float:
    if _np is not None and isinstance(column, _np.ndarray):
        return float(column.sum())
    return float(sum(column))


class ColumnarBatch:
    """A set of stream records stored as parallel columns (SoA).

    Attributes:
        substreams: The per-record stratum ids — a single ``str`` when
            every record belongs to one sub-stream (the common case:
            sources are per-stratum, and sampled batches are grouped),
            or a ``list[str]`` for mixed batches (e.g. the skewed
            mixture workload before stratification).
        values: Contiguous float64 column of record payloads.
        timestamps: Contiguous float64 column of emission times.
        sizes: Serialized record sizes for bandwidth accounting — a
            single ``int`` when uniform, or a ``list[int]`` per record.
    """

    __slots__ = ("substreams", "values", "timestamps", "sizes")

    def __init__(self, substreams, values, timestamps, sizes=DEFAULT_ITEM_BYTES):
        self.substreams = substreams
        self.values = values
        self.timestamps = timestamps
        self.sizes = sizes
        if len(values) != len(timestamps):
            raise SamplingError(
                f"column length mismatch: {len(values)} values vs "
                f"{len(timestamps)} timestamps"
            )
        if not isinstance(substreams, str) and len(substreams) != len(values):
            raise SamplingError(
                f"column length mismatch: {len(values)} values vs "
                f"{len(substreams)} substream ids"
            )
        if not isinstance(sizes, int) and len(sizes) != len(values):
            raise SamplingError(
                f"column length mismatch: {len(values)} values vs "
                f"{len(sizes)} sizes"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        substream: str,
        values: Iterable[float],
        emitted_at: float = 0.0,
        size_bytes: int = DEFAULT_ITEM_BYTES,
    ) -> "ColumnarBatch":
        """A uniform-stratum batch with a constant emission time."""
        column = value_column(values)
        n = len(column)
        if _np is not None and isinstance(column, _np.ndarray):
            timestamps = _np.full(n, float(emitted_at))
        else:
            timestamps = array("d", [float(emitted_at)]) * n
        return cls(substream, column, timestamps, size_bytes)

    @classmethod
    def empty(cls) -> "ColumnarBatch":
        """A zero-record batch (what a silent interval emits)."""
        return cls("", _empty_column(), _empty_column())

    @classmethod
    def from_items(cls, items: Sequence[StreamItem]) -> "ColumnarBatch":
        """Transpose object records into columns (the object→SoA shim)."""
        items = list(items)
        if not items:
            return cls.empty()
        ids = [item.substream for item in items]
        first_id = ids[0]
        substreams = first_id if all(s == first_id for s in ids) else ids
        sizes_list = [item.size_bytes for item in items]
        first_size = sizes_list[0]
        sizes = (
            first_size
            if all(s == first_size for s in sizes_list)
            else sizes_list
        )
        return cls(
            substreams,
            value_column([item.value for item in items]),
            value_column([item.emitted_at for item in items]),
            sizes,
        )

    @classmethod
    def concat(cls, batches: Sequence["ColumnarBatch"]) -> "ColumnarBatch":
        """Stack batches record-wise, preserving order."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        tags = [b.substreams for b in batches if isinstance(b.substreams, str)]
        if len(tags) == len(batches) and len(set(tags)) == 1:
            substreams: str | list[str] = tags[0]
        else:
            substreams = []
            for batch in batches:
                substreams.extend(batch.substream_ids())
        uniform = [b.sizes for b in batches if isinstance(b.sizes, int)]
        if len(uniform) == len(batches) and len(set(uniform)) == 1:
            sizes: int | list[int] = uniform[0]
        else:
            sizes = []
            for batch in batches:
                sizes.extend(batch.size_list())
        return cls(
            substreams,
            _concat([b.values for b in batches]),
            _concat([b.timestamps for b in batches]),
            sizes,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def uniform_substream(self) -> str | None:
        """The single stratum id, or ``None`` for a mixed batch."""
        return self.substreams if isinstance(self.substreams, str) else None

    def substream_ids(self) -> list[str]:
        """Per-record stratum ids (materializes the uniform tag)."""
        if isinstance(self.substreams, str):
            return [self.substreams] * len(self)
        return list(self.substreams)

    def size_list(self) -> list[int]:
        """Per-record serialized sizes (materializes the uniform size)."""
        if isinstance(self.sizes, int):
            return [self.sizes] * len(self)
        return list(self.sizes)

    @property
    def total_bytes(self) -> int:
        """Serialized payload size for bandwidth accounting."""
        if isinstance(self.sizes, int):
            return self.sizes * len(self)
        return int(sum(self.sizes))

    def value_sum(self) -> float:
        """Sum of the value column (one vector op on numpy columns)."""
        return _column_sum(self.values)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def select(self, indices: Sequence[int]) -> "ColumnarBatch":
        """Gather the records at ``indices`` (the sampling primitive)."""
        substreams = (
            self.substreams
            if isinstance(self.substreams, str)
            else [self.substreams[i] for i in indices]
        )
        sizes = (
            self.sizes
            if isinstance(self.sizes, int)
            else [self.sizes[i] for i in indices]
        )
        return ColumnarBatch(
            substreams,
            _take(self.values, indices),
            _take(self.timestamps, indices),
            sizes,
        )

    def compress(self, mask: Sequence[bool]) -> "ColumnarBatch":
        """Keep the records whose mask entry is true (vectorized filter)."""
        if len(mask) != len(self):
            raise SamplingError(
                f"mask length {len(mask)} does not match batch of {len(self)}"
            )
        if _np is not None and isinstance(self.values, _np.ndarray):
            indices = _np.nonzero(_np.asarray(mask, dtype=bool))[0]
        else:
            indices = [i for i, keep in enumerate(mask) if keep]
        return self.select(indices)

    def with_spread_timestamps(
        self, interval_start: float, interval_seconds: float
    ) -> "ColumnarBatch":
        """Spread emission times uniformly over an interval.

        Element-wise this computes exactly the object plane's
        ``interval_start + interval_seconds * (i + 1) / (count + 1)``,
        so timestamps agree bit-for-bit across planes — the network
        simulator's latency accounting sees identical arrival times.
        """
        n = len(self)
        if n == 0:
            return self
        if _np is not None and isinstance(self.values, _np.ndarray):
            offsets = interval_seconds * _np.arange(1, n + 1, dtype=_np.float64)
            timestamps = interval_start + offsets / (n + 1)
        else:
            timestamps = array(
                "d",
                (
                    interval_start + interval_seconds * (i + 1) / (n + 1)
                    for i in range(n)
                ),
            )
        return ColumnarBatch(self.substreams, self.values, timestamps, self.sizes)

    def group_by_substream(self) -> dict[str, "ColumnarBatch"]:
        """Stratify by sub-stream id, preserving first-occurrence order.

        The columnar ``Update`` step (Algorithm 1, line 5): uniform
        batches — the common case — return themselves without touching
        a single record. Grouped chunks carry the *uniform* stratum
        tag (not a per-record list of identical strings), so they
        re-enter every single-stratum fast path downstream.
        """
        if len(self) == 0:
            return {}
        if isinstance(self.substreams, str):
            return {self.substreams: self}
        groups: dict[str, list[int]] = {}
        for index, substream in enumerate(self.substreams):
            groups.setdefault(substream, []).append(index)
        return {
            substream: ColumnarBatch(
                substream,
                _take(self.values, indices),
                _take(self.timestamps, indices),
                self.sizes
                if isinstance(self.sizes, int)
                else [self.sizes[i] for i in indices],
            )
            for substream, indices in groups.items()
        }

    # ------------------------------------------------------------------
    # Object-plane shims
    # ------------------------------------------------------------------
    def to_items(self) -> list[StreamItem]:
        """Materialize object records (the SoA→object shim)."""
        return list(self)

    def __iter__(self) -> Iterator[StreamItem]:
        ids = (
            [self.substreams] * len(self)
            if isinstance(self.substreams, str)
            else self.substreams
        )
        sizes = (
            [self.sizes] * len(self)
            if isinstance(self.sizes, int)
            else self.sizes
        )
        for substream, value, timestamp, size in zip(
            ids, self.values, self.timestamps, sizes
        ):
            yield StreamItem(substream, float(value), float(timestamp), int(size))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = self.uniform_substream
        label = tag if tag is not None else f"{len(set(self.substreams))} strata"
        return f"ColumnarBatch({label!r}, n={len(self)})"


def group_payload(payload) -> dict:
    """Stratify either payload representation by sub-stream.

    The one dispatch point the engines share: a ``list[StreamItem]``
    goes through :func:`~repro.core.items.group_by_substream`, a
    :class:`ColumnarBatch` through its own (usually zero-copy)
    grouping. Both return first-occurrence-ordered dicts, so a seeded
    run visits strata in the same order on either plane.
    """
    if isinstance(payload, ColumnarBatch):
        return payload.group_by_substream()
    return group_by_substream(payload)


def masked_sum(column, mask: Sequence[bool]) -> float:
    """Sum of the column entries whose mask entry is true.

    One select-and-reduce vector op on numpy columns; the SRS
    baseline's Horvitz-Thompson numerator on the columnar plane.
    """
    if _np is not None and isinstance(column, _np.ndarray):
        return float(column[_np.asarray(mask, dtype=bool)].sum())
    return float(sum(value for value, keep in zip(column, mask) if keep))


def concat_value_chunks(chunks: list) -> Sequence[float]:
    """Flatten per-batch value chunks into one value sequence.

    The root estimator accumulates one chunk per stored batch — a
    plain list on the object plane, a value column on the columnar
    plane. A single chunk passes through untouched (the object plane
    keeps its exact list identity semantics); columnar chunks merge
    into one contiguous column so the variance estimator stays
    vectorized.
    """
    if len(chunks) == 1:
        return chunks[0]
    if _np is not None and any(isinstance(c, _np.ndarray) for c in chunks):
        return _np.concatenate(
            [_np.asarray(c, dtype=_np.float64) for c in chunks]
        )
    flat: list[float] = []
    for chunk in chunks:
        flat.extend(chunk)
    return flat


def payload_timestamps(payload) -> Iterable[float]:
    """Emission timestamps of either payload representation."""
    if isinstance(payload, ColumnarBatch):
        return payload.timestamps
    return (item.emitted_at for item in payload)
