"""Consumer client with group membership and offset management.

Mirrors the Kafka consumer loop used by the paper's Pub/Sub module:
subscribe to topics, poll batches of records from the assigned
partitions, and commit offsets. Assignment is delegated to the broker's
group coordinator; a consumer re-syncs its assignment on every poll so
rebalances take effect at the next poll boundary, as in Kafka.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.broker.broker import Broker
from repro.broker.records import ConsumedRecord
from repro.errors import ConsumerGroupError

__all__ = ["Consumer"]

_member_counter = itertools.count()


class Consumer:
    """A polling consumer bound to one broker and one group."""

    def __init__(
        self,
        broker: Broker,
        group_id: str,
        topics: Iterable[str],
        *,
        member_id: str | None = None,
        max_poll_records: int = 500,
    ) -> None:
        if max_poll_records <= 0:
            raise ConsumerGroupError(
                f"max_poll_records must be >= 1, got {max_poll_records}"
            )
        self._broker = broker
        self._group_id = group_id
        self._member_id = member_id or f"consumer-{next(_member_counter)}"
        self._topics = list(topics)
        self._max_poll = max_poll_records
        self._positions: dict[tuple[str, int], int] = {}
        self._closed = False
        broker.join_group(group_id, self._member_id, self._topics)

    @property
    def member_id(self) -> str:
        """This consumer's member identity within its group."""
        return self._member_id

    @property
    def assignment(self) -> list[tuple[str, int]]:
        """The (topic, partition) pairs currently assigned."""
        group = self._broker.group(self._group_id)
        return group.partitions_of(self._member_id)

    def position(self, topic: str, partition: int) -> int:
        """The next offset this consumer will read for a partition."""
        key = (topic, partition)
        if key not in self._positions:
            committed = self._broker.committed(self._group_id, topic, partition)
            self._positions[key] = committed if committed is not None else 0
        return self._positions[key]

    def poll(self) -> list[ConsumedRecord]:
        """Fetch up to ``max_poll_records`` across assigned partitions."""
        if self._closed:
            raise ConsumerGroupError("consumer is closed")
        out: list[ConsumedRecord] = []
        budget = self._max_poll
        for topic, partition in self.assignment:
            if budget <= 0:
                break
            offset = self.position(topic, partition)
            records = self._broker.fetch(topic, partition, offset, budget)
            if records:
                self._positions[(topic, partition)] = records[-1].offset + 1
                out.extend(records)
                budget -= len(records)
        return out

    def commit(self) -> None:
        """Commit the current positions for all touched partitions."""
        for (topic, partition), offset in self._positions.items():
            self._broker.commit(self._group_id, topic, partition, offset)

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Override the next read position for one partition."""
        self._positions[(topic, partition)] = offset

    def close(self) -> None:
        """Commit, leave the group, and release the assignment."""
        if self._closed:
            return
        self.commit()
        self._broker.leave_group(self._group_id, self._member_id)
        self._closed = True

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
