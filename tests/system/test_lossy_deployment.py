"""Failure injection: deployments over a lossy WAN.

The paper's testbed is lossless; these tests inject netem-style packet
loss to check the system degrades gracefully: runs complete, the
estimate's recovered count falls roughly with the loss rate (dropped
batches are simply missing mass, never corruption), and lossless links
remain exact.
"""

import pytest

from repro.simnet.netem import NetemConfig
from repro.system.config import ExecutionMode, PipelineConfig
from repro.system.deployment import DeploymentSimulator
from repro.topology.placement import PlacementSpec
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "test", {"A": 300.0, "B": 300.0, "C": 300.0, "D": 300.0}
)


def lossy_placement(loss: float) -> PlacementSpec:
    return PlacementSpec(
        layer_service_rates=[1e12, 5000.0, 5000.0, 5000.0],
        uplink_configs=[
            NetemConfig.from_rtt(20.0, 1e9, loss=loss),
            NetemConfig.from_rtt(40.0, 1e9, loss=loss),
            NetemConfig.from_rtt(80.0, 1e9, loss=loss),
        ],
    )


def run(loss: float, mode: str = ExecutionMode.APPROXIOT):
    config = PipelineConfig(
        sampling_fraction=0.2,
        window_seconds=1.0,
        mode=mode,
        placement=lossy_placement(loss),
        seed=3,
    )
    simulator = DeploymentSimulator(config, SCHEDULE, GENS, n_windows=6)
    return simulator.run()


class TestLossyWan:
    def test_lossless_baseline(self):
        report = run(loss=0.0)
        assert report.realized_fraction == pytest.approx(0.2, rel=0.2)

    def test_run_completes_under_loss(self):
        report = run(loss=0.1)
        assert report.items_at_root > 0
        assert report.makespan_seconds > 0

    def test_root_volume_degrades_with_loss(self):
        clean = run(loss=0.0)
        lossy = run(loss=0.3)
        assert lossy.items_at_root < clean.items_at_root

    def test_native_loses_proportionally(self):
        clean = run(loss=0.0, mode=ExecutionMode.NATIVE)
        lossy = run(loss=0.2, mode=ExecutionMode.NATIVE)
        # Items cross three lossy hops; batches are large so per-batch
        # drops are coarse, but volume must fall substantially.
        assert lossy.items_at_root < 0.9 * clean.items_at_root

    def test_drop_counters_exposed(self):
        config = PipelineConfig(
            sampling_fraction=0.2,
            mode=ExecutionMode.NATIVE,
            placement=lossy_placement(0.3),
            seed=4,
        )
        simulator = DeploymentSimulator(config, SCHEDULE, GENS, n_windows=4)
        simulator.run()
        dropped = sum(
            link.messages_dropped for link in simulator._network.links
        )
        assert dropped > 0
