"""Deterministic discrete-event simulation clock.

A single priority queue of timestamped callbacks. Everything in the
simulated system — item arrivals, interval boundaries, link deliveries,
host service completions — is an event on this clock, which makes runs
bit-for-bit reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import ClockError

__all__ = ["Clock", "Event"]


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "callback", "cancelled", "seq")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the clock skips it when its time comes."""
        self.cancelled = True


class Clock:
    """An event loop over virtual time.

    Events scheduled for the same instant fire in scheduling order
    (FIFO tie-break via a sequence number), which keeps multi-node
    interval boundaries deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback at an absolute virtual time."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def step(self) -> bool:
        """Fire the next event; return False if the queue is empty."""
        while self._queue:
            time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time
            self.events_fired += 1
            event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Drain the event queue (optionally capped)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, time: float) -> None:
        """Fire all events up to and including virtual time ``time``.

        The clock ends exactly at ``time`` even if the queue drained
        earlier, so subsequent relative scheduling is anchored there.
        """
        if time < self._now:
            raise ClockError(f"cannot run backwards to {time} from {self._now}")
        while self._queue:
            next_time = self._queue[0][0]
            if next_time > time:
                break
            self.step()
        self._now = time
