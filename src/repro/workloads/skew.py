"""The extreme-skew workload of §V-E (Fig. 10(c)).

Four Poisson sub-streams where the *count* distribution is wildly
skewed against the *value* distribution: A(λ=10) carries 80 % of all
items, B(λ=100) 19.89 %, C(λ=1000) 0.1 %, and D(λ=10,000,000) only
0.01 % — so nearly all of the total *value* sits in a sub-stream that a
simple random sampler will usually miss entirely (or, when it does hit
it, scale up into a huge overestimate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.columns import ColumnarBatch
from repro.core.items import StreamItem
from repro.errors import WorkloadError
from repro.workloads.synthetic import PoissonSubstream

__all__ = ["SkewedMixture", "paper_skewed_mixture"]


@dataclass
class SkewedMixture:
    """A mixture of sub-streams with fixed count proportions."""

    substreams: list[PoissonSubstream]
    proportions: list[float]
    _order: list[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if len(self.substreams) != len(self.proportions):
            raise WorkloadError(
                "substreams and proportions must have equal length"
            )
        if not self.substreams:
            raise WorkloadError("mixture needs at least one sub-stream")
        total = sum(self.proportions)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"proportions must sum to 1, got {total}")
        if any(p < 0 for p in self.proportions):
            raise WorkloadError("proportions must be non-negative")

    def counts_for(self, total_items: int) -> dict[str, int]:
        """Exact per-sub-stream item counts for a batch of ``total_items``.

        Largest-remainder rounding; every sub-stream with a positive
        proportion receives at least one item when the total allows, so
        the rare-but-valuable stratum D is physically present in the
        ground truth.
        """
        if total_items < 0:
            raise WorkloadError(f"total_items must be >= 0, got {total_items}")
        raw = [total_items * p for p in self.proportions]
        counts = [int(r) for r in raw]
        shortfall = total_items - sum(counts)
        by_fraction = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for i in range(shortfall):
            counts[by_fraction[i % len(counts)]] += 1
        if total_items >= len(self.substreams):
            for i, proportion in enumerate(self.proportions):
                if proportion > 0 and counts[i] == 0:
                    donor = counts.index(max(counts))
                    counts[donor] -= 1
                    counts[i] += 1
        return {
            sub.name: count for sub, count in zip(self.substreams, counts)
        }

    def generate(
        self, total_items: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Generate a shuffled batch following the mixture proportions."""
        items: list[StreamItem] = []
        counts = self.counts_for(total_items)
        for substream in self.substreams:
            items.extend(
                substream.generate(counts[substream.name], rng, emitted_at)
            )
        rng.shuffle(items)
        return items

    def generate_columns(
        self, total_items: int, rng: random.Random, emitted_at: float = 0.0
    ) -> ColumnarBatch:
        """Columnar twin of :meth:`generate` (a mixed-stratum batch).

        Sub-stream draws and the shuffle consume exactly the object
        path's entropy — ``random.shuffle`` spends one draw per
        position regardless of element type, so shuffling an index
        permutation and gathering the columns lands every record in
        the same slot a shuffled item list would occupy.
        """
        counts = self.counts_for(total_items)
        merged = ColumnarBatch.concat(
            [
                substream.generate_columns(
                    counts[substream.name], rng, emitted_at
                )
                for substream in self.substreams
            ]
        )
        order = list(range(len(merged)))
        rng.shuffle(order)
        return merged.select(order)


def paper_skewed_mixture() -> SkewedMixture:
    """The §V-E configuration: 80 / 19.89 / 0.1 / 0.01 percent."""
    return SkewedMixture(
        substreams=[
            PoissonSubstream("A", 10.0),
            PoissonSubstream("B", 100.0),
            PoissonSubstream("C", 1000.0),
            PoissonSubstream("D", 10_000_000.0),
        ],
        proportions=[0.80, 0.1989, 0.001, 0.0001],
    )
