"""Runtime: drive a topology from broker topics.

The runtime owns a consumer per source node and a producer for sinks.
Each :meth:`poll_once` round fetches records, injects them into the
sources (advancing stream time from record timestamps), and punctuates
the topology so windowed processors can emit closed windows. This is
the single-threaded analogue of a Kafka Streams application instance.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.broker.producer import Producer
from repro.broker.records import Record
from repro.core.fastpath import resolve_backend
from repro.errors import ConfigurationError
from repro.streams.topology import Topology

__all__ = ["StreamsRuntime"]

_app_ids = itertools.count()


class StreamsRuntime:
    """Executes one topology against one broker."""

    def __init__(
        self,
        broker: Broker,
        topology: Topology,
        *,
        application_id: str | None = None,
        max_poll_records: int = 500,
        sampling_backend: str = "auto",
    ) -> None:
        self._broker = broker
        self._topology = topology
        self._app_id = application_id or f"streams-app-{next(_app_ids)}"
        self._sampling_backend = resolve_backend(sampling_backend)
        # Sampling processors plugged into the topology read the seam
        # off their context; set it before init() hooks run.
        for node_name in topology.node_names:
            topology.node(node_name).context.sampling_backend = (
                self._sampling_backend
            )
        self._producer = Producer(broker)
        self._consumers: list[tuple[Consumer, Any]] = []
        for index, source in enumerate(topology.sources):
            consumer = Consumer(
                broker,
                group_id=self._app_id,
                topics=source.topics,
                member_id=f"{self._app_id}-member-{index}",
                max_poll_records=max_poll_records,
            )
            self._consumers.append((consumer, source))
        topology.attach_emit_hook(self._emit)
        topology.init_all()
        self._stream_time = 0.0
        self._closed = False

    @classmethod
    def from_transport(
        cls, transport, topology: Topology, **kwargs
    ) -> "StreamsRuntime":
        """Run a topology against an engine transport's broker.

        Accepts any broker-backed transport from
        :mod:`repro.engine.transport` (``BrokerTransport`` or
        ``SimnetBrokerTransport``): topics populated through
        ``transport.send`` / ``transport.deliver`` are readable as
        topology sources (node ``X``'s ingest topic is
        ``repro.engine.transport.topic_for(X)``), so a streams app can
        tap the same record flow the execution engine runs on.
        """
        broker = getattr(transport, "broker", None)
        if not isinstance(broker, Broker):
            raise ConfigurationError(
                f"{type(transport).__name__} is not broker-backed; "
                f"use BrokerTransport or SimnetBrokerTransport"
            )
        return cls(broker, topology, **kwargs)

    @property
    def application_id(self) -> str:
        """Identifier shared by this app's consumer group."""
        return self._app_id

    @property
    def sampling_backend(self) -> str:
        """Resolved sampling backend propagated to all processors."""
        return self._sampling_backend

    @property
    def stream_time(self) -> float:
        """Largest record timestamp observed so far."""
        return self._stream_time

    def _emit(self, topic: str, key: Any, value: Any) -> None:
        self._broker.ensure_topic(topic)
        self._producer.send(
            topic, value, key=key, timestamp=self._stream_time
        )
        self._producer.flush()

    def poll_once(self) -> int:
        """One poll round; returns the number of records processed."""
        processed = 0
        for consumer, source in self._consumers:
            for record in consumer.poll():
                self._stream_time = max(self._stream_time, record.timestamp)
                source.context.stream_time = record.timestamp
                source.process(record.key, record.value)
                processed += 1
        self._topology.punctuate_all(self._stream_time)
        return processed

    def run_to_completion(self, max_rounds: int = 10_000) -> int:
        """Poll until no source has new records; returns total processed."""
        total = 0
        for _ in range(max_rounds):
            processed = self.poll_once()
            total += processed
            if processed == 0:
                break
        return total

    def advance_stream_time(self, stream_time: float) -> None:
        """Manually advance time (flushes windows with no new data)."""
        self._stream_time = max(self._stream_time, stream_time)
        self._topology.punctuate_all(self._stream_time)

    def close(self) -> None:
        """Commit offsets, leave groups, close processors."""
        if self._closed:
            return
        for consumer, _source in self._consumers:
            consumer.close()
        self._topology.close_all()
        self._closed = True

    @staticmethod
    def inject(broker: Broker, topic: str, key: Any, value: Any,
               timestamp: float = 0.0) -> None:
        """Test/workload helper: produce one record to a topic."""
        broker.ensure_topic(topic)
        broker.produce(topic, Record(key=key, value=value, timestamp=timestamp))
