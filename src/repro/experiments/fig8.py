"""Figure 8 — end-to-end latency vs sampling fraction (1 s window).

The paper's result: under a saturating input, native execution's
latency balloons (its datacenter queue grows without bound) while both
sampled systems stay low; at the 10 % fraction ApproxIoT achieves a
~6× speedup over native.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import (
    ExperimentScale,
    base_config,
    gaussian_generators,
    saturating_placement,
    uniform_schedule,
)
from repro.metrics.report import Table
from repro.system.config import ExecutionMode
from repro.system.deployment import DeploymentSimulator

__all__ = ["Fig8Point", "run_fig8", "main"]

FIG8_FRACTIONS: list[float] = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


@dataclass(frozen=True, slots=True)
class Fig8Point:
    """Mean latency of the three systems at one sampling fraction."""

    fraction: float
    approxiot: float
    srs: float
    native: float

    @property
    def speedup_over_native(self) -> float:
        """Native latency divided by ApproxIoT latency."""
        if self.approxiot == 0:
            return float("inf")
        return self.native / self.approxiot


def run_fig8(
    fractions: list[float] | None = None,
    scale: ExperimentScale | None = None,
    *,
    n_windows: int = 12,
) -> list[Fig8Point]:
    """Reproduce Fig. 8 at a saturating offered load."""
    fractions = fractions if fractions is not None else FIG8_FRACTIONS
    scale = scale if scale is not None else ExperimentScale.bench()
    generators = gaussian_generators()
    schedule = uniform_schedule(scale.rate_scale)
    placement = saturating_placement(schedule)

    def latency(mode: str, fraction: float) -> float:
        config = base_config(fraction, scale, mode=mode, placement=placement)
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=n_windows
        )
        return simulator.run().mean_latency_seconds

    native = latency(ExecutionMode.NATIVE, 1.0)
    points: list[Fig8Point] = []
    for fraction in fractions:
        points.append(
            Fig8Point(
                fraction=fraction,
                approxiot=latency(ExecutionMode.APPROXIOT, fraction),
                srs=latency(ExecutionMode.SRS, fraction),
                native=native,
            )
        )
    return points


def main(scale: ExperimentScale | None = None) -> str:
    """Print the Fig. 8 table; return the text."""
    table = Table(
        "Fig. 8: latency vs sampling fraction (1 s window)",
        ["fraction", "ApproxIoT (s)", "SRS (s)", "Native (s)", "speedup"],
    )
    for point in run_fig8(scale=scale):
        table.add_row(
            f"{point.fraction:.0%}",
            f"{point.approxiot:.2f}",
            f"{point.srs:.2f}",
            f"{point.native:.2f}",
            f"{point.speedup_over_native:.1f}x",
        )
    text = table.render()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
