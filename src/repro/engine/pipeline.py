"""Pipeline assembly — the node graph built once, shared by all modes.

Both execution engines (the algorithmic :class:`StatisticalRunner` and
the discrete-event :class:`DeploymentSimulator`) run the same logical
object: a tree of sampling nodes fed by rate-scheduled sources, each
node holding a per-interval sample budget derived from the cost
function. :func:`build_pipeline` materialises that object exactly once
per run — sources wired to sub-streams, per-node budgets sized from
subtree rates, the sampling backend resolved — so the facades never
re-derive any of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cost import FractionBudget
from repro.core.stratified import AllocationPolicy
from repro.errors import PipelineError
from repro.topology.tree import LogicalTree, TreeNode
from repro.workloads.rates import RateSchedule
from repro.workloads.source import ItemGenerator, Source

if TYPE_CHECKING:  # circular at runtime: repro.system facades import us
    from repro.core.columns import ColumnarBatch
    from repro.core.items import StreamItem
    from repro.system.config import PipelineConfig

    #: One source's interval batch, in either plane's representation.
    SourcePayload = list[StreamItem] | ColumnarBatch

__all__ = ["Pipeline", "build_pipeline"]


@dataclass(slots=True)
class Pipeline:
    """One assembled run: tree + sources + budgets + resolved backend.

    Attributes:
        config: The run's configuration (immutable).
        tree: The logical tree the run executes on.
        backend: The sampling backend, resolved once at assembly
            (``config.resolved_backend`` cached for the whole run).
        rng: The run's random source. Sources received derived seeds
            from this generator during assembly; every subsequent
            sampling decision draws from it in execution order.
        sources: One :class:`~repro.workloads.source.Source` per source
            node, keyed by node name.
        source_rates: Per-source emission rate (items/second).
        budgets: Per-interval sample budget for every sampling node,
            sized so the node passes on ``sampling_fraction`` of its
            subtree's original volume.
        data_plane: The record representation this run moves between
            layers (``config.data_plane``): ``"objects"`` emits
            ``list[StreamItem]`` batches, ``"columnar"`` emits
            :class:`~repro.core.columns.ColumnarBatch` columns.
        source_substreams: The sub-stream each source node produces —
            the round-robin ownership chosen at assembly. Scenario
            state (per-sub-stream rate modulation, skew drift) is
            applied per source through this map.
        allocation_override: A ``getSampleSize`` policy installed by a
            budget controller for the *next* window, superseding
            ``config.allocation_policy`` while set. ``None`` (the
            default, and the static controller's permanent state) runs
            the config policy bit-for-bit.
    """

    config: PipelineConfig
    tree: LogicalTree
    backend: str
    rng: random.Random
    data_plane: str = "objects"
    sources: dict[str, Source] = field(default_factory=dict)
    source_rates: dict[str, float] = field(default_factory=dict)
    budgets: dict[str, int] = field(default_factory=dict)
    source_substreams: dict[str, str] = field(default_factory=dict)
    allocation_override: AllocationPolicy | None = None

    def budget(self, node_name: str) -> int:
        """A sampling node's per-interval sample budget."""
        try:
            return self.budgets[node_name]
        except KeyError:
            raise PipelineError(
                f"no budget for node {node_name!r}; is it a sampling node?"
            ) from None

    def budgets_for_fraction(self, fraction: float) -> dict[str, int]:
        """Per-node budgets for a sampling fraction, assembly formula.

        The exact computation :func:`build_pipeline` runs at assembly
        — expected interval arrivals from the *assembly-time* subtree
        rates (scenario rate modulation deliberately excluded: budgets
        must stay a pure function of ``(config, fraction)`` so every
        worker shard re-derives identical values coordination-free)
        through :class:`~repro.core.cost.FractionBudget`. The adaptive
        fraction controller calls this between windows; a fraction
        equal to ``config.sampling_fraction`` reproduces the assembly
        budgets exactly.
        """
        budget = FractionBudget(fraction)
        return {
            node.name: budget.sample_size(
                int(round(
                    self.subtree_rate(node.name) * self.config.window_seconds
                ))
            )
            for node in self.tree.sampling_nodes
        }

    def subtree_rate(self, node_name: str) -> float:
        """Aggregate source rate (items/s) feeding a node's subtree."""
        return sum(
            self.source_rates[source.name]
            for source in self.tree.sources
            if node_name in self.tree.path_to_root(source.name)
        )

    def substream_owner_count(self, substream: str) -> int:
        """How many source nodes jointly produce a sub-stream."""
        count = sum(
            1 for owner in self.source_substreams.values()
            if owner == substream
        )
        if count == 0:
            raise PipelineError(f"no sources produce sub-stream {substream!r}")
        return count

    def emit_source(
        self, node_name: str, interval_start: float, interval_seconds: float
    ) -> "SourcePayload":
        """One source's batch on this run's data plane.

        Returns ``list[StreamItem]`` on the object plane, a
        :class:`~repro.core.columns.ColumnarBatch` on the columnar
        plane — with identical seeded records either way.
        """
        source = self.sources[node_name]
        if self.data_plane == "columnar":
            return source.emit_interval_columns(interval_start, interval_seconds)
        return source.emit_interval(interval_start, interval_seconds)

    def emit_window(self, window_start: float) -> "dict[str, SourcePayload]":
        """One window's emissions, keyed by source node name.

        Sources are driven in tree order so a seeded run is
        deterministic regardless of the transport in use. Payload
        representation follows :attr:`data_plane`.
        """
        return {
            node.name: self.emit_source(
                node.name, window_start, self.config.window_seconds
            )
            for node in self.tree.sources
        }


def _build_sources(
    tree: LogicalTree,
    schedule: RateSchedule,
    generators: dict[str, ItemGenerator],
    rng: random.Random,
) -> tuple[dict[str, Source], dict[str, str]]:
    """Assign sub-streams round-robin across the tree's sources.

    With 8 sources and 4 sub-streams each sub-stream is produced by
    2 sources; the schedule's per-sub-stream rate is split evenly
    among them. Returns the sources plus the source → sub-stream
    ownership map the assignment produced.
    """
    substreams = sorted(schedule.rates)
    missing = [s for s in substreams if s not in generators]
    if missing:
        raise PipelineError(f"no generators for sub-streams: {missing}")
    source_nodes = tree.sources
    owners: dict[str, list[TreeNode]] = {s: [] for s in substreams}
    for index, node in enumerate(source_nodes):
        owners[substreams[index % len(substreams)]].append(node)
    sources: dict[str, Source] = {}
    source_substreams: dict[str, str] = {}
    for substream, nodes in owners.items():
        if not nodes:
            raise PipelineError(
                f"tree has fewer sources than sub-streams; "
                f"{substream!r} has no producer"
            )
        per_source_rate = schedule.rates[substream] / len(nodes)
        for node in nodes:
            sources[node.name] = Source(
                node.name,
                generators[substream],
                per_source_rate,
                rng=random.Random(rng.getrandbits(64)),
            )
            source_substreams[node.name] = substream
    return sources, source_substreams


def build_pipeline(
    config: PipelineConfig,
    schedule: RateSchedule,
    generators: dict[str, ItemGenerator],
) -> Pipeline:
    """Assemble the node graph for one run.

    Budgets are sized so each node passes on ``sampling_fraction`` of
    the *original* volume of its subtree. In steady state, layers above
    the first receive roughly their budget and pass items through
    (weight 1); under rate fluctuation they re-sample, which is where
    the hierarchy earns its keep.
    """
    tree = config.tree
    rng = random.Random(config.seed)
    sources, source_substreams = _build_sources(tree, schedule, generators, rng)
    pipeline = Pipeline(
        config=config,
        tree=tree,
        backend=config.resolved_backend,
        rng=rng,
        data_plane=config.data_plane,
        sources=sources,
        source_substreams=source_substreams,
    )
    pipeline.source_rates = {
        node.name: pipeline.sources[node.name].rate_per_second
        for node in tree.sources
    }
    pipeline.budgets = pipeline.budgets_for_fraction(config.sampling_fraction)
    return pipeline
