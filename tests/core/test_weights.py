"""Unit tests for weight computation and the WeightMap."""

import pytest

from repro.core.weights import WeightMap, local_weight, output_weight


class TestLocalWeight:
    def test_overflow_scales_by_ratio(self):
        assert local_weight(seen=40, reservoir_size=10) == pytest.approx(4.0)

    def test_underflow_is_one(self):
        assert local_weight(seen=5, reservoir_size=10) == 1.0

    def test_exact_fit_is_one(self):
        assert local_weight(seen=10, reservoir_size=10) == 1.0

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            local_weight(5, 0)


class TestOutputWeight:
    def test_paper_figure2_example(self):
        """Figure 2: W_in=3, 4 items into reservoir of 3 -> W_out = 3*4/3 = 4."""
        assert output_weight(3.0, seen=4, reservoir_size=3) == pytest.approx(4.0)

    def test_paper_figure2_underflow_example(self):
        """Figure 2: W_in=2, 2 items into reservoir of 3 -> W_out = 2."""
        assert output_weight(2.0, seen=2, reservoir_size=3) == pytest.approx(2.0)

    def test_paper_figure3_example(self):
        """Figure 3: w=1.5 then 2 items into reservoir of 1 -> w = 3."""
        assert output_weight(1.5, seen=2, reservoir_size=1) == pytest.approx(3.0)

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            output_weight(0.0, 5, 3)

    def test_composition_across_layers(self):
        """Weights compose multiplicatively along the upstream path."""
        w1 = output_weight(1.0, seen=6, reservoir_size=4)   # 1.5 (Fig. 3, node A)
        w2 = output_weight(w1, seen=2, reservoir_size=1)    # 3.0 (node B)
        assert w2 == pytest.approx(3.0)


class TestWeightMap:
    def test_default_weight_is_one(self):
        assert WeightMap().get("never-seen") == 1.0

    def test_update_and_get(self):
        wm = WeightMap()
        wm.update("a", 2.5)
        assert wm.get("a") == 2.5

    def test_stale_weight_persists(self):
        """Figure 3's rule: the prior weight applies in later intervals."""
        wm = WeightMap()
        wm.update("s", 1.5)
        # ... an interval passes with no weight update for "s" ...
        assert wm.get("s") == 1.5

    def test_rejects_non_positive_weights(self):
        wm = WeightMap()
        with pytest.raises(ValueError):
            wm.update("a", 0.0)
        with pytest.raises(ValueError):
            wm.update("a", -1.0)

    def test_merge_overwrites(self):
        wm = WeightMap({"a": 2.0, "b": 3.0})
        wm.merge({"b": 4.0, "c": 5.0})
        assert wm.as_dict() == {"a": 2.0, "b": 4.0, "c": 5.0}

    def test_merge_weightmap_instance(self):
        wm = WeightMap({"a": 2.0})
        wm.merge(WeightMap({"a": 7.0}))
        assert wm.get("a") == 7.0

    def test_copy_is_independent(self):
        wm = WeightMap({"a": 2.0})
        clone = wm.copy()
        clone.update("a", 9.0)
        assert wm.get("a") == 2.0

    def test_contains_and_len(self):
        wm = WeightMap({"a": 2.0})
        assert "a" in wm
        assert "b" not in wm
        assert len(wm) == 1

    def test_initial_mapping_validated(self):
        with pytest.raises(ValueError):
            WeightMap({"a": -2.0})
