"""Cross-transport parity: the run is defined by the seed, not the wiring.

The engine's contract is that every transport delivers batches in send
order per destination, so a seeded run must produce *identical* samples
— and therefore identical per-window root estimates — whether batches
move by in-process callback or through broker topics, on either
sampling backend. The Eq. 8 count invariant is asserted end-to-end on
the root's Theta store as the estimates are compared.
"""

import pytest

from repro.engine.pipeline import build_pipeline
from repro.engine.runner import EngineRunner
from repro.engine.transport import make_statistical_transport
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "parity", {"A": 300.0, "B": 300.0, "C": 300.0, "D": 300.0}
)

BACKENDS = ["python"]
try:  # the numpy backend participates when the [fast] extra is in
    import numpy  # noqa: F401

    BACKENDS.append("numpy")
except ImportError:
    pass


def config_for(backend, transport, fraction=0.2, seed=13):
    return PipelineConfig(
        sampling_fraction=fraction,
        window_seconds=1.0,
        seed=seed,
        backend=backend,
        transport=transport,
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrossTransportParity:
    def test_identical_per_window_root_estimates(self, backend):
        """In-process and broker runs agree bit-for-bit, window by window."""
        runs = {
            transport: StatisticalRunner(
                config_for(backend, transport), SCHEDULE, GENS
            ).run(4)
            for transport in ("inprocess", "broker")
        }
        inproc, broker = runs["inprocess"].windows, runs["broker"].windows
        assert len(inproc) == len(broker) == 4
        for window_a, window_b in zip(inproc, broker):
            assert window_a.approx_sum.value == window_b.approx_sum.value
            assert window_a.approx_sum.error == window_b.approx_sum.error
            assert window_a.srs_sum == window_b.srs_sum
            assert window_a.exact_sum == window_b.exact_sum
            assert window_a.items_sampled == window_b.items_sampled

    def test_eq8_count_invariant_end_to_end(self, backend):
        """``sum(|I| * W_out)`` over Theta recovers the emitted count
        exactly on every transport."""
        for transport in ("inprocess", "broker"):
            config = config_for(backend, transport, fraction=0.1)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport(transport)
            )
            for start in range(3):
                emitted = pipeline.emit_window(float(start))
                emitted_count = sum(len(b) for b in emitted.values())
                window = runner.run_approxiot(emitted)
                recovered = sum(
                    estimate.estimated_count
                    for estimate in window.theta.per_substream().values()
                )
                assert recovered == pytest.approx(emitted_count, rel=1e-9)
                assert 0 < window.sampled < emitted_count

    def test_native_strategy_recovers_exact_sum(self, backend):
        """The pass-through strategy reaches the ground truth on every
        transport (it consumes no randomness on the way)."""
        for transport in ("inprocess", "broker"):
            config = config_for(backend, transport)
            pipeline = build_pipeline(config, SCHEDULE, GENS)
            runner = EngineRunner(
                pipeline, make_statistical_transport(transport)
            )
            emitted = pipeline.emit_window(0.0)
            direct = sum(
                item.value for batch in emitted.values() for item in batch
            )
            assert runner.run_native(emitted) == pytest.approx(
                direct, rel=1e-12
            )


@pytest.mark.skipif(len(BACKENDS) < 2, reason="needs both backends")
class TestBackendSeparation:
    def test_backends_differ_but_agree_statistically(self):
        """Backends consume entropy differently (different samples) but
        both remain unbiased — transport parity must not be confused
        with backend parity."""
        python_run = StatisticalRunner(
            config_for("python", "inprocess"), SCHEDULE, GENS
        ).run(3)
        numpy_run = StatisticalRunner(
            config_for("numpy", "inprocess"), SCHEDULE, GENS
        ).run(3)
        assert (
            python_run.windows[0].approx_sum.value
            != numpy_run.windows[0].approx_sum.value
        )
        for run in (python_run, numpy_run):
            assert run.mean_approxiot_loss < 10.0
