"""Unit tests for error estimation (§III-D)."""

import math
import random

import pytest

from repro.core.error_bounds import (
    confidence_multiplier,
    estimate_mean_with_error,
    estimate_sum_with_error,
    sample_variance,
)
from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.core.whs import whsamp
from repro.errors import EstimationError


def batch(substream, weight, values):
    return WeightedBatch(
        substream, weight, [StreamItem(substream, float(v)) for v in values]
    )


class TestSampleVariance:
    def test_matches_textbook_value(self):
        assert sample_variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(32.0 / 7.0)
        )

    def test_singleton_is_zero(self):
        assert sample_variance([5.0]) == 0.0

    def test_empty_is_zero(self):
        assert sample_variance([]) == 0.0

    def test_constant_values_zero(self):
        assert sample_variance([3.0] * 10) == 0.0


class TestConfidenceMultiplier:
    def test_sigma_rule_exact(self):
        assert confidence_multiplier(0.68) == 1.0
        assert confidence_multiplier(0.95) == 2.0
        assert confidence_multiplier(0.997) == 3.0

    def test_general_quantile(self):
        # 95.45% two-sided is almost exactly 2 sigma.
        assert confidence_multiplier(0.9545) == pytest.approx(2.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(EstimationError):
            confidence_multiplier(1.5)
        with pytest.raises(EstimationError):
            confidence_multiplier(0.0)


class TestSumErrorBound:
    def test_unsampled_data_has_zero_error(self):
        """weight 1 + sampled == population -> FPC kills the variance."""
        theta = ThetaStore()
        theta.add(batch("a", 1.0, [1, 2, 3, 4]))
        result = estimate_sum_with_error(theta)
        assert result.value == pytest.approx(10.0)
        assert result.error == pytest.approx(0.0)

    def test_error_positive_when_sampled(self):
        theta = ThetaStore()
        theta.add(batch("a", 4.0, [1.0, 9.0, 5.0]))  # c=12, zeta=3
        result = estimate_sum_with_error(theta)
        assert result.error > 0
        assert result.variance > 0

    def test_interval_endpoints(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1.0, 3.0]))
        result = estimate_sum_with_error(theta, confidence=0.95)
        assert result.lower == result.value - result.error
        assert result.upper == result.value + result.error
        assert result.contains(result.value)

    def test_higher_confidence_wider_interval(self):
        theta = ThetaStore()
        theta.add(batch("a", 4.0, [1.0, 9.0, 5.0]))
        e68 = estimate_sum_with_error(theta, 0.68).error
        e95 = estimate_sum_with_error(theta, 0.95).error
        e997 = estimate_sum_with_error(theta, 0.997).error
        assert e68 < e95 < e997
        assert e95 == pytest.approx(2 * e68)
        assert e997 == pytest.approx(3 * e68)

    def test_empty_store_raises(self):
        with pytest.raises(EstimationError):
            estimate_sum_with_error(ThetaStore())

    def test_coverage_monte_carlo(self):
        """~95% of 2-sigma intervals should cover the true sum."""
        rng = random.Random(42)
        population = [StreamItem("s", rng.gauss(100, 15)) for _ in range(2000)]
        true_sum = sum(i.value for i in population)
        covered = 0
        trials = 300
        for _ in range(trials):
            result = whsamp(population, 200, rng=rng)
            theta = ThetaStore()
            theta.extend(result.batches)
            approx = estimate_sum_with_error(theta, 0.95)
            if approx.contains(true_sum):
                covered += 1
        # Allow slack: the CLT bound is asymptotic.
        assert covered / trials > 0.85

    def test_relative_error(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1.0, 3.0]))
        result = estimate_sum_with_error(theta)
        assert result.relative_error() == pytest.approx(
            abs(result.error / result.value)
        )

    def test_relative_error_zero_estimate_raises(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [0.0, 0.0]))
        result = estimate_sum_with_error(theta)
        with pytest.raises(EstimationError):
            result.relative_error()

    def test_str_formatting(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1.0, 3.0]))
        text = str(estimate_sum_with_error(theta, 0.95))
        assert "±" in text and "95" in text


class TestMeanErrorBound:
    def test_mean_value_matches_estimator(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [2.0, 4.0]))
        result = estimate_mean_with_error(theta)
        assert result.value == pytest.approx(3.0)

    def test_unsampled_mean_zero_error(self):
        theta = ThetaStore()
        theta.add(batch("a", 1.0, [1.0, 2.0, 3.0]))
        result = estimate_mean_with_error(theta)
        assert result.error == pytest.approx(0.0)

    def test_mean_variance_shrinks_with_sample_size(self):
        rng = random.Random(7)
        values_small = [rng.gauss(10, 3) for _ in range(10)]
        values_large = [rng.gauss(10, 3) for _ in range(500)]
        theta_small = ThetaStore()
        theta_small.add(batch("a", 100.0, values_small))
        theta_large = ThetaStore()
        theta_large.add(batch("a", 2.0, values_large))
        small = estimate_mean_with_error(theta_small)
        large = estimate_mean_with_error(theta_large)
        assert large.variance < small.variance

    def test_empty_store_raises(self):
        with pytest.raises(EstimationError):
            estimate_mean_with_error(ThetaStore())

    def test_sampled_items_counted(self):
        theta = ThetaStore()
        theta.add(batch("a", 2.0, [1.0, 2.0]))
        theta.add(batch("b", 3.0, [5.0]))
        result = estimate_mean_with_error(theta)
        assert result.sampled_items == 3
