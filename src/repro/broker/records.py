"""Record types and serialization for the pub/sub substrate.

Mirrors Kafka's data model: a :class:`Record` is a key/value pair with
a timestamp and optional headers; a :class:`ConsumedRecord` is the same
plus its position (topic, partition, offset) once read back from a log.
Values are arbitrary Python objects by default; a pluggable
:class:`Serde` pair exists so tests can exercise the byte-size
accounting used by the network simulator.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Record", "ConsumedRecord", "Serde", "JSON_SERDE", "PICKLE_SERDE"]


@dataclass(frozen=True, slots=True)
class Record:
    """A produced record, before it is assigned an offset.

    Attributes:
        key: Partitioning key (``None`` lets the producer round-robin).
        value: The payload.
        timestamp: Producer-assigned event time (seconds).
        headers: Optional string metadata, like Kafka record headers.
    """

    key: str | None
    value: Any
    timestamp: float = 0.0
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ConsumedRecord:
    """A record read from a partition log, with its position attached."""

    topic: str
    partition: int
    offset: int
    key: str | None
    value: Any
    timestamp: float
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def position(self) -> tuple[str, int, int]:
        """The (topic, partition, offset) coordinate of this record."""
        return (self.topic, self.partition, self.offset)


@dataclass(frozen=True, slots=True)
class Serde:
    """A serializer/deserializer pair for payload byte accounting."""

    serialize: Callable[[Any], bytes]
    deserialize: Callable[[bytes], Any]

    def size_of(self, value: Any) -> int:
        """Serialized size of a value in bytes."""
        return len(self.serialize(value))


def _json_ser(value: Any) -> bytes:
    return json.dumps(value, separators=(",", ":"), default=str).encode()


def _json_de(data: bytes) -> Any:
    return json.loads(data.decode())


JSON_SERDE = Serde(_json_ser, _json_de)
PICKLE_SERDE = Serde(pickle.dumps, pickle.loads)
