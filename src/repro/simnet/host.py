"""Simulated compute hosts with finite service rates.

A host processes items at ``service_rate`` items/second with a FIFO
queue. This is the mechanism behind the paper's throughput results:
the datacenter (root) host saturates when the offered load exceeds its
service rate, and sampling at edge layers reduces the load the root
must absorb, letting the whole system sustain a proportionally higher
source rate (Fig. 6) at lower end-to-end latency (Fig. 8).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simnet.clock import Clock
from repro.errors import ConfigurationError

__all__ = ["Host"]


class Host:
    """A host that serves work items at a fixed rate via the clock."""

    def __init__(self, name: str, clock: Clock, service_rate: float) -> None:
        if service_rate <= 0:
            raise ConfigurationError(
                f"service rate must be positive, got {service_rate}"
            )
        self.name = name
        self._clock = clock
        self._service_rate = float(service_rate)
        self._busy_until = 0.0
        self.items_processed = 0
        self.busy_time = 0.0

    @property
    def service_rate(self) -> float:
        """Items per second this host can process."""
        return self._service_rate

    @property
    def busy_until(self) -> float:
        """Virtual time at which the current queue drains."""
        return self._busy_until

    def queue_delay(self) -> float:
        """How long a new arrival would wait before service starts."""
        return max(0.0, self._busy_until - self._clock.now)

    def process(
        self,
        item_count: int,
        payload: Any,
        done: Callable[[Any], None],
    ) -> float:
        """Enqueue ``item_count`` items of work; call ``done`` when served.

        Returns the completion time. Work is FIFO behind whatever the
        host is already serving.
        """
        if item_count < 0:
            raise ConfigurationError(
                f"item count must be >= 0, got {item_count}"
            )
        now = self._clock.now
        start = max(now, self._busy_until)
        service_time = item_count / self._service_rate
        completion = start + service_time
        self._busy_until = completion
        self.items_processed += item_count
        self.busy_time += service_time
        self._clock.schedule_at(completion, lambda: done(payload))
        return completion

    def utilization(self, elapsed: float) -> float:
        """Fraction of the elapsed span the host spent serving."""
        if elapsed <= 0:
            raise ConfigurationError(f"elapsed must be positive, got {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def reset_counters(self) -> None:
        """Zero the work counters (queue state unchanged)."""
        self.items_processed = 0
        self.busy_time = 0.0
