"""Benchmark: end-to-end engine throughput, objects vs columnar plane.

Runs the statistical engine (all three strategies per window) at the
Fig. 6 workload — four equal-rate Gaussian sub-streams at the scale's
rate — on both data planes and every available sampling backend, and
reports sustained items/s. This is the headline number for the
columnar data plane: the same seeded run, the same sampled records,
with per-item object churn replaced by structure-of-arrays columns.

Two assertions gate regressions:

* at any scale (including CI's ``REPRO_BENCH_SCALE=quick`` smoke job)
  the columnar plane must sustain at least 0.9x the object plane's
  throughput, so a data-plane slowdown fails CI instead of silently
  landing;
* at bench scale the columnar plane must beat the object plane by at
  least 3x on the numpy backend;

and the two planes' seeded mean accuracy losses must agree (same
records sampled → same estimates).

The module also publishes the worker-scaling table for sharded
multi-process execution (1/2/4/8 shards over the columnar plane on the
same workload), with one row per shard transport where the host
supports both: the classic pipe codec and the zero-copy shared-memory
rings of :mod:`repro.engine.shm`, plus the measured bytes through the
Pipe per window for each. Throughput gates are host-aware — a
single-core runner cannot speed up by adding processes, so the sharded
>= 0.9x single-process smoke applies from 2 cores and the >=
2.5x-at-4-workers headline from 4, while shm must hold >= 0.9x pipe
throughput at every width on any host — and the shm transport must cut
bytes through the Pipe per window by >= 10x (descriptors only). The
accuracy gate (mean loss within the reported §III-D error bound, which
Eq. 8's exact count recovery keeps tight) applies everywhere, at every
worker count and transport.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import multiprocessing

from repro.core.fastpath import numpy_available
from repro.engine import shm as engine_shm
from repro.experiments.base import ExperimentScale, uniform_schedule
from repro.metrics.report import Table, format_bytes, format_rate
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.synthetic import paper_gaussian_substreams

#: Fig. 6's operating point on the throughput axis.
FRACTION = 0.1

#: Timing repetitions; the best run is reported so allocator noise and
#: first-call warmup do not flake the quick-scale CI assertion.
REPEATS = 3

#: Shard widths of the published worker-scaling table.
WORKER_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True, slots=True)
class PlanePoint:
    """Measured throughput of one (backend, data plane) combination."""

    backend: str
    data_plane: str
    items_per_second: float
    mean_loss_percent: float


def _measure(backend: str, data_plane: str, scale: ExperimentScale) -> PlanePoint:
    generators = {g.name: g for g in paper_gaussian_substreams()}
    schedule = uniform_schedule(scale.rate_scale)
    best = 0.0
    loss = 0.0
    for _ in range(REPEATS):
        config = PipelineConfig(
            sampling_fraction=FRACTION,
            seed=scale.seed,
            backend=backend,
            transport="inprocess",
            data_plane=data_plane,
        )
        runner = StatisticalRunner(config, schedule, generators)
        start = time.perf_counter()
        run = runner.run(scale.windows)
        elapsed = time.perf_counter() - start
        items = sum(window.items_emitted for window in run.windows)
        best = max(best, items / elapsed)
        loss = run.mean_approxiot_loss
    return PlanePoint(backend, data_plane, best, loss)


def run_engine_bench(scale: ExperimentScale) -> list[PlanePoint]:
    """Throughput of both planes on every available backend."""
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    return [
        _measure(backend, plane, scale)
        for backend in backends
        for plane in ("objects", "columnar")
    ]


def render_table(points: list[PlanePoint]) -> str:
    """The paper-style table for one measured sweep."""
    table = Table(
        "Engine throughput: objects vs columnar data plane (Fig. 6 "
        "workload, 10% fraction)",
        ["backend", "plane", "items/s", "speedup", "mean loss"],
    )
    baselines = {
        p.backend: p.items_per_second
        for p in points
        if p.data_plane == "objects"
    }
    for point in points:
        table.add_row(
            point.backend,
            point.data_plane,
            format_rate(point.items_per_second),
            f"{point.items_per_second / baselines[point.backend]:.1f}x",
            f"{point.mean_loss_percent:.3f}%",
        )
    return table.render()


def main(scale: ExperimentScale | None = None) -> str:
    """Print the engine-throughput and worker-scaling tables."""
    scale = scale if scale is not None else ExperimentScale.bench()
    text = render_table(run_engine_bench(scale))
    text += "\n\n" + render_scaling_table(run_worker_scaling(scale))
    print(text)
    return text


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """Measured behaviour of one (worker-shard width, transport) pair.

    ``transport`` is ``"-"`` on the single-process row (no shard IPC);
    the byte counters are the per-window means from
    :class:`~repro.engine.sharding.ShardIpcStats` (zero when there is
    no shard IPC to account).
    """

    workers: int
    transport: str
    items_per_second: float
    mean_loss_percent: float
    mean_bound_percent: float
    pipe_bytes_per_window: float
    theta_bytes_per_window: float
    restarts: int = 0


def _measure_workers(
    workers: int, scale: ExperimentScale, transport: str = "pipe"
) -> ScalingPoint:
    generators = {g.name: g for g in paper_gaussian_substreams()}
    schedule = uniform_schedule(scale.rate_scale)
    config = PipelineConfig(
        sampling_fraction=FRACTION,
        seed=scale.seed,
        backend="auto",
        transport="inprocess",
        data_plane="columnar",
        workers=workers,
        shard_transport=transport,
    )
    best = 0.0
    loss = bound = 0.0
    # One persistent runner: shard processes fork once and stay up, so
    # the timed region measures steady-state sampling throughput — the
    # regime the scaling claim is about — not process startup. The
    # warmup window pays the fork + per-shard pipeline build (and
    # first-call numpy warmup) before the clock starts, and each timed
    # run covers enough windows that the one request/collect IPC round
    # trip per run amortizes (at quick scale, 3 windows of work are
    # smaller than a pipe round trip — that would gate IPC latency,
    # not scaling).
    windows = max(scale.windows, 10)
    pipe_per_window = theta_per_window = 0.0
    restarts = 0
    with StatisticalRunner(config, schedule, generators) as runner:
        runner.run(1)  # warmup
        for _ in range(REPEATS):
            start = time.perf_counter()
            run = runner.run(windows)
            elapsed = time.perf_counter() - start
            items = sum(window.items_emitted for window in run.windows)
            best = max(best, items / elapsed)
            loss = run.mean_approxiot_loss
            bound = (
                100.0
                * sum(
                    window.approx_sum.error / abs(window.approx_sum.value)
                    for window in run.windows
                )
                / len(run.windows)
            )
        if workers > 1:
            # The sharded driver's IPC accounting, accumulated across
            # warmup + every repeat — per-window means are exact.
            stats = runner.engine.ipc_stats
            transport = stats.transport
            pipe_per_window = stats.pipe_bytes_per_window
            theta_per_window = stats.theta_bytes_per_window
            restarts = stats.restarts
        else:
            transport = "-"  # single process: no shard IPC at all
    return ScalingPoint(
        workers, transport, best, loss, bound,
        pipe_per_window, theta_per_window, restarts,
    )


def _shard_transports() -> list[str]:
    """The shard transports this host can actually run (pipe always)."""
    methods = multiprocessing.get_all_start_methods()
    start_method = "fork" if "fork" in methods else "spawn"
    transports = ["pipe"]
    if engine_shm.resolve_shard_transport("auto", start_method) == "shm":
        transports.append("shm")
    return transports


def run_worker_scaling(scale: ExperimentScale) -> list[ScalingPoint]:
    """Throughput, accuracy and IPC volume per (width, transport) pair.

    The single-process baseline is measured once; every sharded width
    is measured on each transport the host supports, so the published
    table is the pipe-vs-shm comparison at every shard count.
    """
    points = [_measure_workers(1, scale)]
    for workers in WORKER_COUNTS:
        if workers == 1:
            continue
        for transport in _shard_transports():
            points.append(_measure_workers(workers, scale, transport))
    return points


def render_scaling_table(points: list[ScalingPoint]) -> str:
    """The paper-style worker-scaling table for one measured sweep."""
    cores = os.cpu_count() or 1
    table = Table(
        "Worker scaling: sharded engine, columnar plane (Fig. 6 "
        "workload, 10% fraction)",
        ["workers", "transport", "host cores", "items/s", "speedup",
         "mean loss", "error bound", "pipe bytes/window", "restarts"],
    )
    baseline = points[0].items_per_second
    for point in points:
        table.add_row(
            str(point.workers),
            point.transport,
            str(cores),
            format_rate(point.items_per_second),
            f"{point.items_per_second / baseline:.2f}x",
            f"{point.mean_loss_percent:.3f}%",
            f"{point.mean_bound_percent:.3f}%",
            format_bytes(point.pipe_bytes_per_window)
            if point.workers > 1 else "-",
            str(point.restarts) if point.workers > 1 else "-",
        )
    return table.render()


def test_bench_engine(benchmark, bench_scale, results_sink):
    """Columnar ≥ objects everywhere; ≥ 3x on numpy at bench scale.

    One measured sweep feeds both the published table and the gating
    assertions, so the numbers in ``results.txt`` are exactly the
    numbers CI passed (or failed) on.
    """
    points = benchmark.pedantic(
        run_engine_bench, args=(bench_scale,), rounds=1, iterations=1
    )
    text = render_table(points)
    print(text)
    results_sink(text)

    by_key = {(p.backend, p.data_plane): p for p in points}
    at_bench = os.environ.get("REPRO_BENCH_SCALE", "bench") == "bench"
    for backend in {backend for backend, _ in by_key}:
        objects = by_key[(backend, "objects")]
        columnar = by_key[(backend, "columnar")]
        # Perf smoke (both scales): the columnar plane must never fall
        # behind the object plane; 0.9x tolerance absorbs timer noise.
        assert columnar.items_per_second >= 0.9 * objects.items_per_second
        # Seeded accuracy is plane-invariant (same records sampled).
        assert abs(columnar.mean_loss_percent - objects.mean_loss_percent) < 1e-6
        if at_bench and backend == "numpy":
            # The headline claim: ≥ 3x end-to-end at Fig. 6 scale.
            assert columnar.items_per_second >= 3.0 * objects.items_per_second


def test_bench_worker_scaling(benchmark, bench_scale, results_sink):
    """Sharded execution scales with cores and never loses accuracy.

    One measured sweep feeds the published table and the gates:

    * accuracy, every width and transport: Eq. 8 holds per shard, so
      the merged estimate's mean loss must sit within the run's own
      reported §III-D error bound — a sharding bug that broke weight
      or count propagation would blow straight through it;
    * throughput, host-aware: with >= 2 cores the 2-shard run must
      hold >= 0.9x the single-process rate (the CI smoke gate), and a
      bench-scale run on >= 4 cores must reach >= 2.5x at 4 shards;
      on any host (single-core included) the shm transport must hold
      >= 0.9x the pipe transport's throughput at every width;
    * IPC volume: where the host runs shm, each width's shm row must
      move >= 10x fewer bytes through the Pipe per window than its
      pipe row — the descriptors-only claim, measured not asserted
      from design.
    """
    points = benchmark.pedantic(
        run_worker_scaling, args=(bench_scale,), rounds=1, iterations=1
    )
    text = render_scaling_table(points)
    print(text)
    results_sink(text)

    by_key = {(point.workers, point.transport): point for point in points}
    for point in points:
        assert point.mean_loss_percent <= point.mean_bound_percent
    cores = os.cpu_count() or 1
    at_bench = os.environ.get("REPRO_BENCH_SCALE", "bench") == "bench"
    baseline = by_key[(1, "-")]
    sharded_widths = [width for width in WORKER_COUNTS if width > 1]
    transports = _shard_transports()
    if cores >= 2:
        for transport in transports:
            assert (
                by_key[(2, transport)].items_per_second
                >= 0.9 * baseline.items_per_second
            )
    if at_bench and cores >= 4:
        for transport in transports:
            assert (
                by_key[(4, transport)].items_per_second
                >= 2.5 * baseline.items_per_second
            )
    if "shm" in transports:
        for width in sharded_widths:
            pipe_point = by_key[(width, "pipe")]
            shm_point = by_key[(width, "shm")]
            # Host-aware perf gate: shm must never regress the pipe
            # transport, even on a single core where neither scales.
            assert (
                shm_point.items_per_second
                >= 0.9 * pipe_point.items_per_second
            )
            # The zero-copy claim: descriptors only through the Pipe.
            assert (
                pipe_point.pipe_bytes_per_window
                >= 10.0 * shm_point.pipe_bytes_per_window
            )
