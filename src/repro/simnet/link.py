"""Simulated network links with delay, bandwidth and FIFO queueing.

A link transfer experiences (i) queueing behind earlier transfers on
the same link, (ii) serialization delay ``bytes * 8 / rate``, and
(iii) propagation delay. The link keeps byte/message counters so the
experiments can report bandwidth consumption and saving (paper Fig. 7).
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.simnet.clock import Clock
from repro.simnet.netem import NetemConfig
from repro.errors import NetworkError

__all__ = ["Link"]


class Link:
    """A unidirectional point-to-point link driven by the shared clock."""

    def __init__(
        self,
        name: str,
        clock: Clock,
        config: NetemConfig,
        rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self._clock = clock
        self._config = config
        self._rng = rng if rng is not None else random.Random(hash(name) & 0xFFFF)
        self._wire_free_at = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_queueing_delay = 0.0

    @property
    def config(self) -> NetemConfig:
        """The shaping parameters of this link."""
        return self._config

    def reconfigure(self, config: NetemConfig) -> None:
        """Apply new shaping parameters (takes effect for new transfers)."""
        self._config = config

    def transfer(
        self,
        size_bytes: int,
        payload: Any,
        deliver: Callable[[Any], None],
    ) -> float | None:
        """Send a message; schedule ``deliver(payload)`` at arrival time.

        Returns the simulated arrival time, or ``None`` when netem loss
        drops the message (the drop still burns serialization time, as
        a lost packet does on a real wire). Transfers are FIFO: a
        message must wait for the wire to drain earlier messages
        (queueing), then occupies the wire for its serialization time,
        then propagates for the configured delay.
        """
        if size_bytes < 0:
            raise NetworkError(f"message size must be >= 0, got {size_bytes}")
        now = self._clock.now
        start = max(now, self._wire_free_at)
        self.total_queueing_delay += start - now
        serialization = self._config.serialization_delay(size_bytes)
        self._wire_free_at = start + serialization
        arrival = self._wire_free_at + self._config.delay_seconds
        self.bytes_sent += size_bytes
        if self._config.loss > 0.0 and self._rng.random() < self._config.loss:
            self.messages_dropped += 1
            return None
        self.messages_sent += 1
        self._clock.schedule_at(arrival, lambda: deliver(payload))
        return arrival

    def utilization(self, elapsed: float) -> float:
        """Fraction of capacity used over an elapsed wall-clock span."""
        if elapsed <= 0:
            raise NetworkError(f"elapsed must be positive, got {elapsed}")
        capacity_bytes = self._config.rate_bps * elapsed / 8.0
        return min(1.0, self.bytes_sent / capacity_bytes)

    def reset_counters(self) -> None:
        """Zero the byte/message counters (shaping state unchanged)."""
        self.bytes_sent = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.total_queueing_delay = 0.0
