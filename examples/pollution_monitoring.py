"""Case study: per-pollutant totals with adaptive sampling (paper §VI-B).

Answers the paper's Brasov query — "what is the total pollution value
of particulate matter, CO, SO2 and NO2 in every time window?" — using
the grouped SUM query, then demonstrates the adaptive feedback loop:
the analyst sets a relative-error budget and the controller adjusts
the sampling fraction window by window.

Run:  python examples/pollution_monitoring.py
"""

from repro.core.cost import AdaptiveErrorBudget
from repro.core.estimator import ThetaStore
from repro.core.items import StreamItem, WeightedBatch
from repro.experiments.base import ExperimentScale
from repro.experiments.fig11 import pollution_workload
from repro.metrics.report import Table
from repro.queries import PerSubstreamSumQuery
from repro.system import FeedbackDriver, PipelineConfig, StatisticalRunner


def grouped_query_demo(scale: ExperimentScale) -> None:
    """One window, reported per pollutant with individual bounds."""
    schedule, generators = pollution_workload(scale)
    config = PipelineConfig(sampling_fraction=0.2, seed=scale.seed)
    runner = StatisticalRunner(config, schedule, generators)
    outcome = runner.run_window()

    # Rebuild a Theta store from a second sampled window to show the
    # grouped query API (the runner reports the overall SUM itself).
    import random
    rng = random.Random(scale.seed)
    theta = ThetaStore()
    for substream, generator in generators.items():
        items = generator.generate(400, rng)
        theta.add(WeightedBatch(substream, 5.0, items[:80]))

    table = Table("Per-pollutant totals (grouped SUM query)",
                  ["pollutant", "approx total", "error (95%)"])
    grouped = PerSubstreamSumQuery().execute_grouped(theta)
    for substream in sorted(grouped):
        result = grouped[substream]
        table.add_row(
            substream.split("/")[1],
            f"{result.value:,.0f}",
            f"±{result.error:,.0f}",
        )
    print(table.render())
    print(f"\nwhole-window SUM loss at 20% fraction: "
          f"{outcome.approxiot_loss:.4f}%\n")


def adaptive_demo(scale: ExperimentScale) -> None:
    """Error-budget feedback: tighten sampling until the bound fits."""
    schedule, generators = pollution_workload(scale)
    config = PipelineConfig(sampling_fraction=0.02, seed=scale.seed)
    controller = AdaptiveErrorBudget(
        target_relative_error=0.002, initial_fraction=0.02
    )
    driver = FeedbackDriver(config, schedule, generators, controller)
    outcome = driver.run(8)

    table = Table("Adaptive feedback (target relative error 0.2%)",
                  ["window", "fraction used", "realized rel. error"])
    for index, (fraction, error) in enumerate(
        zip(outcome.fractions, outcome.relative_errors), start=1
    ):
        table.add_row(index, f"{fraction:.1%}", f"{100 * error:.4f}%")
    print(table.render())
    print(f"\nfinal fraction: {outcome.final_fraction:.1%}")


def main() -> None:
    scale = ExperimentScale(rate_scale=0.05, windows=5, seed=2014)
    grouped_query_demo(scale)
    adaptive_demo(scale)


if __name__ == "__main__":
    main()
