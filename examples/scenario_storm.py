"""A perfect storm: composing a custom dynamic-workload scenario.

Walks through everything the scenario engine can throw at a run at
once — a flash crowd ramping in while the population mix drifts, an
L1 edge node churning out mid-burst, and a lossy straggler uplink —
then runs it end-to-end and prints the per-window quality-over-time
table. Watch three things in the output:

* ``loss`` vs ``bound`` — ApproxIoT stays inside its reported error
  bound through the burst, the drift and the churn, because weights
  rescale wherever reservoirs overflow (Eqs. 1-2) and the Eq. 8 count
  invariant survives re-parenting;
* the windows where the degraded uplink *destroys* batches
  (``dropped`` > 0) or delivers them a window late — no estimator can
  stay inside its bound about data it never saw, so those windows
  spike, and recover the moment the link heals;
* ``srs loss`` — the coin-flip baseline wobbles an order of magnitude
  harder through the whole storm.

The same scenario runs unchanged on either sampling backend, either
data plane, the broker transport and any ``workers`` count — state is
a pure function of the window index, so every worker shard replays
the identical timeline.

Run:  python examples/scenario_storm.py
"""

from repro.experiments.base import gaussian_generators, uniform_schedule
from repro.scenarios import (
    LinkDegrade,
    NodeChurn,
    RateBurst,
    RateRamp,
    Scenario,
    SkewDrift,
)
from repro.system import PipelineConfig, ScenarioRunner


def build_storm() -> Scenario:
    """Every event type at once, staggered across 16 windows."""
    return Scenario(
        name="storm",
        description="flash crowd + skew drift + churn + lossy straggler",
        windows=16,
        events=(
            # The crowd arrives: ramp to 3x over two windows, hold,
            # then fall away.
            RateRamp(3, 5, 1.0, 3.0),
            RateBurst(5, 9, 3.0),
            RateRamp(9, 11, 3.0, 1.0),
            # Meanwhile the population drifts toward sub-stream A
            # (which SRS then over-represents while C and D thin out).
            SkewDrift(4, 12, to_shares={"A": 0.6, "B": 0.2, "C": 0.15,
                                        "D": 0.05}),
            # An L1 edge node dies mid-burst; its two sources re-parent
            # to the next live ancestor until it comes back.
            NodeChurn(6, 10, ("l1-1",)),
            # And two uplinks brown out: source-6 destroys 40% of its
            # batches; source-7 delivers every batch one window late.
            # (A single LinkDegrade combining loss= and delay_windows=
            # would drop first and delay the survivors.)
            LinkDegrade(7, 11, ("source-6",), loss=0.4),
            LinkDegrade(7, 11, ("source-7",), delay_windows=1),
        ),
    )


def main() -> None:
    scenario = build_storm()
    config = PipelineConfig(sampling_fraction=0.15, seed=23)
    schedule = uniform_schedule(scale=0.02)  # 500 items/s per sub-stream
    with ScenarioRunner(
        config, schedule, gaussian_generators(), scenario
    ) as runner:
        outcome = runner.run()
    print(outcome.report())
    print()
    print(outcome.summary())
    degraded = [w for w in outcome.windows if w.items_dropped > 0]
    if degraded:
        print(
            f"\nwindows with destroyed data: "
            f"{[w.window for w in degraded]} — loss spikes there are "
            f"the point: the estimator cannot bound what it never saw."
        )


if __name__ == "__main__":
    main()
