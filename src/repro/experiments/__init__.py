"""Experiment harness: one module per figure of the paper's evaluation.

Each ``figN`` module exposes ``run_*`` functions returning structured
points and a ``main(scale)`` printing the paper-style table;
:mod:`repro.experiments.figures` is the registry over all of them.
"""

from repro.experiments.base import ExperimentScale, PAPER_FRACTIONS

__all__ = ["ExperimentScale", "PAPER_FRACTIONS"]
