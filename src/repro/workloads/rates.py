"""Arrival-rate schedules, including the paper's Settings 1-3 (§V-D).

A rate schedule maps each sub-stream to items/second. The fluctuating-
rate experiment (Fig. 10(a)(b)) uses three settings over sub-streams
A, B, C, D:

* Setting1: (50k : 25k : 12.5k : 625)
* Setting2: (25k : 25k : 25k : 25k)
* Setting3: (625 : 12.5k : 25k : 50k)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import WorkloadError

__all__ = ["RateSchedule", "paper_rate_settings"]


@dataclass(frozen=True)
class RateSchedule:
    """Per-sub-stream arrival rates (items/second).

    Attributes:
        name: Human-readable label ("Setting1"...).
        rates: Sub-stream name -> items per second.
    """

    name: str
    rates: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.rates:
            raise WorkloadError("rate schedule needs at least one sub-stream")
        for substream, rate in self.rates.items():
            if rate < 0:
                raise WorkloadError(
                    f"rate for {substream!r} must be >= 0, got {rate}"
                )

    @property
    def total_rate(self) -> float:
        """Aggregate items/second across sub-streams."""
        return sum(self.rates.values())

    def counts_for_interval(self, interval_seconds: float) -> dict[str, int]:
        """Expected item counts per sub-stream over one interval."""
        if interval_seconds <= 0:
            raise WorkloadError(
                f"interval must be positive, got {interval_seconds}"
            )
        return {
            substream: int(round(rate * interval_seconds))
            for substream, rate in self.rates.items()
        }

    def scaled(self, factor: float) -> "RateSchedule":
        """A copy with every rate multiplied by ``factor``."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return RateSchedule(
            f"{self.name}x{factor:g}",
            {substream: rate * factor for substream, rate in self.rates.items()},
        )

    def split(self, shards: int) -> "list[RateSchedule]":
        """Equal per-shard shares of this schedule (§III-E sharding).

        Every sub-stream's rate is divided evenly across ``shards``
        schedules, matching the paper's assumption that each worker
        node handles an equal portion of every sub-stream's items. The
        shares sum back to the original schedule exactly (one division
        per rate, identical across shards), so a sharded run offers
        the same aggregate load as the single-process run it shards.
        """
        if shards <= 0:
            raise WorkloadError(f"shard count must be >= 1, got {shards}")
        if shards == 1:
            return [self]
        return [
            RateSchedule(
                f"{self.name}[shard {index + 1}/{shards}]",
                {s: rate / shards for s, rate in self.rates.items()},
            )
            for index in range(shards)
        ]


def paper_rate_settings(scale: float = 1.0) -> list[RateSchedule]:
    """The three fluctuating-rate settings of §V-D.

    ``scale`` shrinks the absolute rates for laptop-sized runs while
    preserving the ratios that drive the experiment's shape.
    """
    settings = [
        RateSchedule(
            "Setting1", {"A": 50_000.0, "B": 25_000.0, "C": 12_500.0, "D": 625.0}
        ),
        RateSchedule(
            "Setting2", {"A": 25_000.0, "B": 25_000.0, "C": 25_000.0, "D": 25_000.0}
        ),
        RateSchedule(
            "Setting3", {"A": 625.0, "B": 12_500.0, "C": 25_000.0, "D": 50_000.0}
        ),
    ]
    if scale == 1.0:
        return settings
    return [schedule.scaled(scale) for schedule in settings]
