"""Property-based tests (hypothesis) for the cost/allocation layer.

The invariants the adaptive budget controllers lean on:

* :class:`AdaptiveErrorBudget` keeps its fraction inside
  ``[min_fraction, 1]`` under any observation sequence, and responds
  monotonically — an error above target never shrinks the fraction, an
  error comfortably below never grows it;
* every ``getSampleSize`` policy conserves the budget: totals add up
  to ``sample_size`` whenever the budget covers the stratum count
  (for the cap-aware fills, to ``min(sample_size, sum(max(1, c_i)))``),
  with the one-slot floor intact;
* :func:`neyman_factors` yields positive mean-1 tilt factors whose
  order follows the variances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.cost import AdaptiveErrorBudget, neyman_factors
from repro.core.stratified import (
    allocate_equal,
    allocate_fair_fill,
    allocate_proportional,
    allocate_weighted,
)
from repro.errors import ConfigurationError

substream_names = st.sampled_from(["a", "b", "c", "d", "e"])
counts_strategy = st.dictionaries(
    substream_names, st.integers(0, 10_000), min_size=1, max_size=5
)
errors_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=30,
)


def make_budget(target, initial, min_fraction):
    return AdaptiveErrorBudget(
        target, initial_fraction=initial, min_fraction=min_fraction
    )


# ---------------------------------------------------------------- fraction


@given(target=st.floats(min_value=1e-6, max_value=1.0),
       initial=st.floats(min_value=0.01, max_value=1.0),
       min_fraction=st.floats(min_value=0.001, max_value=0.01),
       errors=errors_strategy)
@settings(max_examples=200, deadline=None)
def test_fraction_stays_clamped(target, initial, min_fraction, errors):
    """The fraction never leaves [min_fraction, 1] under any feedback."""
    budget = make_budget(target, initial, min_fraction)
    for error in errors:
        fraction = budget.observe(error)
        assert min_fraction <= fraction <= 1.0
    assert len(budget.history) == len(errors) + 1


@given(target=st.floats(min_value=1e-6, max_value=1.0),
       initial=st.floats(min_value=0.01, max_value=1.0),
       errors=errors_strategy,
       probe=st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=200, deadline=None)
def test_fraction_response_is_monotone(target, initial, errors, probe):
    """Error above target never shrinks; comfortably below never grows.

    Whatever state a feedback history left the controller in, the next
    observation moves the fraction in the direction §IV-B prescribes.
    """
    budget = make_budget(target, initial, min_fraction=0.001)
    for error in errors:
        budget.observe(error)
    before = budget.fraction
    after = budget.observe(probe)
    if probe > target:
        assert after >= before
    elif probe < target * 0.5:  # the controller's default slack
        assert after <= before
    else:
        assert after == before


def test_negative_error_rejected():
    budget = make_budget(0.05, 0.1, 0.01)
    with pytest.raises(ConfigurationError):
        budget.observe(-0.01)


# -------------------------------------------------------------- allocation


@given(budget=st.integers(1, 500), counts=counts_strategy)
@settings(max_examples=200, deadline=None)
def test_equal_allocation_conserves(budget, counts):
    alloc = allocate_equal(budget, counts)
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())
    if budget >= len(counts):
        assert sum(alloc.values()) == budget


@given(budget=st.integers(1, 500), counts=counts_strategy)
@settings(max_examples=200, deadline=None)
def test_proportional_allocation_conserves(budget, counts):
    alloc = allocate_proportional(budget, counts)
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())
    if budget >= len(counts):
        assert sum(alloc.values()) == budget


@given(budget=st.integers(1, 500), counts=counts_strategy)
@settings(max_examples=200, deadline=None)
def test_fair_fill_conserves_up_to_caps(budget, counts):
    """Fair fill spends the whole budget unless the caps run out first."""
    alloc = allocate_fair_fill(budget, counts)
    caps = {s: max(1, c) for s, c in counts.items()}
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())
    if budget >= len(counts):
        assert sum(alloc.values()) == min(budget, sum(caps.values()))


@given(budget=st.integers(1, 500), counts=counts_strategy,
       weights=st.dictionaries(
           substream_names,
           st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False),
           max_size=5,
       ))
@settings(max_examples=300, deadline=None)
def test_weighted_allocation_conserves_up_to_caps(budget, counts, weights):
    """The weighted fill keeps every fair-fill conservation guarantee.

    This is the policy the ``variance_aware`` controller installs with
    arbitrary count*deviation weights, so it must conserve the total
    (budget moves, it is never bought or lost), respect the one-slot
    floor, and never allocate a stratum more than it can fill.
    """
    alloc = allocate_weighted(budget, counts, weights)
    caps = {s: max(1, c) for s, c in counts.items()}
    assert set(alloc) == set(counts)
    assert all(v >= 1 for v in alloc.values())
    assert all(alloc[s] <= caps[s] for s in alloc)
    if budget >= len(counts):
        assert sum(alloc.values()) == min(budget, sum(caps.values()))


@given(budget=st.integers(1, 500), counts=counts_strategy)
@settings(max_examples=100, deadline=None)
def test_weighted_flat_weights_spend_like_fair_fill(budget, counts):
    """Neutral (all-1) weights spend exactly what fair fill spends."""
    flat = allocate_weighted(budget, counts, {})
    fair = allocate_fair_fill(budget, counts)
    assert sum(flat.values()) == sum(fair.values())


# ----------------------------------------------------------------- neyman


@given(variances=st.dictionaries(
    substream_names,
    st.floats(min_value=0.0, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=5,
))
@settings(max_examples=200, deadline=None)
def test_neyman_factors_positive_mean_one(variances):
    factors = neyman_factors(variances)
    assert set(factors) == set(variances)
    assert all(f > 0 for f in factors.values())
    mean = sum(factors.values()) / len(factors)
    assert mean == pytest.approx(1.0)


@given(variances=st.dictionaries(
    substream_names,
    st.floats(min_value=1e-9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=5,
))
@settings(max_examples=200, deadline=None)
def test_neyman_factors_order_follows_variance(variances):
    """Higher variance never gets a smaller deviation factor."""
    factors = neyman_factors(variances)
    ranked = sorted(variances, key=variances.get)
    for lower, higher in zip(ranked, ranked[1:]):
        assert factors[lower] <= factors[higher] + 1e-12


def test_neyman_factors_all_zero_is_neutral():
    assert neyman_factors({"a": 0.0, "b": 0.0}) == {"a": 1.0, "b": 1.0}


def test_neyman_factors_zero_stratum_gets_floor_not_zero():
    factors = neyman_factors({"quiet": 0.0, "loud": 100.0})
    assert factors["quiet"] > 0
    assert factors["quiet"] <= factors["loud"]


def test_neyman_factors_negative_variance_rejected():
    with pytest.raises(ConfigurationError):
        neyman_factors({"a": -1.0})
