"""``tc``-style traffic shaping configuration.

The paper emulates its WAN with the Linux ``tc`` tool: round-trip
delays of 20/40/80 ms between adjacent layers and 1 Gbps links. A
:class:`NetemConfig` captures the same two knobs (propagation delay and
rate limit) and converts between the paper's RTT figures and the
one-way delays our links apply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["NetemConfig", "PAPER_WAN"]


@dataclass(frozen=True, slots=True)
class NetemConfig:
    """Delay/rate/loss shaping for one link direction.

    Attributes:
        delay_ms: One-way propagation delay in milliseconds.
        rate_bps: Link capacity in bits per second.
        loss: Probability that a message is dropped on the wire
            (``tc netem loss``-style). Defaults to a lossless link, as
            in the paper's testbed.
    """

    delay_ms: float
    rate_bps: float
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_ms < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay_ms}")
        if self.rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate_bps}")
        if not 0.0 <= self.loss < 1.0:
            raise ConfigurationError(f"loss must be in [0, 1), got {self.loss}")

    @classmethod
    def from_rtt(
        cls, rtt_ms: float, rate_bps: float, loss: float = 0.0
    ) -> "NetemConfig":
        """Build from a round-trip time (one-way delay = RTT / 2)."""
        return cls(delay_ms=rtt_ms / 2.0, rate_bps=rate_bps, loss=loss)

    @property
    def delay_seconds(self) -> float:
        """One-way delay in seconds."""
        return self.delay_ms / 1000.0

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` onto the wire at this rate."""
        if size_bytes < 0:
            raise ConfigurationError(f"size must be >= 0, got {size_bytes}")
        return size_bytes * 8.0 / self.rate_bps


#: The paper's WAN settings (§V-A): RTTs of 20/40/80 ms between layers,
#: every link 1 Gbps.
PAPER_WAN: dict[str, NetemConfig] = {
    "source_to_l1": NetemConfig.from_rtt(20.0, 1e9),
    "l1_to_l2": NetemConfig.from_rtt(40.0, 1e9),
    "l2_to_root": NetemConfig.from_rtt(80.0, 1e9),
}
