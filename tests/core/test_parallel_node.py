"""Unit tests for the §III-E parallel sampling node."""

import random

import pytest

from repro.core.estimator import ThetaStore, estimate_sum
from repro.core.items import StreamItem
from repro.core.node import RootNode
from repro.core.worker import ParallelSamplingNode
from repro.errors import SamplingError


def make_items(substream, values):
    return [StreamItem(substream, float(v)) for v in values]


class TestParallelSamplingNode:
    def test_forwards_one_batch_per_worker(self):
        outbox = []
        node = ParallelSamplingNode(
            "edge", per_substream_capacity=40, worker_count=4,
            forward=outbox.append, rng=random.Random(1),
        )
        node.receive_raw(make_items("s", range(400)))
        node.close_interval()
        assert len(outbox) == 4
        assert all(len(batch) == 10 for batch in outbox)

    def test_count_invariant_over_workers(self):
        outbox = []
        node = ParallelSamplingNode(
            "edge", 40, 4, outbox.append, rng=random.Random(2)
        )
        node.receive_raw(make_items("s", range(1000)))
        node.close_interval()
        recovered = sum(batch.estimated_count for batch in outbox)
        assert recovered == pytest.approx(1000.0)

    def test_input_weights_compose(self):
        outbox = []
        node = ParallelSamplingNode(
            "edge", 20, 2, outbox.append, rng=random.Random(3)
        )
        node.observe_weights({"s": 2.0})
        node.receive_raw(make_items("s", range(100)))
        node.close_interval()
        recovered = sum(batch.estimated_count for batch in outbox)
        assert recovered == pytest.approx(200.0)

    def test_multiple_substreams_have_separate_pools(self):
        outbox = []
        node = ParallelSamplingNode(
            "edge", 10, 2, outbox.append, rng=random.Random(4)
        )
        node.receive_raw(make_items("a", range(50)) + make_items("b", range(50)))
        node.close_interval()
        assert {batch.substream for batch in outbox} == {"a", "b"}

    def test_idle_interval_forwards_nothing(self):
        outbox = []
        node = ParallelSamplingNode("edge", 10, 2, outbox.append)
        node.close_interval()
        assert outbox == []
        assert node.intervals_processed == 1

    def test_chains_into_root_node(self):
        """Parallel edge + root: estimate matches the ground truth."""
        rng = random.Random(5)
        root = RootNode("root", 200, rng=rng)
        node = ParallelSamplingNode(
            "edge", 400, 4, root.receive, rng=rng
        )
        values = [rng.gauss(50, 5) for _ in range(4000)]
        node.receive_raw(make_items("s", values))
        node.close_interval()
        root.close_interval()
        result = root.run_query()
        assert result.estimated_items == pytest.approx(4000.0)
        assert result.sum.value == pytest.approx(sum(values), rel=0.05)

    def test_unbiased_across_trials(self):
        rng = random.Random(6)
        values = [rng.gauss(100, 20) for _ in range(2000)]
        true_sum = sum(values)
        estimates = []
        for trial in range(60):
            outbox = []
            node = ParallelSamplingNode(
                "edge", 200, 4, outbox.append, rng=random.Random(trial)
            )
            node.receive_raw(make_items("s", values))
            node.close_interval()
            theta = ThetaStore()
            theta.extend(outbox)
            estimates.append(estimate_sum(theta))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(true_sum, rel=0.02)

    def test_validation(self):
        with pytest.raises(SamplingError):
            ParallelSamplingNode("edge", 3, 4, lambda b: None)
