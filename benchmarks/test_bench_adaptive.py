"""Adaptive budget controller benchmarks (the §IV-B loop, in-run).

Publishes the adaptive-vs-static quality matrix to ``results.txt``:
at *equal total budget*, the ``variance_aware`` controller's Neyman
reallocation beats the static ``getSampleSize`` split at every probed
fraction on at least 3 built-in scenarios, and the ``adaptive_fraction``
controller visibly sheds budget down to its error target without
breaking the Eq. 9 result-plus-error contract. A third table shows the
quality guarantees surviving both sampling backends and worker-sharded
execution (controller decisions replayed from broadcast observations).
"""

from dataclasses import replace

from repro.core.fastpath import numpy_available
from repro.experiments.base import (
    base_config,
    gaussian_generators,
    uniform_schedule,
)
from repro.metrics.report import Table
from repro.scenarios import get_scenario, scenario_names
from repro.system.scenarios import ScenarioRunner

#: Equal-total-budget comparison fractions (the paper's low operating
#: points, where allocation quality dominates).
FRACTIONS = (0.05, 0.1, 0.2)


def run_scenario(name, scale, fraction, controller, workers=1,
                 backend=None):
    scale = replace(
        scale, budget_controller=controller, workers=workers,
        **({"backend": backend} if backend else {}),
    )
    config = base_config(fraction, scale)
    with ScenarioRunner(
        config, uniform_schedule(scale.rate_scale), gaussian_generators(),
        get_scenario(name),
    ) as runner:
        return runner.run()


def test_bench_adaptive_vs_static(benchmark, bench_scale, results_sink):
    """Quality-over-time matrix: Neyman reallocation vs static split."""

    def run():
        cells = {}
        for name in scenario_names():
            for fraction in FRACTIONS:
                static = run_scenario(name, bench_scale, fraction, "static")
                adaptive = run_scenario(
                    name, bench_scale, fraction, "variance_aware"
                )
                cells[name, fraction] = (
                    static.mean_approxiot_loss,
                    adaptive.mean_approxiot_loss,
                    adaptive.mean_bound_pct,
                )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Adaptive budget controller vs static split (equal total budget)",
        ["scenario", "fraction", "static loss", "variance-aware loss",
         "adaptive bound", "winner"],
    )
    winners = []
    for name in scenario_names():
        swept = True
        for fraction in FRACTIONS:
            static, adaptive, bound = cells[name, fraction]
            if adaptive >= static:
                swept = False
            table.add_row(
                name, f"{fraction:.2f}", f"{static:.4f}%",
                f"{adaptive:.4f}%", f"{bound:.4f}%",
                "variance_aware" if adaptive < static else "static",
            )
        if swept:
            winners.append(name)
    results_sink(table.render())
    # The PR's headline gate: the adaptive controller sweeps every
    # probed fraction on at least 3 of the built-in scenarios.
    assert len(winners) >= 3, (
        f"variance_aware swept every fraction only on {winners}"
    )


def test_bench_adaptive_fraction_trace(benchmark, bench_scale, results_sink):
    """The fraction controller sheds budget toward its error target."""

    def run():
        adaptive = run_scenario(
            "drift", bench_scale, 0.2, "adaptive_fraction"
        )
        static = run_scenario("drift", bench_scale, 0.2, "static")
        return adaptive, static

    adaptive, static = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Adaptive fraction controller — budget trace (drift, f=0.2)",
        ["window", "static budget", "adaptive budget", "loss", "bound"],
    )
    for sw, aw in zip(static.windows, adaptive.windows):
        table.add_row(
            aw.window, sw.budget, aw.budget,
            f"{aw.approxiot_loss:.4f}%", f"{aw.bound_pct:.4f}%",
        )
    results_sink(table.render())
    budgets = [w.budget for w in adaptive.windows]
    # At a rich fraction the bound sits far below the 5% target: the
    # controller starts at the static budget and only ever sheds.
    assert budgets[0] == static.windows[0].budget
    assert all(b >= a for b, a in zip(budgets, budgets[1:]))
    assert budgets[-1] < budgets[0]
    assert adaptive.mean_approxiot_loss <= adaptive.mean_bound_pct


def test_bench_adaptive_backends_and_sharding(
    benchmark, bench_scale, results_sink
):
    """The quality contract survives backends and worker sharding."""
    backends = ["python"] + (["numpy"] if numpy_available() else [])

    def run():
        rows = {}
        for backend in backends:
            for workers in (1, 2):
                outcome = run_scenario(
                    "drift", bench_scale, 0.1, "variance_aware",
                    workers=workers, backend=backend,
                )
                rows[backend, workers] = (
                    outcome.mean_approxiot_loss, outcome.mean_bound_pct
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Variance-aware controller across backends and shards "
        "(drift, f=0.1)",
        ["backend", "workers", "mean loss", "mean bound", "in bound"],
    )
    for (backend, workers), (loss, bound) in rows.items():
        table.add_row(
            backend, workers, f"{loss:.4f}%", f"{bound:.4f}%",
            "yes" if loss <= bound else "NO",
        )
        assert loss <= bound, (
            f"{backend} workers={workers}: adaptive loss {loss:.4f}% "
            f"exceeds the reported bound {bound:.4f}%"
        )
    results_sink(table.render())
