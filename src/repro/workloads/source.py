"""Data sources: objects that emit item batches per interval.

A :class:`Source` ties a value generator (Gaussian, Poisson, taxi,
pollution, mixture) to an arrival rate, producing the per-interval item
batches that the pipeline's bottom layer ingests. Sources are how the
experiments express "8 source nodes producing the input data stream"
and the fluctuating-rate settings.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.core.items import StreamItem
from repro.errors import WorkloadError
from repro.workloads.rates import RateSchedule

__all__ = ["Source", "ItemGenerator", "sources_from_schedule"]


class ItemGenerator(Protocol):
    """Anything that can generate ``count`` items at a timestamp."""

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        """Produce a batch of items."""
        ...  # pragma: no cover - protocol


class Source:
    """One logical data source with a fixed arrival rate."""

    def __init__(
        self,
        name: str,
        generator: ItemGenerator,
        rate_per_second: float,
        *,
        rng: random.Random | None = None,
    ) -> None:
        if rate_per_second < 0:
            raise WorkloadError(
                f"rate must be >= 0, got {rate_per_second}"
            )
        self.name = name
        self._generator = generator
        self.rate_per_second = float(rate_per_second)
        self._rng = rng if rng is not None else random.Random()
        self.items_emitted = 0

    def emit_interval(
        self, interval_start: float, interval_seconds: float
    ) -> list[StreamItem]:
        """Produce this source's batch for one interval.

        Items get emission timestamps spread uniformly over the
        interval so latency accounting sees realistic in-interval
        arrival spread.
        """
        if interval_seconds <= 0:
            raise WorkloadError(
                f"interval must be positive, got {interval_seconds}"
            )
        count = int(round(self.rate_per_second * interval_seconds))
        if count == 0:
            return []
        batch = self._generator.generate(count, self._rng, interval_start)
        spread: list[StreamItem] = []
        for index, item in enumerate(batch):
            offset = interval_seconds * (index + 1) / (count + 1)
            spread.append(
                StreamItem(
                    item.substream,
                    item.value,
                    interval_start + offset,
                    item.size_bytes,
                )
            )
        self.items_emitted += len(spread)
        return spread


class _CallableGenerator:
    """Adapter from a plain callable to the ItemGenerator protocol."""

    def __init__(
        self,
        fn: Callable[[int, random.Random, float], list[StreamItem]],
    ) -> None:
        self._fn = fn

    def generate(
        self, count: int, rng: random.Random, emitted_at: float = 0.0
    ) -> list[StreamItem]:
        return self._fn(count, rng, emitted_at)


def sources_from_schedule(
    schedule: RateSchedule,
    generators: dict[str, ItemGenerator],
    *,
    seed: int = 0,
) -> list[Source]:
    """One source per sub-stream of a rate schedule.

    Raises :class:`WorkloadError` when the schedule references a
    sub-stream with no generator.
    """
    sources: list[Source] = []
    seed_rng = random.Random(seed)
    for substream, rate in schedule.rates.items():
        if substream not in generators:
            raise WorkloadError(
                f"no generator supplied for sub-stream {substream!r}"
            )
        sources.append(
            Source(
                f"source-{substream}",
                generators[substream],
                rate,
                rng=random.Random(seed_rng.getrandbits(64)),
            )
        )
    return sources
