"""Unit tests for the event-time windowed root."""

import random

import pytest

from repro.core.items import StreamItem, WeightedBatch
from repro.core.whs import whsamp
from repro.errors import PipelineError
from repro.streams.windowing import HoppingWindow, TumblingWindow
from repro.system.windowed import WindowedRoot


def batch(substream, weight, pairs):
    """pairs: (value, emitted_at) tuples."""
    return WeightedBatch(
        substream,
        weight,
        [StreamItem(substream, float(v), t) for v, t in pairs],
    )


class TestWindowRouting:
    def test_items_split_by_event_time(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 2.0, [(1, 0.2), (2, 0.8), (3, 1.3)]))
        assert root.open_windows == [(0.0, 1.0), (1.0, 2.0)]

    def test_windows_emit_at_watermark(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 1.0, [(5, 0.5), (7, 1.5)]))
        results = root.advance_watermark(1.0)
        assert len(results) == 1
        assert results[0].window == (0.0, 1.0)
        assert results[0].sum.value == pytest.approx(5.0)
        # Second window still open.
        assert root.open_windows == [(1.0, 2.0)]

    def test_flush_emits_everything(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 1.0, [(1, 0.1), (2, 1.1), (3, 2.1)]))
        results = root.flush()
        assert [r.window for r in results] == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 3.0)
        ]

    def test_late_item_for_emitted_window_rejected(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 1.0, [(1, 0.5)]))
        root.advance_watermark(1.0)
        with pytest.raises(PipelineError):
            root.receive(batch("s", 1.0, [(9, 0.7)]))

    def test_results_ordered_by_window_start(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 1.0, [(1, 2.5), (2, 0.5), (3, 1.5)]))
        results = root.advance_watermark(10.0)
        starts = [r.window[0] for r in results]
        assert starts == sorted(starts)


class TestWindowedEstimates:
    def test_weighted_sum_per_window(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 3.0, [(10, 0.2), (20, 0.4)]))
        root.receive(batch("t", 2.0, [(100, 0.6)]))
        result = root.advance_watermark(1.0)[0]
        assert result.sum.value == pytest.approx(3 * 30 + 2 * 100)
        assert result.estimated_items == pytest.approx(3 * 2 + 2 * 1)

    def test_sampled_then_windowed_recovers_per_window_sums(self):
        """End-to-end: sample a 4-window stream, route to event windows."""
        rng = random.Random(8)
        items = []
        exact = {w: 0.0 for w in range(4)}
        for w in range(4):
            for _ in range(2_000):
                value = rng.gauss(100, 10)
                exact[w] += value
                items.append(StreamItem("s", value, w + rng.random()))
        sampled = whsamp(items, 2_000, rng=rng)
        root = WindowedRoot(TumblingWindow(1.0))
        for out in sampled.batches:
            root.receive(out)
        results = root.flush()
        assert len(results) == 4
        for result in results:
            start = int(result.window[0])
            assert result.sum.value == pytest.approx(exact[start], rel=0.05)

    def test_hopping_windows_overlap_items(self):
        root = WindowedRoot(HoppingWindow(size=2.0, hop=1.0))
        root.receive(batch("s", 1.0, [(10, 1.5)]))
        results = root.flush()
        # The item at t=1.5 belongs to windows [0,2) and [1,3).
        windows = [r.window for r in results]
        assert (0.0, 2.0) in windows
        assert (1.0, 3.0) in windows
        for result in results:
            assert result.sum.value == pytest.approx(10.0)

    def test_watermark_tracks_item_times(self):
        root = WindowedRoot(TumblingWindow(1.0))
        root.receive(batch("s", 1.0, [(1, 3.7)]))
        assert root.watermark == 3.7
