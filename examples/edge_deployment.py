"""Deployment comparison: ApproxIoT vs SRS vs native on a simulated WAN.

Places the paper's 4-layer tree (8 sources, 4+2 edge nodes, 1 root)
onto the discrete-event substrate with the paper's tc settings
(20/40/80 ms RTTs, 1 Gbps links) and a saturating input rate, then
reports throughput, end-to-end latency, realized sampling fraction and
inter-layer bandwidth for the three systems.

Run:  python examples/edge_deployment.py
"""

from repro.experiments.base import (
    ExperimentScale,
    gaussian_generators,
    saturating_placement,
    uniform_schedule,
)
from repro.metrics.report import Table, format_rate
from repro.system import DeploymentSimulator, ExecutionMode, PipelineConfig


def main() -> None:
    scale = ExperimentScale(rate_scale=0.1, seed=99)
    schedule = uniform_schedule(scale.rate_scale)
    placement = saturating_placement(schedule)
    generators = gaussian_generators()

    table = Table(
        "Simulated deployment at a saturating input (10% fraction, 1 s window)",
        ["system", "throughput", "mean latency", "realized fraction",
         "inter-layer MB"],
    )
    for mode in (ExecutionMode.APPROXIOT, ExecutionMode.SRS,
                 ExecutionMode.NATIVE):
        fraction = 1.0 if mode == ExecutionMode.NATIVE else 0.1
        config = PipelineConfig(
            sampling_fraction=fraction,
            window_seconds=1.0,
            mode=mode,
            placement=placement,
            seed=scale.seed,
            # Batches ride broker topics fed over the simulated WAN
            # links; "broker" instead would model an ideal (free)
            # network for ablations.
            transport="simnet",
        )
        simulator = DeploymentSimulator(
            config, schedule, generators, n_windows=10
        )
        report = simulator.run()
        inter_layer_mb = sum(report.boundary_bytes[1:]) / 1e6
        table.add_row(
            mode,
            format_rate(report.throughput_items_per_second),
            f"{report.mean_latency_seconds:.2f} s",
            f"{report.realized_fraction:.1%}",
            f"{inter_layer_mb:.2f}",
        )
    print(table.render())
    print("\nThe WAN uses the paper's tc settings: 20/40/80 ms RTT "
          "between layers, 1 Gbps links.")


if __name__ == "__main__":
    main()
