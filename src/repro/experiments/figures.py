"""Registry mapping every paper figure to its experiment entry point.

Run everything with::

    python -m repro.experiments.figures

or individual figures via ``repro.experiments.figN.main()``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.experiments import fig5, fig6, fig7, fig8, fig9, fig10, fig11
from repro.experiments.base import ExperimentScale

__all__ = ["FIGURES", "run_figure", "run_all"]

#: Figure id -> (description, entry point).
FIGURES: dict[str, tuple[str, Callable[..., str]]] = {
    "fig5": ("Accuracy loss vs sampling fraction (Gaussian/Poisson)", fig5.main),
    "fig6": ("Throughput vs sampling fraction", fig6.main),
    "fig7": ("Bandwidth saving vs sampling fraction", fig7.main),
    "fig8": ("Latency vs sampling fraction", fig8.main),
    "fig9": ("Latency vs window size", fig9.main),
    "fig10": ("Accuracy under fluctuating rates and skew", fig10.main),
    "fig11": ("Real-world case studies (taxi, pollution)", fig11.main),
}


def run_figure(figure_id: str, scale: ExperimentScale | None = None) -> str:
    """Run one figure's experiment by id."""
    try:
        _description, entry = FIGURES[figure_id]
    except KeyError:
        raise ReproError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    return entry(scale)


def run_all(scale: ExperimentScale | None = None) -> dict[str, str]:
    """Run every figure; return the rendered tables by id."""
    return {
        figure_id: run_figure(figure_id, scale) for figure_id in FIGURES
    }


if __name__ == "__main__":  # pragma: no cover
    run_all()
