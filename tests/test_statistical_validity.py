"""Statistical validity tests: the numbers behind the error bounds.

These go beyond unit behaviour: chi-square uniformity for the
reservoirs, unbiasedness of the end-to-end tree estimate, and the
advertised coverage of the confidence intervals. Tolerances are loose
enough to keep the suite deterministic-ish under seeded RNGs.
"""

import random
from collections import Counter

import pytest

scipy_stats = pytest.importorskip(
    "scipy.stats", reason="statistical validity checks need scipy"
)

from repro.core.reservoir import ReservoirSampler, SkipAheadReservoirSampler
from repro.system.config import PipelineConfig
from repro.system.statistical import StatisticalRunner
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "validity", {"A": 500.0, "B": 500.0, "C": 500.0, "D": 500.0}
)


class TestReservoirUniformity:
    def _chi_square_pvalue(self, sampler_cls, seed, capacity=10,
                           stream_len=50, trials=3000):
        counts = Counter()
        rng = random.Random(seed)
        for _ in range(trials):
            sampler = sampler_cls(capacity, rng)
            sampler.extend(range(stream_len))
            counts.update(sampler.sample())
        observed = [counts[i] for i in range(stream_len)]
        expected = trials * capacity / stream_len
        statistic = sum((o - expected) ** 2 / expected for o in observed)
        return float(scipy_stats.chi2.sf(statistic, df=stream_len - 1))

    def test_algorithm_r_uniform(self):
        pvalue = self._chi_square_pvalue(ReservoirSampler, seed=101)
        assert pvalue > 0.01

    def test_skip_ahead_uniform(self):
        pvalue = self._chi_square_pvalue(SkipAheadReservoirSampler, seed=102)
        assert pvalue > 0.01


class TestTreeEstimator:
    def test_unbiased_over_many_windows(self):
        config = PipelineConfig(sampling_fraction=0.1, seed=103)
        runner = StatisticalRunner(config, SCHEDULE, GENS)
        signed = []
        for _ in range(40):
            outcome = runner.run_window()
            signed.append(
                (outcome.approx_sum.value - outcome.exact_sum)
                / outcome.exact_sum
            )
        mean_signed = sum(signed) / len(signed)
        spread = (sum((s - mean_signed) ** 2 for s in signed) / len(signed)) ** 0.5
        # The mean signed error must be consistent with zero bias:
        # within ~3 standard errors of the window-to-window spread.
        assert abs(mean_signed) < 3 * spread / len(signed) ** 0.5 + 1e-4

    def test_interval_coverage_near_nominal(self):
        config = PipelineConfig(sampling_fraction=0.2, confidence=0.95,
                                seed=104)
        runner = StatisticalRunner(config, SCHEDULE, GENS)
        covered = 0
        windows = 60
        for _ in range(windows):
            outcome = runner.run_window()
            if outcome.approx_sum.contains(outcome.exact_sum):
                covered += 1
        # 95% nominal; binomial 3-sigma floor for 60 windows is ~0.86.
        assert covered / windows >= 0.85

    def test_wider_confidence_wider_interval_same_window(self):
        for confidence, wider in ((0.68, 0.95), (0.95, 0.997)):
            narrow_config = PipelineConfig(
                sampling_fraction=0.1, confidence=confidence, seed=105
            )
            wide_config = PipelineConfig(
                sampling_fraction=0.1, confidence=wider, seed=105
            )
            narrow = StatisticalRunner(narrow_config, SCHEDULE, GENS)
            wide = StatisticalRunner(wide_config, SCHEDULE, GENS)
            assert (
                wide.run_window().approx_sum.error
                > narrow.run_window().approx_sum.error
            )

    def test_error_shrinks_with_fraction_on_average(self):
        def mean_error(fraction):
            config = PipelineConfig(sampling_fraction=fraction, seed=106)
            runner = StatisticalRunner(config, SCHEDULE, GENS)
            outcome = runner.run(10)
            return sum(
                w.approx_sum.error / w.exact_sum for w in outcome.windows
            ) / len(outcome.windows)

        assert mean_error(0.4) < mean_error(0.05)
