"""Unit tests for pipeline assembly."""

import pytest

from repro.engine.pipeline import build_pipeline
from repro.errors import PipelineError
from repro.system.config import PipelineConfig
from repro.topology.tree import LogicalTree
from repro.workloads.rates import RateSchedule
from repro.workloads.synthetic import paper_gaussian_substreams

GENS = {g.name: g for g in paper_gaussian_substreams()}
SCHEDULE = RateSchedule(
    "asm", {"A": 400.0, "B": 400.0, "C": 400.0, "D": 400.0}
)


def make_pipeline(**config_kwargs):
    config = PipelineConfig(
        sampling_fraction=config_kwargs.pop("sampling_fraction", 0.1),
        seed=config_kwargs.pop("seed", 11),
        **config_kwargs,
    )
    return build_pipeline(config, SCHEDULE, GENS)


class TestAssembly:
    def test_one_source_per_source_node(self):
        pipeline = make_pipeline()
        assert set(pipeline.sources) == {
            node.name for node in pipeline.tree.sources
        }

    def test_substream_rates_split_across_owners(self):
        # 4 sub-streams over 8 sources: each sub-stream is produced by
        # 2 sources at half the scheduled rate.
        pipeline = make_pipeline()
        assert all(
            rate == pytest.approx(200.0)
            for rate in pipeline.source_rates.values()
        )

    def test_budgets_scale_with_subtree(self):
        pipeline = make_pipeline(sampling_fraction=0.1)
        assert pipeline.budget("l1-0") == pytest.approx(0.1 * 400, abs=2)
        assert pipeline.budget("l2-0") == pytest.approx(0.1 * 800, abs=2)
        assert pipeline.budget("root") == pytest.approx(0.1 * 1600, abs=2)

    def test_budgets_scale_with_window(self):
        narrow = make_pipeline(window_seconds=1.0).budget("root")
        wide = make_pipeline(window_seconds=2.0).budget("root")
        assert wide == pytest.approx(2 * narrow, rel=0.05)

    def test_backend_resolved_once(self):
        pipeline = make_pipeline()
        assert pipeline.backend in ("python", "numpy")
        assert pipeline.backend == pipeline.config.resolved_backend

    def test_unknown_budget_rejected(self):
        pipeline = make_pipeline()
        with pytest.raises(PipelineError):
            pipeline.budget("source-0")


class TestValidation:
    def test_missing_generator(self):
        schedule = RateSchedule("s", {"Z": 100.0})
        with pytest.raises(PipelineError):
            build_pipeline(PipelineConfig(), schedule, GENS)

    def test_more_substreams_than_sources(self):
        tree = LogicalTree([2, 1])
        schedule = RateSchedule(
            "wide", {"A": 10.0, "B": 10.0, "C": 10.0, "D": 10.0}
        )
        with pytest.raises(PipelineError):
            build_pipeline(PipelineConfig(tree=tree), schedule, GENS)


class TestEmission:
    def test_emit_window_covers_all_sources(self):
        pipeline = make_pipeline()
        emitted = pipeline.emit_window(0.0)
        assert set(emitted) == set(pipeline.sources)
        total = sum(len(batch) for batch in emitted.values())
        assert total == pytest.approx(1600, rel=0.05)

    def test_emission_is_seed_deterministic(self):
        a = make_pipeline(seed=5).emit_window(0.0)
        b = make_pipeline(seed=5).emit_window(0.0)
        assert {k: [i.value for i in v] for k, v in a.items()} == {
            k: [i.value for i in v] for k, v in b.items()
        }
