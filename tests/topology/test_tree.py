"""Unit tests for the logical tree and placement."""

import pytest

from repro.errors import TreeError
from repro.simnet.netem import NetemConfig
from repro.topology.placement import PlacementSpec, place_tree
from repro.topology.tree import LogicalTree, paper_tree


class TestPaperTree:
    def test_layer_sizes(self):
        tree = paper_tree()
        assert tree.layer_sizes == [8, 4, 2, 1]
        assert tree.depth == 4
        assert tree.sampling_layer_count == 3

    def test_sources_and_root(self):
        tree = paper_tree()
        assert len(tree.sources) == 8
        assert tree.sources[0].name == "source-0"
        assert tree.root.name == "root"
        assert tree.root.parent is None

    def test_contiguous_parenting(self):
        tree = paper_tree()
        assert tree.node("source-0").parent == "l1-0"
        assert tree.node("source-1").parent == "l1-0"
        assert tree.node("source-7").parent == "l1-3"
        assert tree.node("l1-0").parent == "l2-0"
        assert tree.node("l1-3").parent == "l2-1"
        assert tree.node("l2-0").parent == "root"

    def test_children(self):
        tree = paper_tree()
        assert [c.name for c in tree.children("l1-0")] == ["source-0", "source-1"]
        assert [c.name for c in tree.children("root")] == ["l2-0", "l2-1"]
        assert tree.children("source-0") == []

    def test_subtree_source_count(self):
        tree = paper_tree()
        assert tree.subtree_source_count("root") == 8
        assert tree.subtree_source_count("l2-0") == 4
        assert tree.subtree_source_count("l1-1") == 2
        assert tree.subtree_source_count("source-3") == 1

    def test_path_to_root(self):
        tree = paper_tree()
        assert tree.path_to_root("source-5") == [
            "source-5", "l1-2", "l2-1", "root"
        ]

    def test_sampling_nodes_bottom_up(self):
        tree = paper_tree()
        names = [node.name for node in tree.sampling_nodes]
        assert names == ["l1-0", "l1-1", "l1-2", "l1-3", "l2-0", "l2-1", "root"]
        assert names[-1] == "root"


class TestValidation:
    def test_too_few_layers(self):
        with pytest.raises(TreeError):
            LogicalTree([4])

    def test_last_layer_must_be_one(self):
        with pytest.raises(TreeError):
            LogicalTree([4, 2])

    def test_positive_sizes(self):
        with pytest.raises(TreeError):
            LogicalTree([4, 0, 1])

    def test_unknown_node(self):
        tree = paper_tree()
        with pytest.raises(TreeError):
            tree.node("ghost")
        with pytest.raises(TreeError):
            tree.layer(9)


class TestCustomShapes:
    def test_two_layer_tree(self):
        tree = LogicalTree([4, 1])
        assert tree.node("source-2").parent == "root"
        assert tree.subtree_source_count("root") == 4

    def test_deep_tree(self):
        tree = LogicalTree([16, 8, 4, 2, 1])
        assert tree.depth == 5
        assert len(tree.path_to_root("source-0")) == 5


class TestPlacement:
    def test_paper_placement_builds_hosts_and_links(self):
        tree = paper_tree()
        network = place_tree(tree, PlacementSpec.paper_defaults())
        assert len(network.hosts) == 15  # 8 + 4 + 2 + 1
        assert len(network.links) == 14  # one uplink per non-root node
        link = network.link("source-0", "l1-0")
        assert link.config.delay_ms == 10.0
        link = network.link("l2-0", "root")
        assert link.config.delay_ms == 40.0

    def test_service_rates_per_layer(self):
        tree = paper_tree()
        spec = PlacementSpec.paper_defaults(root_rate=5000.0, edge_rate=9000.0)
        network = place_tree(tree, spec)
        assert network.host("root").service_rate == 5000.0
        assert network.host("l1-0").service_rate == 9000.0

    def test_spec_length_validation(self):
        tree = paper_tree()
        bad = PlacementSpec(
            layer_service_rates=[1.0, 1.0],
            uplink_configs=[NetemConfig(1.0, 1e9)],
        )
        with pytest.raises(TreeError):
            place_tree(tree, bad)
